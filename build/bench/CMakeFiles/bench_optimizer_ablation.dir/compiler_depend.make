# Empty compiler generated dependencies file for bench_optimizer_ablation.
# This may be replaced when dependencies are built.
