file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_ablation.dir/bench_optimizer_ablation.cc.o"
  "CMakeFiles/bench_optimizer_ablation.dir/bench_optimizer_ablation.cc.o.d"
  "bench_optimizer_ablation"
  "bench_optimizer_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
