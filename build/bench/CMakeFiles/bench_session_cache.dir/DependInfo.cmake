
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_session_cache.cc" "bench/CMakeFiles/bench_session_cache.dir/bench_session_cache.cc.o" "gcc" "bench/CMakeFiles/bench_session_cache.dir/bench_session_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_mobile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
