# Empty compiler generated dependencies file for bench_mobile.
# This may be replaced when dependencies are built.
