file(REMOVE_RECURSE
  "CMakeFiles/bench_mobile.dir/bench_mobile.cc.o"
  "CMakeFiles/bench_mobile.dir/bench_mobile.cc.o.d"
  "bench_mobile"
  "bench_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
