file(REMOVE_RECURSE
  "CMakeFiles/bench_similarity.dir/bench_similarity.cc.o"
  "CMakeFiles/bench_similarity.dir/bench_similarity.cc.o.d"
  "bench_similarity"
  "bench_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
