# Empty compiler generated dependencies file for bench_similarity.
# This may be replaced when dependencies are built.
