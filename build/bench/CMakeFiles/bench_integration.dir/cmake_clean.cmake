file(REMOVE_RECURSE
  "CMakeFiles/bench_integration.dir/bench_integration.cc.o"
  "CMakeFiles/bench_integration.dir/bench_integration.cc.o.d"
  "bench_integration"
  "bench_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
