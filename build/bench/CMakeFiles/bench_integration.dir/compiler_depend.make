# Empty compiler generated dependencies file for bench_integration.
# This may be replaced when dependencies are built.
