file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_query.dir/bench_tree_query.cc.o"
  "CMakeFiles/bench_tree_query.dir/bench_tree_query.cc.o.d"
  "bench_tree_query"
  "bench_tree_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
