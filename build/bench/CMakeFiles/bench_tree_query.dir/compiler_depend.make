# Empty compiler generated dependencies file for bench_tree_query.
# This may be replaced when dependencies are built.
