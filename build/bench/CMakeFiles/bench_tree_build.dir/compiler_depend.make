# Empty compiler generated dependencies file for bench_tree_build.
# This may be replaced when dependencies are built.
