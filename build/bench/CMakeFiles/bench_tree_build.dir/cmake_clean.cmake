file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_build.dir/bench_tree_build.cc.o"
  "CMakeFiles/bench_tree_build.dir/bench_tree_build.cc.o.d"
  "bench_tree_build"
  "bench_tree_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
