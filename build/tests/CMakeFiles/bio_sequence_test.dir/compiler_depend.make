# Empty compiler generated dependencies file for bio_sequence_test.
# This may be replaced when dependencies are built.
