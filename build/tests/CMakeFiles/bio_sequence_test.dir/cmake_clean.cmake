file(REMOVE_RECURSE
  "CMakeFiles/bio_sequence_test.dir/bio_sequence_test.cc.o"
  "CMakeFiles/bio_sequence_test.dir/bio_sequence_test.cc.o.d"
  "bio_sequence_test"
  "bio_sequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
