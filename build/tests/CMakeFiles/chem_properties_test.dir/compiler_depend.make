# Empty compiler generated dependencies file for chem_properties_test.
# This may be replaced when dependencies are built.
