file(REMOVE_RECURSE
  "CMakeFiles/chem_properties_test.dir/chem_properties_test.cc.o"
  "CMakeFiles/chem_properties_test.dir/chem_properties_test.cc.o.d"
  "chem_properties_test"
  "chem_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
