file(REMOVE_RECURSE
  "CMakeFiles/phylo_metrics_layout_test.dir/phylo_metrics_layout_test.cc.o"
  "CMakeFiles/phylo_metrics_layout_test.dir/phylo_metrics_layout_test.cc.o.d"
  "phylo_metrics_layout_test"
  "phylo_metrics_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phylo_metrics_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
