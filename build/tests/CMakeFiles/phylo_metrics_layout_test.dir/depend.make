# Empty dependencies file for phylo_metrics_layout_test.
# This may be replaced when dependencies are built.
