file(REMOVE_RECURSE
  "CMakeFiles/query_lexer_parser_test.dir/query_lexer_parser_test.cc.o"
  "CMakeFiles/query_lexer_parser_test.dir/query_lexer_parser_test.cc.o.d"
  "query_lexer_parser_test"
  "query_lexer_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_lexer_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
