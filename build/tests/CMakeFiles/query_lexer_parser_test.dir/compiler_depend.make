# Empty compiler generated dependencies file for query_lexer_parser_test.
# This may be replaced when dependencies are built.
