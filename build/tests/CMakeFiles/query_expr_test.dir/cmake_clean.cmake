file(REMOVE_RECURSE
  "CMakeFiles/query_expr_test.dir/query_expr_test.cc.o"
  "CMakeFiles/query_expr_test.dir/query_expr_test.cc.o.d"
  "query_expr_test"
  "query_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
