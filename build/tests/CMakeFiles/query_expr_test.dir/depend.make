# Empty dependencies file for query_expr_test.
# This may be replaced when dependencies are built.
