# Empty compiler generated dependencies file for query_exec_test.
# This may be replaced when dependencies are built.
