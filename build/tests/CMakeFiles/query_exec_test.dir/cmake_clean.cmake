file(REMOVE_RECURSE
  "CMakeFiles/query_exec_test.dir/query_exec_test.cc.o"
  "CMakeFiles/query_exec_test.dir/query_exec_test.cc.o.d"
  "query_exec_test"
  "query_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
