# Empty dependencies file for storage_bptree_test.
# This may be replaced when dependencies are built.
