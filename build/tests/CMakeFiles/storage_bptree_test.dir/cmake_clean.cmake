file(REMOVE_RECURSE
  "CMakeFiles/storage_bptree_test.dir/storage_bptree_test.cc.o"
  "CMakeFiles/storage_bptree_test.dir/storage_bptree_test.cc.o.d"
  "storage_bptree_test"
  "storage_bptree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_bptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
