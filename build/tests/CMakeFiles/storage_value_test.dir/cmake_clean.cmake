file(REMOVE_RECURSE
  "CMakeFiles/storage_value_test.dir/storage_value_test.cc.o"
  "CMakeFiles/storage_value_test.dir/storage_value_test.cc.o.d"
  "storage_value_test"
  "storage_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
