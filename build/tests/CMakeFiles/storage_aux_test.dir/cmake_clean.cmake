file(REMOVE_RECURSE
  "CMakeFiles/storage_aux_test.dir/storage_aux_test.cc.o"
  "CMakeFiles/storage_aux_test.dir/storage_aux_test.cc.o.d"
  "storage_aux_test"
  "storage_aux_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_aux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
