file(REMOVE_RECURSE
  "CMakeFiles/storage_pages_test.dir/storage_pages_test.cc.o"
  "CMakeFiles/storage_pages_test.dir/storage_pages_test.cc.o.d"
  "storage_pages_test"
  "storage_pages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_pages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
