# Empty dependencies file for storage_pages_test.
# This may be replaced when dependencies are built.
