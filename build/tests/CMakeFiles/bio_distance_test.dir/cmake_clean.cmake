file(REMOVE_RECURSE
  "CMakeFiles/bio_distance_test.dir/bio_distance_test.cc.o"
  "CMakeFiles/bio_distance_test.dir/bio_distance_test.cc.o.d"
  "bio_distance_test"
  "bio_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
