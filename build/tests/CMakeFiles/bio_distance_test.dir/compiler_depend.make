# Empty compiler generated dependencies file for bio_distance_test.
# This may be replaced when dependencies are built.
