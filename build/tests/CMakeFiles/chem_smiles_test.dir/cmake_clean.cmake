file(REMOVE_RECURSE
  "CMakeFiles/chem_smiles_test.dir/chem_smiles_test.cc.o"
  "CMakeFiles/chem_smiles_test.dir/chem_smiles_test.cc.o.d"
  "chem_smiles_test"
  "chem_smiles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_smiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
