# Empty compiler generated dependencies file for chem_smiles_test.
# This may be replaced when dependencies are built.
