file(REMOVE_RECURSE
  "CMakeFiles/mobile_test.dir/mobile_test.cc.o"
  "CMakeFiles/mobile_test.dir/mobile_test.cc.o.d"
  "mobile_test"
  "mobile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
