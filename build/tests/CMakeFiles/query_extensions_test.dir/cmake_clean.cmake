file(REMOVE_RECURSE
  "CMakeFiles/query_extensions_test.dir/query_extensions_test.cc.o"
  "CMakeFiles/query_extensions_test.dir/query_extensions_test.cc.o.d"
  "query_extensions_test"
  "query_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
