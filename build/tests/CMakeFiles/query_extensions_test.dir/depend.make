# Empty dependencies file for query_extensions_test.
# This may be replaced when dependencies are built.
