# Empty dependencies file for query_plan_test.
# This may be replaced when dependencies are built.
