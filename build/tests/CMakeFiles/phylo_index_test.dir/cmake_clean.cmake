file(REMOVE_RECURSE
  "CMakeFiles/phylo_index_test.dir/phylo_index_test.cc.o"
  "CMakeFiles/phylo_index_test.dir/phylo_index_test.cc.o.d"
  "phylo_index_test"
  "phylo_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phylo_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
