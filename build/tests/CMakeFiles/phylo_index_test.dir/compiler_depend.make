# Empty compiler generated dependencies file for phylo_index_test.
# This may be replaced when dependencies are built.
