# Empty dependencies file for phylo_builder_test.
# This may be replaced when dependencies are built.
