file(REMOVE_RECURSE
  "CMakeFiles/phylo_builder_test.dir/phylo_builder_test.cc.o"
  "CMakeFiles/phylo_builder_test.dir/phylo_builder_test.cc.o.d"
  "phylo_builder_test"
  "phylo_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phylo_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
