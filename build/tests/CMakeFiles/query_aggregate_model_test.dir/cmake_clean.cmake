file(REMOVE_RECURSE
  "CMakeFiles/query_aggregate_model_test.dir/query_aggregate_model_test.cc.o"
  "CMakeFiles/query_aggregate_model_test.dir/query_aggregate_model_test.cc.o.d"
  "query_aggregate_model_test"
  "query_aggregate_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_aggregate_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
