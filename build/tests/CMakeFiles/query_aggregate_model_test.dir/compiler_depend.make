# Empty compiler generated dependencies file for query_aggregate_model_test.
# This may be replaced when dependencies are built.
