# Empty dependencies file for chem_fingerprint_test.
# This may be replaced when dependencies are built.
