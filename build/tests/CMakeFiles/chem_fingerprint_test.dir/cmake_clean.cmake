file(REMOVE_RECURSE
  "CMakeFiles/chem_fingerprint_test.dir/chem_fingerprint_test.cc.o"
  "CMakeFiles/chem_fingerprint_test.dir/chem_fingerprint_test.cc.o.d"
  "chem_fingerprint_test"
  "chem_fingerprint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_fingerprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
