# Empty dependencies file for bio_align_test.
# This may be replaced when dependencies are built.
