file(REMOVE_RECURSE
  "CMakeFiles/bio_align_test.dir/bio_align_test.cc.o"
  "CMakeFiles/bio_align_test.dir/bio_align_test.cc.o.d"
  "bio_align_test"
  "bio_align_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
