file(REMOVE_RECURSE
  "CMakeFiles/phylo_tree_test.dir/phylo_tree_test.cc.o"
  "CMakeFiles/phylo_tree_test.dir/phylo_tree_test.cc.o.d"
  "phylo_tree_test"
  "phylo_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phylo_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
