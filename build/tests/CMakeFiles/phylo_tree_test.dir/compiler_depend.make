# Empty compiler generated dependencies file for phylo_tree_test.
# This may be replaced when dependencies are built.
