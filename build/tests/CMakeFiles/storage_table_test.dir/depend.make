# Empty dependencies file for storage_table_test.
# This may be replaced when dependencies are built.
