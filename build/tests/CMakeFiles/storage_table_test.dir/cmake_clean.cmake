file(REMOVE_RECURSE
  "CMakeFiles/storage_table_test.dir/storage_table_test.cc.o"
  "CMakeFiles/storage_table_test.dir/storage_table_test.cc.o.d"
  "storage_table_test"
  "storage_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
