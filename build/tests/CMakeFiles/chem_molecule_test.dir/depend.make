# Empty dependencies file for chem_molecule_test.
# This may be replaced when dependencies are built.
