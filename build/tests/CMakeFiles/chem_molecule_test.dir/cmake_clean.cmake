file(REMOVE_RECURSE
  "CMakeFiles/chem_molecule_test.dir/chem_molecule_test.cc.o"
  "CMakeFiles/chem_molecule_test.dir/chem_molecule_test.cc.o.d"
  "chem_molecule_test"
  "chem_molecule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_molecule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
