# Empty dependencies file for drugtree_query.
# This may be replaced when dependencies are built.
