file(REMOVE_RECURSE
  "libdrugtree_query.a"
)
