
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/catalog.cc" "src/CMakeFiles/drugtree_query.dir/query/catalog.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/catalog.cc.o.d"
  "/root/repo/src/query/cost_model.cc" "src/CMakeFiles/drugtree_query.dir/query/cost_model.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/cost_model.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/drugtree_query.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/executor.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/CMakeFiles/drugtree_query.dir/query/expr.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/expr.cc.o.d"
  "/root/repo/src/query/join_order.cc" "src/CMakeFiles/drugtree_query.dir/query/join_order.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/join_order.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/drugtree_query.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/logical_plan.cc" "src/CMakeFiles/drugtree_query.dir/query/logical_plan.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/logical_plan.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/drugtree_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/physical.cc" "src/CMakeFiles/drugtree_query.dir/query/physical.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/physical.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/drugtree_query.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/planner.cc.o.d"
  "/root/repo/src/query/result_cache.cc" "src/CMakeFiles/drugtree_query.dir/query/result_cache.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/result_cache.cc.o.d"
  "/root/repo/src/query/rules.cc" "src/CMakeFiles/drugtree_query.dir/query/rules.cc.o" "gcc" "src/CMakeFiles/drugtree_query.dir/query/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_bio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
