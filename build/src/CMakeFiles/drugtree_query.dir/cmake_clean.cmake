file(REMOVE_RECURSE
  "CMakeFiles/drugtree_query.dir/query/catalog.cc.o"
  "CMakeFiles/drugtree_query.dir/query/catalog.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/cost_model.cc.o"
  "CMakeFiles/drugtree_query.dir/query/cost_model.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/executor.cc.o"
  "CMakeFiles/drugtree_query.dir/query/executor.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/expr.cc.o"
  "CMakeFiles/drugtree_query.dir/query/expr.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/join_order.cc.o"
  "CMakeFiles/drugtree_query.dir/query/join_order.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/lexer.cc.o"
  "CMakeFiles/drugtree_query.dir/query/lexer.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/logical_plan.cc.o"
  "CMakeFiles/drugtree_query.dir/query/logical_plan.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/parser.cc.o"
  "CMakeFiles/drugtree_query.dir/query/parser.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/physical.cc.o"
  "CMakeFiles/drugtree_query.dir/query/physical.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/planner.cc.o"
  "CMakeFiles/drugtree_query.dir/query/planner.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/result_cache.cc.o"
  "CMakeFiles/drugtree_query.dir/query/result_cache.cc.o.d"
  "CMakeFiles/drugtree_query.dir/query/rules.cc.o"
  "CMakeFiles/drugtree_query.dir/query/rules.cc.o.d"
  "libdrugtree_query.a"
  "libdrugtree_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
