file(REMOVE_RECURSE
  "CMakeFiles/drugtree_util.dir/util/arena.cc.o"
  "CMakeFiles/drugtree_util.dir/util/arena.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/clock.cc.o"
  "CMakeFiles/drugtree_util.dir/util/clock.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/histogram.cc.o"
  "CMakeFiles/drugtree_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/logging.cc.o"
  "CMakeFiles/drugtree_util.dir/util/logging.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/rng.cc.o"
  "CMakeFiles/drugtree_util.dir/util/rng.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/status.cc.o"
  "CMakeFiles/drugtree_util.dir/util/status.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/string_util.cc.o"
  "CMakeFiles/drugtree_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/drugtree_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/drugtree_util.dir/util/thread_pool.cc.o.d"
  "libdrugtree_util.a"
  "libdrugtree_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
