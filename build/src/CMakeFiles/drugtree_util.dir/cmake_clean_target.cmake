file(REMOVE_RECURSE
  "libdrugtree_util.a"
)
