
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/drugtree_util.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/arena.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/drugtree_util.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/clock.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/drugtree_util.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/drugtree_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/drugtree_util.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/drugtree_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/drugtree_util.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/drugtree_util.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/drugtree_util.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
