# Empty compiler generated dependencies file for drugtree_util.
# This may be replaced when dependencies are built.
