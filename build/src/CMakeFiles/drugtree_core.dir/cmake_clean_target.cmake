file(REMOVE_RECURSE
  "libdrugtree_core.a"
)
