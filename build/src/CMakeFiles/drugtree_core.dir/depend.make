# Empty dependencies file for drugtree_core.
# This may be replaced when dependencies are built.
