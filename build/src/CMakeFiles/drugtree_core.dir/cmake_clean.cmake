file(REMOVE_RECURSE
  "CMakeFiles/drugtree_core.dir/core/drugtree.cc.o"
  "CMakeFiles/drugtree_core.dir/core/drugtree.cc.o.d"
  "CMakeFiles/drugtree_core.dir/core/overlay.cc.o"
  "CMakeFiles/drugtree_core.dir/core/overlay.cc.o.d"
  "CMakeFiles/drugtree_core.dir/core/workload.cc.o"
  "CMakeFiles/drugtree_core.dir/core/workload.cc.o.d"
  "libdrugtree_core.a"
  "libdrugtree_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
