# Empty dependencies file for drugtree_phylo.
# This may be replaced when dependencies are built.
