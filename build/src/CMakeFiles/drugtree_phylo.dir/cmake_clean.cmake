file(REMOVE_RECURSE
  "CMakeFiles/drugtree_phylo.dir/phylo/builder.cc.o"
  "CMakeFiles/drugtree_phylo.dir/phylo/builder.cc.o.d"
  "CMakeFiles/drugtree_phylo.dir/phylo/layout.cc.o"
  "CMakeFiles/drugtree_phylo.dir/phylo/layout.cc.o.d"
  "CMakeFiles/drugtree_phylo.dir/phylo/newick.cc.o"
  "CMakeFiles/drugtree_phylo.dir/phylo/newick.cc.o.d"
  "CMakeFiles/drugtree_phylo.dir/phylo/tree.cc.o"
  "CMakeFiles/drugtree_phylo.dir/phylo/tree.cc.o.d"
  "CMakeFiles/drugtree_phylo.dir/phylo/tree_index.cc.o"
  "CMakeFiles/drugtree_phylo.dir/phylo/tree_index.cc.o.d"
  "CMakeFiles/drugtree_phylo.dir/phylo/tree_metrics.cc.o"
  "CMakeFiles/drugtree_phylo.dir/phylo/tree_metrics.cc.o.d"
  "libdrugtree_phylo.a"
  "libdrugtree_phylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
