file(REMOVE_RECURSE
  "libdrugtree_phylo.a"
)
