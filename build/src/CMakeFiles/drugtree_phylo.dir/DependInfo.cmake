
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phylo/builder.cc" "src/CMakeFiles/drugtree_phylo.dir/phylo/builder.cc.o" "gcc" "src/CMakeFiles/drugtree_phylo.dir/phylo/builder.cc.o.d"
  "/root/repo/src/phylo/layout.cc" "src/CMakeFiles/drugtree_phylo.dir/phylo/layout.cc.o" "gcc" "src/CMakeFiles/drugtree_phylo.dir/phylo/layout.cc.o.d"
  "/root/repo/src/phylo/newick.cc" "src/CMakeFiles/drugtree_phylo.dir/phylo/newick.cc.o" "gcc" "src/CMakeFiles/drugtree_phylo.dir/phylo/newick.cc.o.d"
  "/root/repo/src/phylo/tree.cc" "src/CMakeFiles/drugtree_phylo.dir/phylo/tree.cc.o" "gcc" "src/CMakeFiles/drugtree_phylo.dir/phylo/tree.cc.o.d"
  "/root/repo/src/phylo/tree_index.cc" "src/CMakeFiles/drugtree_phylo.dir/phylo/tree_index.cc.o" "gcc" "src/CMakeFiles/drugtree_phylo.dir/phylo/tree_index.cc.o.d"
  "/root/repo/src/phylo/tree_metrics.cc" "src/CMakeFiles/drugtree_phylo.dir/phylo/tree_metrics.cc.o" "gcc" "src/CMakeFiles/drugtree_phylo.dir/phylo/tree_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_bio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
