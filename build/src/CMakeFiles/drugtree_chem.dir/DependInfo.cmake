
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/fingerprint.cc" "src/CMakeFiles/drugtree_chem.dir/chem/fingerprint.cc.o" "gcc" "src/CMakeFiles/drugtree_chem.dir/chem/fingerprint.cc.o.d"
  "/root/repo/src/chem/molecule.cc" "src/CMakeFiles/drugtree_chem.dir/chem/molecule.cc.o" "gcc" "src/CMakeFiles/drugtree_chem.dir/chem/molecule.cc.o.d"
  "/root/repo/src/chem/properties.cc" "src/CMakeFiles/drugtree_chem.dir/chem/properties.cc.o" "gcc" "src/CMakeFiles/drugtree_chem.dir/chem/properties.cc.o.d"
  "/root/repo/src/chem/similarity.cc" "src/CMakeFiles/drugtree_chem.dir/chem/similarity.cc.o" "gcc" "src/CMakeFiles/drugtree_chem.dir/chem/similarity.cc.o.d"
  "/root/repo/src/chem/smiles.cc" "src/CMakeFiles/drugtree_chem.dir/chem/smiles.cc.o" "gcc" "src/CMakeFiles/drugtree_chem.dir/chem/smiles.cc.o.d"
  "/root/repo/src/chem/synthetic_ligands.cc" "src/CMakeFiles/drugtree_chem.dir/chem/synthetic_ligands.cc.o" "gcc" "src/CMakeFiles/drugtree_chem.dir/chem/synthetic_ligands.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
