file(REMOVE_RECURSE
  "CMakeFiles/drugtree_chem.dir/chem/fingerprint.cc.o"
  "CMakeFiles/drugtree_chem.dir/chem/fingerprint.cc.o.d"
  "CMakeFiles/drugtree_chem.dir/chem/molecule.cc.o"
  "CMakeFiles/drugtree_chem.dir/chem/molecule.cc.o.d"
  "CMakeFiles/drugtree_chem.dir/chem/properties.cc.o"
  "CMakeFiles/drugtree_chem.dir/chem/properties.cc.o.d"
  "CMakeFiles/drugtree_chem.dir/chem/similarity.cc.o"
  "CMakeFiles/drugtree_chem.dir/chem/similarity.cc.o.d"
  "CMakeFiles/drugtree_chem.dir/chem/smiles.cc.o"
  "CMakeFiles/drugtree_chem.dir/chem/smiles.cc.o.d"
  "CMakeFiles/drugtree_chem.dir/chem/synthetic_ligands.cc.o"
  "CMakeFiles/drugtree_chem.dir/chem/synthetic_ligands.cc.o.d"
  "libdrugtree_chem.a"
  "libdrugtree_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
