file(REMOVE_RECURSE
  "libdrugtree_chem.a"
)
