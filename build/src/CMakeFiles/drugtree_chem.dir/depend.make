# Empty dependencies file for drugtree_chem.
# This may be replaced when dependencies are built.
