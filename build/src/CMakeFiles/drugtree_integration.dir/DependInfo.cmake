
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integration/activity_source.cc" "src/CMakeFiles/drugtree_integration.dir/integration/activity_source.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/activity_source.cc.o.d"
  "/root/repo/src/integration/ligand_source.cc" "src/CMakeFiles/drugtree_integration.dir/integration/ligand_source.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/ligand_source.cc.o.d"
  "/root/repo/src/integration/mediator.cc" "src/CMakeFiles/drugtree_integration.dir/integration/mediator.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/mediator.cc.o.d"
  "/root/repo/src/integration/network.cc" "src/CMakeFiles/drugtree_integration.dir/integration/network.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/network.cc.o.d"
  "/root/repo/src/integration/prefetcher.cc" "src/CMakeFiles/drugtree_integration.dir/integration/prefetcher.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/prefetcher.cc.o.d"
  "/root/repo/src/integration/protein_source.cc" "src/CMakeFiles/drugtree_integration.dir/integration/protein_source.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/protein_source.cc.o.d"
  "/root/repo/src/integration/semantic_cache.cc" "src/CMakeFiles/drugtree_integration.dir/integration/semantic_cache.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/semantic_cache.cc.o.d"
  "/root/repo/src/integration/source.cc" "src/CMakeFiles/drugtree_integration.dir/integration/source.cc.o" "gcc" "src/CMakeFiles/drugtree_integration.dir/integration/source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
