file(REMOVE_RECURSE
  "CMakeFiles/drugtree_integration.dir/integration/activity_source.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/activity_source.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/ligand_source.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/ligand_source.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/mediator.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/mediator.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/network.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/network.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/prefetcher.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/prefetcher.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/protein_source.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/protein_source.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/semantic_cache.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/semantic_cache.cc.o.d"
  "CMakeFiles/drugtree_integration.dir/integration/source.cc.o"
  "CMakeFiles/drugtree_integration.dir/integration/source.cc.o.d"
  "libdrugtree_integration.a"
  "libdrugtree_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
