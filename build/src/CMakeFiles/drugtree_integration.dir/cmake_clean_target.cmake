file(REMOVE_RECURSE
  "libdrugtree_integration.a"
)
