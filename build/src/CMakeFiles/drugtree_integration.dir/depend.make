# Empty dependencies file for drugtree_integration.
# This may be replaced when dependencies are built.
