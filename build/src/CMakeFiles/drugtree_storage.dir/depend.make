# Empty dependencies file for drugtree_storage.
# This may be replaced when dependencies are built.
