
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bloom.cc" "src/CMakeFiles/drugtree_storage.dir/storage/bloom.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/bloom.cc.o.d"
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/drugtree_storage.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/drugtree_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/CMakeFiles/drugtree_storage.dir/storage/hash_index.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/hash_index.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/drugtree_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/lru_cache.cc" "src/CMakeFiles/drugtree_storage.dir/storage/lru_cache.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/lru_cache.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/drugtree_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/drugtree_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/CMakeFiles/drugtree_storage.dir/storage/statistics.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/statistics.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/drugtree_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/drugtree_storage.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/drugtree_storage.dir/storage/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
