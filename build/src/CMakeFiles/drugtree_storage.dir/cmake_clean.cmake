file(REMOVE_RECURSE
  "CMakeFiles/drugtree_storage.dir/storage/bloom.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/bloom.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/bptree.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/bptree.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/hash_index.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/hash_index.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/lru_cache.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/lru_cache.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/page.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/schema.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/statistics.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/statistics.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/table.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/drugtree_storage.dir/storage/value.cc.o"
  "CMakeFiles/drugtree_storage.dir/storage/value.cc.o.d"
  "libdrugtree_storage.a"
  "libdrugtree_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
