file(REMOVE_RECURSE
  "libdrugtree_storage.a"
)
