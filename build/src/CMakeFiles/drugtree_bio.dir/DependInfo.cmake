
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/align.cc" "src/CMakeFiles/drugtree_bio.dir/bio/align.cc.o" "gcc" "src/CMakeFiles/drugtree_bio.dir/bio/align.cc.o.d"
  "/root/repo/src/bio/distance.cc" "src/CMakeFiles/drugtree_bio.dir/bio/distance.cc.o" "gcc" "src/CMakeFiles/drugtree_bio.dir/bio/distance.cc.o.d"
  "/root/repo/src/bio/fasta.cc" "src/CMakeFiles/drugtree_bio.dir/bio/fasta.cc.o" "gcc" "src/CMakeFiles/drugtree_bio.dir/bio/fasta.cc.o.d"
  "/root/repo/src/bio/sequence.cc" "src/CMakeFiles/drugtree_bio.dir/bio/sequence.cc.o" "gcc" "src/CMakeFiles/drugtree_bio.dir/bio/sequence.cc.o.d"
  "/root/repo/src/bio/substitution_matrix.cc" "src/CMakeFiles/drugtree_bio.dir/bio/substitution_matrix.cc.o" "gcc" "src/CMakeFiles/drugtree_bio.dir/bio/substitution_matrix.cc.o.d"
  "/root/repo/src/bio/synthetic.cc" "src/CMakeFiles/drugtree_bio.dir/bio/synthetic.cc.o" "gcc" "src/CMakeFiles/drugtree_bio.dir/bio/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
