file(REMOVE_RECURSE
  "libdrugtree_bio.a"
)
