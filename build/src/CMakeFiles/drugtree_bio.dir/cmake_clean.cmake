file(REMOVE_RECURSE
  "CMakeFiles/drugtree_bio.dir/bio/align.cc.o"
  "CMakeFiles/drugtree_bio.dir/bio/align.cc.o.d"
  "CMakeFiles/drugtree_bio.dir/bio/distance.cc.o"
  "CMakeFiles/drugtree_bio.dir/bio/distance.cc.o.d"
  "CMakeFiles/drugtree_bio.dir/bio/fasta.cc.o"
  "CMakeFiles/drugtree_bio.dir/bio/fasta.cc.o.d"
  "CMakeFiles/drugtree_bio.dir/bio/sequence.cc.o"
  "CMakeFiles/drugtree_bio.dir/bio/sequence.cc.o.d"
  "CMakeFiles/drugtree_bio.dir/bio/substitution_matrix.cc.o"
  "CMakeFiles/drugtree_bio.dir/bio/substitution_matrix.cc.o.d"
  "CMakeFiles/drugtree_bio.dir/bio/synthetic.cc.o"
  "CMakeFiles/drugtree_bio.dir/bio/synthetic.cc.o.d"
  "libdrugtree_bio.a"
  "libdrugtree_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
