# Empty compiler generated dependencies file for drugtree_bio.
# This may be replaced when dependencies are built.
