file(REMOVE_RECURSE
  "libdrugtree_mobile.a"
)
