file(REMOVE_RECURSE
  "CMakeFiles/drugtree_mobile.dir/mobile/client_cache.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/client_cache.cc.o.d"
  "CMakeFiles/drugtree_mobile.dir/mobile/device.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/device.cc.o.d"
  "CMakeFiles/drugtree_mobile.dir/mobile/lod.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/lod.cc.o.d"
  "CMakeFiles/drugtree_mobile.dir/mobile/protocol.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/protocol.cc.o.d"
  "CMakeFiles/drugtree_mobile.dir/mobile/session.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/session.cc.o.d"
  "CMakeFiles/drugtree_mobile.dir/mobile/trace.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/trace.cc.o.d"
  "CMakeFiles/drugtree_mobile.dir/mobile/viewport.cc.o"
  "CMakeFiles/drugtree_mobile.dir/mobile/viewport.cc.o.d"
  "libdrugtree_mobile.a"
  "libdrugtree_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugtree_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
