
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobile/client_cache.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/client_cache.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/client_cache.cc.o.d"
  "/root/repo/src/mobile/device.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/device.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/device.cc.o.d"
  "/root/repo/src/mobile/lod.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/lod.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/lod.cc.o.d"
  "/root/repo/src/mobile/protocol.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/protocol.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/protocol.cc.o.d"
  "/root/repo/src/mobile/session.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/session.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/session.cc.o.d"
  "/root/repo/src/mobile/trace.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/trace.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/trace.cc.o.d"
  "/root/repo/src/mobile/viewport.cc" "src/CMakeFiles/drugtree_mobile.dir/mobile/viewport.cc.o" "gcc" "src/CMakeFiles/drugtree_mobile.dir/mobile/viewport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drugtree_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drugtree_chem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
