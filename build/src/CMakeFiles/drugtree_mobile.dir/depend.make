# Empty dependencies file for drugtree_mobile.
# This may be replaced when dependencies are built.
