file(REMOVE_RECURSE
  "CMakeFiles/federated_query.dir/federated_query.cpp.o"
  "CMakeFiles/federated_query.dir/federated_query.cpp.o.d"
  "federated_query"
  "federated_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
