# Empty dependencies file for federated_query.
# This may be replaced when dependencies are built.
