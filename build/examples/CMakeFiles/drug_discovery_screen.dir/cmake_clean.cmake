file(REMOVE_RECURSE
  "CMakeFiles/drug_discovery_screen.dir/drug_discovery_screen.cpp.o"
  "CMakeFiles/drug_discovery_screen.dir/drug_discovery_screen.cpp.o.d"
  "drug_discovery_screen"
  "drug_discovery_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_discovery_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
