# Empty dependencies file for drug_discovery_screen.
# This may be replaced when dependencies are built.
