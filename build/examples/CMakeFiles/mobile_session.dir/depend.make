# Empty dependencies file for mobile_session.
# This may be replaced when dependencies are built.
