file(REMOVE_RECURSE
  "CMakeFiles/mobile_session.dir/mobile_session.cpp.o"
  "CMakeFiles/mobile_session.dir/mobile_session.cpp.o.d"
  "mobile_session"
  "mobile_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
