// Fingerprint similarity measures and a similarity-search index.
//
// The index implements the classic Swamidass-Baldi popcount bound: for
// Tanimoto(q, x) >= t it is necessary that
//     t * |q| <= |x| <= |q| / t,
// so fingerprints binned by popcount let the search skip whole bins. This is
// one of the "standard" optimizations the poster alludes to; experiment E6
// measures it against a linear scan.

#ifndef DRUGTREE_CHEM_SIMILARITY_H_
#define DRUGTREE_CHEM_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chem/fingerprint.h"
#include "util/result.h"

namespace drugtree {
namespace util {
class ThreadPool;
}  // namespace util
namespace chem {

/// Tanimoto (Jaccard) similarity in [0, 1]. Two all-zero fingerprints are
/// defined as similarity 1.
double Tanimoto(const Fingerprint& a, const Fingerprint& b);

/// Dice similarity in [0, 1].
double Dice(const Fingerprint& a, const Fingerprint& b);

/// One search hit.
struct SimilarityHit {
  int64_t id = 0;
  double similarity = 0.0;
};

/// Popcount-binned Tanimoto search index over (id, fingerprint) pairs.
class SimilarityIndex {
 public:
  /// All fingerprints must have the same width.
  explicit SimilarityIndex(int num_bits) : num_bits_(num_bits) {}

  /// Adds one fingerprint under an external id.
  util::Status Add(int64_t id, Fingerprint fp);

  size_t size() const { return count_; }

  /// All entries with Tanimoto(query, entry) >= threshold, descending by
  /// similarity. Uses the popcount bound to skip bins.
  util::Result<std::vector<SimilarityHit>> SearchThreshold(
      const Fingerprint& query, double threshold) const;

  /// Morsel-parallel SearchThreshold: candidate entries (after the popcount
  /// bound) are scored in fixed-size morsels on `pool`. The final sort uses
  /// the same total order (similarity desc, id asc), so the result is
  /// identical to SearchThreshold. Falls back to the serial path when
  /// `pool` is null or the candidate set is small.
  util::Result<std::vector<SimilarityHit>> SearchThresholdParallel(
      const Fingerprint& query, double threshold, util::ThreadPool* pool) const;

  /// Top-k most similar entries, descending. Uses the bound adaptively: bins
  /// are visited in order of decreasing best-possible similarity and the scan
  /// stops when the k-th best hit beats the next bin's upper bound.
  util::Result<std::vector<SimilarityHit>> SearchTopK(const Fingerprint& query,
                                                      int k) const;

  /// Linear-scan threshold search over all entries — the baseline for E6.
  std::vector<SimilarityHit> LinearSearchThreshold(const Fingerprint& query,
                                                   double threshold) const;

 private:
  struct Entry {
    int64_t id;
    Fingerprint fp;
  };

  int num_bits_;
  size_t count_ = 0;
  // bins_[p] holds all entries whose popcount is p.
  std::vector<std::vector<Entry>> bins_;
};

}  // namespace chem
}  // namespace drugtree

#endif  // DRUGTREE_CHEM_SIMILARITY_H_
