#include "chem/properties.h"

namespace drugtree {
namespace chem {

int MolecularProperties::LipinskiViolations() const {
  int v = 0;
  if (molecular_weight > 500.0) ++v;
  if (log_p > 5.0) ++v;
  if (hbd > 5) ++v;
  if (hba > 10) ++v;
  return v;
}

namespace {

// Coarse Crippen-style atomic logP contributions.
double LogPContribution(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  int h = mol.HydrogenCount(i);
  switch (a.element) {
    case Element::kCarbon:
      if (a.aromatic) return 0.29;
      return h >= 2 ? 0.36 : 0.12;  // aliphatic CH2/CH3 vs substituted
    case Element::kNitrogen:
      return a.aromatic ? -0.50 : (h > 0 ? -1.0 : -0.60);
    case Element::kOxygen:
      return h > 0 ? -0.45 : -0.17;  // hydroxyl vs ether/carbonyl
    case Element::kSulfur:
      return 0.25;
    case Element::kPhosphorus:
      return -0.5;
    case Element::kFluorine:
      return 0.14;
    case Element::kChlorine:
      return 0.65;
    case Element::kBromine:
      return 0.86;
    case Element::kIodine:
      return 1.12;
    case Element::kHydrogen:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

MolecularProperties ComputeProperties(const Molecule& mol) {
  MolecularProperties p;
  p.heavy_atoms = mol.HeavyAtomCount();
  p.ring_count = mol.RingCount();
  for (int i = 0; i < mol.num_atoms(); ++i) {
    const Atom& a = mol.atom(i);
    int h = mol.HydrogenCount(i);
    p.molecular_weight += ElementMassDa(a.element) +
                          h * ElementMassDa(Element::kHydrogen);
    p.log_p += LogPContribution(mol, i);
    if (a.element == Element::kNitrogen || a.element == Element::kOxygen) {
      ++p.hba;
      if (h > 0) ++p.hbd;
    }
  }
  // Rotatable bonds: acyclic single bonds where both ends have degree >= 2.
  // A bond is "in a ring" iff removing it keeps its endpoints connected;
  // with the cheap cyclomatic test we approximate: bonds on any cycle are
  // found by checking connectivity without the bond.
  for (const Bond& b : mol.bonds()) {
    if (b.order != BondOrder::kSingle) continue;
    if (mol.Neighbors(b.a).size() < 2 || mol.Neighbors(b.b).size() < 2) {
      continue;  // terminal bond
    }
    // Connectivity check from b.a to b.b avoiding the bond itself.
    std::vector<bool> seen(static_cast<size_t>(mol.num_atoms()), false);
    std::vector<int> stack = {b.a};
    seen[static_cast<size_t>(b.a)] = true;
    bool in_ring = false;
    while (!stack.empty() && !in_ring) {
      int v = stack.back();
      stack.pop_back();
      for (int w : mol.Neighbors(v)) {
        if (v == b.a && w == b.b) continue;  // skip the bond under test
        if (w == b.b) {
          in_ring = true;
          break;
        }
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
    if (!in_ring) ++p.rotatable_bonds;
  }
  return p;
}

}  // namespace chem
}  // namespace drugtree
