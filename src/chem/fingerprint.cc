#include "chem/fingerprint.h"

#include <algorithm>
#include <bit>
#include <string>

#include "util/string_util.h"

namespace drugtree {
namespace chem {

Fingerprint::Fingerprint(int num_bits)
    : num_bits_(std::max(64, (num_bits + 63) / 64 * 64)),
      words_(static_cast<size_t>(num_bits_ / 64), 0) {}

void Fingerprint::SetBit(int i) {
  words_[static_cast<size_t>(i / 64)] |= uint64_t{1} << (i % 64);
}

bool Fingerprint::TestBit(int i) const {
  return (words_[static_cast<size_t>(i / 64)] >> (i % 64)) & 1;
}

int Fingerprint::PopCount() const {
  int n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

int Fingerprint::AndCount(const Fingerprint& other) const {
  int n = 0;
  size_t m = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < m; ++i) n += std::popcount(words_[i] & other.words_[i]);
  return n;
}

int Fingerprint::OrCount(const Fingerprint& other) const {
  int n = 0;
  size_t m = std::max(words_.size(), other.words_.size());
  for (size_t i = 0; i < m; ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    n += std::popcount(a | b);
  }
  return n;
}

namespace {

// Token for one atom in a path string: element symbol, aromatic flag.
std::string AtomToken(const Atom& a) {
  std::string t = ElementSymbol(a.element);
  if (a.aromatic) t = util::ToLower(t);
  if (a.charge > 0) t += '+';
  if (a.charge < 0) t += '-';
  return t;
}

char BondToken(BondOrder o) {
  switch (o) {
    case BondOrder::kSingle: return '-';
    case BondOrder::kDouble: return '=';
    case BondOrder::kTriple: return '#';
    case BondOrder::kAromatic: return ':';
  }
  return '?';
}

}  // namespace

util::Result<Fingerprint> ComputeFingerprint(const Molecule& mol,
                                             const FingerprintParams& params) {
  if (params.num_bits < 64) {
    return util::Status::InvalidArgument("num_bits must be >= 64");
  }
  if (params.max_path_bonds < 0 || params.max_path_bonds > 8) {
    return util::Status::InvalidArgument("max_path_bonds must be in [0, 8]");
  }
  if (params.bits_per_path < 1 || params.bits_per_path > 4) {
    return util::Status::InvalidArgument("bits_per_path must be in [1, 4]");
  }
  Fingerprint fp(params.num_bits);
  if (mol.num_atoms() == 0) return fp;

  auto hash_path = [&](const std::string& fwd, const std::string& rev) {
    const std::string& canon = fwd <= rev ? fwd : rev;
    uint64_t h = util::Fnv1a64(canon);
    for (int b = 0; b < params.bits_per_path; ++b) {
      fp.SetBit(static_cast<int>(h % static_cast<uint64_t>(fp.num_bits())));
      h = h * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL;
    }
  };

  // DFS path enumeration from every atom; paths are simple (no repeated
  // atoms). Each path is counted from both endpoints, which the
  // canonicalization collapses, so bits are deterministic.
  struct Frame {
    int atom;
    size_t next_neighbor;
  };
  const int n = mol.num_atoms();
  std::vector<bool> on_path(static_cast<size_t>(n), false);
  for (int start = 0; start < n; ++start) {
    std::vector<Frame> path;
    std::string fwd = AtomToken(mol.atom(start));
    std::string rev = fwd;
    // Path strings per depth are rebuilt on the fly; keep a token stack.
    std::vector<std::string> fwd_stack = {fwd};
    std::vector<std::string> rev_stack = {rev};
    path.push_back({start, 0});
    on_path[static_cast<size_t>(start)] = true;
    hash_path(fwd_stack.back(), rev_stack.back());  // length-0 path (atom type)
    while (!path.empty()) {
      Frame& f = path.back();
      const auto& nbrs = mol.Neighbors(f.atom);
      bool descended = false;
      while (f.next_neighbor < nbrs.size()) {
        int w = nbrs[f.next_neighbor++];
        if (on_path[static_cast<size_t>(w)]) continue;
        if (static_cast<int>(path.size()) > params.max_path_bonds) break;
        const Bond* b = mol.FindBond(f.atom, w);
        char bt = BondToken(b->order);
        std::string at = AtomToken(mol.atom(w));
        fwd_stack.push_back(fwd_stack.back() + bt + at);
        rev_stack.push_back(at + bt + rev_stack.back());
        path.push_back({w, 0});
        on_path[static_cast<size_t>(w)] = true;
        hash_path(fwd_stack.back(), rev_stack.back());
        descended = true;
        break;
      }
      if (!descended) {
        on_path[static_cast<size_t>(f.atom)] = false;
        path.pop_back();
        fwd_stack.pop_back();
        rev_stack.pop_back();
      }
    }
  }
  return fp;
}

}  // namespace chem
}  // namespace drugtree
