// Physicochemical property estimation and drug-likeness rules.
//
// logP uses a Crippen-style additive atom-contribution model (coarse
// contributions, adequate for ranking and filtering); HBD/HBA follow the
// Lipinski definitions (N/O counts).

#ifndef DRUGTREE_CHEM_PROPERTIES_H_
#define DRUGTREE_CHEM_PROPERTIES_H_

#include "chem/molecule.h"

namespace drugtree {
namespace chem {

/// Computed property bundle for one ligand.
struct MolecularProperties {
  double molecular_weight = 0.0;  // Da, including implicit hydrogens
  double log_p = 0.0;             // octanol/water partition estimate
  int hbd = 0;                    // hydrogen-bond donors (O-H, N-H)
  int hba = 0;                    // hydrogen-bond acceptors (N + O)
  int rotatable_bonds = 0;        // acyclic single bonds between heavy atoms
  int ring_count = 0;
  int heavy_atoms = 0;

  /// Lipinski rule-of-five violations (MW > 500, logP > 5, HBD > 5,
  /// HBA > 10); 0 or 1 violations is conventionally "drug-like".
  int LipinskiViolations() const;
  bool IsDrugLike() const { return LipinskiViolations() <= 1; }
};

/// Computes the property bundle.
MolecularProperties ComputeProperties(const Molecule& mol);

}  // namespace chem
}  // namespace drugtree

#endif  // DRUGTREE_CHEM_PROPERTIES_H_
