// Molecular model: an attributed graph of atoms and bonds, the substrate for
// ligand data in DrugTree. Populated from the SMILES subset parser
// (smiles.h) or the synthetic generator.

#ifndef DRUGTREE_CHEM_MOLECULE_H_
#define DRUGTREE_CHEM_MOLECULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace drugtree {
namespace chem {

/// Chemical elements supported by the SMILES subset (organic subset).
enum class Element : uint8_t {
  kCarbon,
  kNitrogen,
  kOxygen,
  kSulfur,
  kPhosphorus,
  kFluorine,
  kChlorine,
  kBromine,
  kIodine,
  kHydrogen,
};

/// Symbol of the element ("C", "N", ...).
const char* ElementSymbol(Element e);

/// Standard atomic mass in daltons.
double ElementMassDa(Element e);

/// Typical valence used for implicit-hydrogen completion.
int ElementValence(Element e);

enum class BondOrder : uint8_t { kSingle = 1, kDouble = 2, kTriple = 3,
                                 kAromatic = 4 };

struct Atom {
  Element element = Element::kCarbon;
  bool aromatic = false;
  int charge = 0;
  int explicit_hydrogens = -1;  // -1 => implicit per valence rules
};

struct Bond {
  int a = 0;  // atom indices
  int b = 0;
  BondOrder order = BondOrder::kSingle;
};

/// A small molecule (ligand). Atom indices are stable, 0-based.
class Molecule {
 public:
  Molecule() = default;

  /// Adds an atom; returns its index.
  int AddAtom(const Atom& atom);

  /// Adds a bond between existing atoms; fails on out-of-range indices,
  /// self-bonds, or duplicate bonds.
  util::Status AddBond(int a, int b, BondOrder order);

  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  int num_bonds() const { return static_cast<int>(bonds_.size()); }
  const Atom& atom(int i) const { return atoms_[static_cast<size_t>(i)]; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Mutable bond access (used by the SMILES parser's aromaticity fix-up).
  Bond* mutable_bond(int i) { return &bonds_[static_cast<size_t>(i)]; }

  /// True iff bond i lies on a cycle (its endpoints stay connected when the
  /// bond is removed).
  bool BondInRing(int i) const;

  /// Indices of atoms bonded to atom i.
  const std::vector<int>& Neighbors(int i) const {
    return adjacency_[static_cast<size_t>(i)];
  }

  /// Bond between atoms a,b or nullptr.
  const Bond* FindBond(int a, int b) const;

  /// Number of implicit hydrogens on atom i (valence minus bond order sum,
  /// clamped at zero), or the explicit count if one was set.
  int HydrogenCount(int i) const;

  /// Heavy-atom count (excludes hydrogens, which are implicit here).
  int HeavyAtomCount() const { return num_atoms(); }

  /// True iff the bond graph is connected (single component).
  bool IsConnected() const;

  /// Number of rings = bonds - atoms + components (cyclomatic number).
  int RingCount() const;

 private:
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace chem
}  // namespace drugtree

#endif  // DRUGTREE_CHEM_MOLECULE_H_
