// SMILES subset parser and writer.
//
// Supported syntax (enough for drug-like organic molecules, which is what
// DrugTree's ligand sources serve):
//   * organic-subset atoms: B C N O P S F Cl Br I, aromatic c n o s
//   * bracket atoms with charge and explicit H: [N+], [O-], [nH]
//   * bonds: - = # and aromatic (implicit between aromatic atoms), ':'
//   * branches: ( ... )
//   * ring-bond digits 0-9 and %nn
// Unsupported (rejected with ParseError): stereochemistry (/ \ @), isotopes,
// wildcards, multi-fragment '.' notation.

#ifndef DRUGTREE_CHEM_SMILES_H_
#define DRUGTREE_CHEM_SMILES_H_

#include <string>

#include "chem/molecule.h"
#include "util/result.h"

namespace drugtree {
namespace chem {

/// Parses a SMILES string into a Molecule.
util::Result<Molecule> ParseSmiles(const std::string& smiles);

/// Writes a canonical-ish SMILES for the molecule (DFS from atom 0 with ring
/// closure digits). Round-trips through ParseSmiles to an isomorphic graph,
/// though not necessarily to the identical string.
util::Result<std::string> WriteSmiles(const Molecule& mol);

}  // namespace chem
}  // namespace drugtree

#endif  // DRUGTREE_CHEM_SMILES_H_
