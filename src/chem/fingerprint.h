// Molecular fingerprints: fixed-width hashed bit vectors over linear atom
// paths (Daylight-style). Fingerprints drive the similarity search that the
// drug-discovery screening workflow (example 2, experiment E6) exercises.

#ifndef DRUGTREE_CHEM_FINGERPRINT_H_
#define DRUGTREE_CHEM_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "chem/molecule.h"
#include "util/result.h"

namespace drugtree {
namespace chem {

/// A fixed-width bit vector with fast popcount operations.
class Fingerprint {
 public:
  /// Creates an all-zero fingerprint of `num_bits` (rounded up to 64).
  explicit Fingerprint(int num_bits = 1024);

  int num_bits() const { return num_bits_; }

  void SetBit(int i);
  bool TestBit(int i) const;

  /// Number of set bits.
  int PopCount() const;

  /// Number of bits set in both.
  int AndCount(const Fingerprint& other) const;

  /// Number of bits set in either.
  int OrCount(const Fingerprint& other) const;

  const std::vector<uint64_t>& words() const { return words_; }

  bool operator==(const Fingerprint& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  int num_bits_;
  std::vector<uint64_t> words_;
};

/// Path-fingerprint parameters.
struct FingerprintParams {
  int num_bits = 1024;
  /// Maximum path length in bonds (paths of length 0..max_path_bonds).
  int max_path_bonds = 5;
  /// Bits set per hashed path.
  int bits_per_path = 2;
};

/// Computes the hashed linear-path fingerprint of a molecule. Enumerates all
/// simple paths up to max_path_bonds bonds, canonicalizes each (forward vs
/// reverse lexicographic), hashes, and sets bits_per_path bits per path.
util::Result<Fingerprint> ComputeFingerprint(const Molecule& mol,
                                             const FingerprintParams& params = {});

}  // namespace chem
}  // namespace drugtree

#endif  // DRUGTREE_CHEM_FINGERPRINT_H_
