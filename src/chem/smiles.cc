#include "chem/smiles.h"

#include <cctype>
#include <functional>
#include <map>
#include <vector>

#include "util/string_util.h"

namespace drugtree {
namespace chem {

namespace {

struct PendingRing {
  int atom;
  BondOrder order;
  bool order_explicit;
};

class SmilesParser {
 public:
  explicit SmilesParser(const std::string& text) : text_(text) {}

  util::Result<Molecule> Parse() {
    if (util::Trim(text_).empty()) {
      return util::Status::ParseError("empty SMILES");
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '(') {
        if (prev_atom_ < 0) return Error("branch before any atom");
        branch_stack_.push_back(prev_atom_);
        ++pos_;
      } else if (c == ')') {
        if (branch_stack_.empty()) return Error("unmatched ')'");
        prev_atom_ = branch_stack_.back();
        branch_stack_.pop_back();
        ++pos_;
      } else if (c == '-' || c == '=' || c == '#' || c == ':') {
        if (pending_order_explicit_) return Error("two consecutive bond symbols");
        pending_order_ = c == '-'   ? BondOrder::kSingle
                         : c == '=' ? BondOrder::kDouble
                         : c == '#' ? BondOrder::kTriple
                                    : BondOrder::kAromatic;
        pending_order_explicit_ = true;
        ++pos_;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '%') {
        DRUGTREE_RETURN_IF_ERROR(HandleRingBond());
      } else if (c == '[') {
        DRUGTREE_RETURN_IF_ERROR(HandleBracketAtom());
      } else if (c == '.') {
        return Error("multi-fragment SMILES ('.') is not supported");
      } else if (c == '/' || c == '\\' || c == '@') {
        return Error("stereochemistry is not supported");
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        DRUGTREE_RETURN_IF_ERROR(HandleOrganicAtom());
      }
    }
    if (!branch_stack_.empty()) return Error("unclosed '('");
    if (!open_rings_.empty()) {
      return Error(util::StringPrintf("unclosed ring bond %d",
                                      open_rings_.begin()->first));
    }
    if (mol_.num_atoms() == 0) return Error("no atoms in SMILES");
    // Aromaticity fix-up: an implicit bond between two aromatic atoms is
    // only aromatic within a ring system. A chain bond joining two separate
    // rings (biphenyl) is a plain single bond.
    for (int i = 0; i < mol_.num_bonds(); ++i) {
      Bond* b = mol_.mutable_bond(i);
      if (b->order == BondOrder::kAromatic && !mol_.BondInRing(i)) {
        b->order = BondOrder::kSingle;
      }
    }
    return std::move(mol_);
  }

 private:
  util::Status HandleOrganicAtom() {
    char c = text_[pos_];
    Atom atom;
    bool two_char = false;
    if (c == 'C' && pos_ + 1 < text_.size() && text_[pos_ + 1] == 'l') {
      atom.element = Element::kChlorine;
      two_char = true;
    } else if (c == 'B' && pos_ + 1 < text_.size() && text_[pos_ + 1] == 'r') {
      atom.element = Element::kBromine;
      two_char = true;
    } else {
      switch (c) {
        case 'C': atom.element = Element::kCarbon; break;
        case 'N': atom.element = Element::kNitrogen; break;
        case 'O': atom.element = Element::kOxygen; break;
        case 'S': atom.element = Element::kSulfur; break;
        case 'P': atom.element = Element::kPhosphorus; break;
        case 'F': atom.element = Element::kFluorine; break;
        case 'I': atom.element = Element::kIodine; break;
        case 'c':
          atom.element = Element::kCarbon;
          atom.aromatic = true;
          break;
        case 'n':
          atom.element = Element::kNitrogen;
          atom.aromatic = true;
          break;
        case 'o':
          atom.element = Element::kOxygen;
          atom.aromatic = true;
          break;
        case 's':
          atom.element = Element::kSulfur;
          atom.aromatic = true;
          break;
        default:
          return Error(util::StringPrintf("unexpected character '%c'", c));
      }
    }
    pos_ += two_char ? 2 : 1;
    return PlaceAtom(atom);
  }

  util::Status HandleBracketAtom() {
    size_t close = text_.find(']', pos_);
    if (close == std::string::npos) return Error("unterminated '['");
    std::string body = text_.substr(pos_ + 1, close - pos_ - 1);
    pos_ = close + 1;
    if (body.empty()) return Error("empty bracket atom");

    Atom atom;
    size_t i = 0;
    // Element symbol (one upper + optional lower, or a lone aromatic lower).
    if (std::islower(static_cast<unsigned char>(body[0]))) {
      atom.aromatic = true;
      switch (body[0]) {
        case 'c': atom.element = Element::kCarbon; break;
        case 'n': atom.element = Element::kNitrogen; break;
        case 'o': atom.element = Element::kOxygen; break;
        case 's': atom.element = Element::kSulfur; break;
        default: return Error("unsupported aromatic bracket atom");
      }
      i = 1;
    } else {
      std::string sym(1, body[0]);
      if (body.size() > 1 && std::islower(static_cast<unsigned char>(body[1]))) {
        sym += body[1];
      }
      static const std::map<std::string, Element> kSymbols = {
          {"C", Element::kCarbon},    {"N", Element::kNitrogen},
          {"O", Element::kOxygen},    {"S", Element::kSulfur},
          {"P", Element::kPhosphorus},{"F", Element::kFluorine},
          {"Cl", Element::kChlorine}, {"Br", Element::kBromine},
          {"I", Element::kIodine},    {"H", Element::kHydrogen},
      };
      auto it = kSymbols.find(sym);
      if (it == kSymbols.end() && sym.size() == 2) {
        it = kSymbols.find(sym.substr(0, 1));
        if (it != kSymbols.end()) sym = sym.substr(0, 1);
      }
      if (it == kSymbols.end()) {
        return Error("unsupported element in bracket atom: " + sym);
      }
      atom.element = it->second;
      i = sym.size();
    }
    // Optional H count, charge.
    atom.explicit_hydrogens = 0;
    while (i < body.size()) {
      char c = body[i];
      if (c == 'H') {
        ++i;
        int count = 1;
        if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
          count = body[i] - '0';
          ++i;
        }
        atom.explicit_hydrogens = count;
      } else if (c == '+' || c == '-') {
        int sign = c == '+' ? 1 : -1;
        ++i;
        int mag = 1;
        if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
          mag = body[i] - '0';
          ++i;
        } else {
          while (i < body.size() && body[i] == c) {
            ++mag;
            ++i;
          }
        }
        atom.charge = sign * mag;
      } else if (c == '@') {
        return Error("stereochemistry is not supported");
      } else {
        return Error(util::StringPrintf("unsupported bracket token '%c'", c));
      }
    }
    return PlaceAtom(atom);
  }

  util::Status HandleRingBond() {
    int number;
    char c = text_[pos_];
    if (c == '%') {
      if (pos_ + 2 >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_ + 2]))) {
        return Error("'%' must be followed by two digits");
      }
      number = (text_[pos_ + 1] - '0') * 10 + (text_[pos_ + 2] - '0');
      pos_ += 3;
    } else {
      number = c - '0';
      ++pos_;
    }
    if (prev_atom_ < 0) return Error("ring bond before any atom");
    auto it = open_rings_.find(number);
    if (it == open_rings_.end()) {
      open_rings_[number] = PendingRing{prev_atom_, TakePendingOrder(),
                                        pending_was_explicit_};
    } else {
      PendingRing open = it->second;
      open_rings_.erase(it);
      BondOrder order = TakePendingOrder();
      bool this_explicit = pending_was_explicit_;
      if (open.order_explicit && this_explicit && open.order != order) {
        return Error("conflicting ring-bond orders");
      }
      if (open.order_explicit) order = open.order;
      if (!open.order_explicit && !this_explicit) {
        // Aromatic-aromatic ring closures default to aromatic.
        if (mol_.atom(open.atom).aromatic && mol_.atom(prev_atom_).aromatic) {
          order = BondOrder::kAromatic;
        }
      }
      DRUGTREE_RETURN_IF_ERROR(mol_.AddBond(open.atom, prev_atom_, order));
    }
    return util::Status::OK();
  }

  util::Status PlaceAtom(const Atom& atom) {
    int idx = mol_.AddAtom(atom);
    if (prev_atom_ >= 0) {
      BondOrder order = TakePendingOrder();
      if (!pending_was_explicit_ && mol_.atom(prev_atom_).aromatic &&
          atom.aromatic) {
        order = BondOrder::kAromatic;
      }
      DRUGTREE_RETURN_IF_ERROR(mol_.AddBond(prev_atom_, idx, order));
    } else {
      TakePendingOrder();  // discard (leading bond symbol is invalid anyway)
    }
    prev_atom_ = idx;
    return util::Status::OK();
  }

  // Consumes the pending explicit bond order; records whether it was explicit
  // in pending_was_explicit_.
  BondOrder TakePendingOrder() {
    pending_was_explicit_ = pending_order_explicit_;
    BondOrder o = pending_order_;
    pending_order_ = BondOrder::kSingle;
    pending_order_explicit_ = false;
    return o;
  }

  util::Status Error(const std::string& msg) const {
    return util::Status::ParseError(
        util::StringPrintf("SMILES position %zu: %s", pos_, msg.c_str()));
  }

  const std::string& text_;
  size_t pos_ = 0;
  Molecule mol_;
  int prev_atom_ = -1;
  std::vector<int> branch_stack_;
  std::map<int, PendingRing> open_rings_;
  BondOrder pending_order_ = BondOrder::kSingle;
  bool pending_order_explicit_ = false;
  bool pending_was_explicit_ = false;
};

char AtomChar(const Atom& a, std::string* out) {
  const char* sym = ElementSymbol(a.element);
  std::string s = sym;
  if (a.aromatic) s = util::ToLower(s);
  bool bracket = a.charge != 0 || a.element == Element::kHydrogen ||
                 (a.explicit_hydrogens > 0 && a.aromatic &&
                  a.element == Element::kNitrogen);
  if (bracket) {
    *out += '[';
    *out += s;
    if (a.explicit_hydrogens > 0) {
      *out += 'H';
      if (a.explicit_hydrogens > 1) *out += char('0' + a.explicit_hydrogens);
    }
    if (a.charge > 0) {
      *out += '+';
      if (a.charge > 1) *out += char('0' + a.charge);
    } else if (a.charge < 0) {
      *out += '-';
      if (a.charge < -1) *out += char('0' - a.charge);
    }
    *out += ']';
  } else {
    *out += s;
  }
  return s[0];
}

void BondChar(BondOrder order, bool both_aromatic, std::string* out) {
  switch (order) {
    case BondOrder::kSingle:
      break;  // implicit
    case BondOrder::kDouble:
      *out += '=';
      break;
    case BondOrder::kTriple:
      *out += '#';
      break;
    case BondOrder::kAromatic:
      if (!both_aromatic) *out += ':';
      break;  // implicit between aromatic atoms
  }
}

}  // namespace

util::Result<Molecule> ParseSmiles(const std::string& smiles) {
  return SmilesParser(smiles).Parse();
}

util::Result<std::string> WriteSmiles(const Molecule& mol) {
  if (mol.num_atoms() == 0) {
    return util::Status::InvalidArgument("cannot write empty molecule");
  }
  if (!mol.IsConnected()) {
    return util::Status::InvalidArgument(
        "multi-fragment molecules are not supported");
  }
  // DFS; back-edges become ring closures.
  std::vector<int> parent(static_cast<size_t>(mol.num_atoms()), -2);
  std::vector<std::vector<std::pair<int, int>>> ring_digits(
      static_cast<size_t>(mol.num_atoms()));  // atom -> (other, digit)
  int next_digit = 1;

  // First pass: build a DFS spanning tree; every non-tree bond becomes a
  // ring-closure pair.
  {
    std::vector<int> stack = {0};
    parent[0] = -1;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int w : mol.Neighbors(v)) {
        if (parent[static_cast<size_t>(w)] == -2) {
          parent[static_cast<size_t>(w)] = v;
          stack.push_back(w);
        }
      }
    }
  }
  std::vector<std::pair<int, int>> back_edges;
  for (const Bond& b : mol.bonds()) {
    if (parent[static_cast<size_t>(b.a)] != b.b &&
        parent[static_cast<size_t>(b.b)] != b.a) {
      back_edges.emplace_back(b.a, b.b);
    }
  }
  for (auto [a, b] : back_edges) {
    if (next_digit > 99) {
      return util::Status::ResourceExhausted("too many rings for SMILES digits");
    }
    ring_digits[static_cast<size_t>(a)].emplace_back(b, next_digit);
    ring_digits[static_cast<size_t>(b)].emplace_back(a, next_digit);
    ++next_digit;
  }

  std::string out;
  // Recursive emit (ligands are small, so stack depth is bounded).
  std::function<void(int, int)> emit = [&](int atom, int from) {
    if (from >= 0) {
      const Bond* b = mol.FindBond(from, atom);
      BondChar(b->order, mol.atom(from).aromatic && mol.atom(atom).aromatic,
               &out);
    }
    AtomChar(mol.atom(atom), &out);
    for (auto [other, digit] : ring_digits[static_cast<size_t>(atom)]) {
      const Bond* b = mol.FindBond(atom, other);
      BondChar(b->order, mol.atom(atom).aromatic && mol.atom(other).aromatic,
               &out);
      if (digit >= 10) {
        out += '%';
        out += char('0' + digit / 10);
        out += char('0' + digit % 10);
      } else {
        out += char('0' + digit);
      }
    }
    std::vector<int> children;
    for (int w : mol.Neighbors(atom)) {
      if (parent[static_cast<size_t>(w)] == atom) children.push_back(w);
    }
    for (size_t i = 0; i < children.size(); ++i) {
      bool last = i + 1 == children.size();
      if (!last) out += '(';
      emit(children[i], atom);
      if (!last) out += ')';
    }
  };
  emit(0, -1);
  return out;
}

}  // namespace chem
}  // namespace drugtree
