// Synthetic ligand generation.
//
// The paper's ligand data came from curated drug databases we cannot ship;
// instead we generate drug-like molecules by random scaffold assembly
// (benzene/pyridine/furan rings plus aliphatic linkers and common
// substituents). Generated SMILES parse with the in-tree parser and have
// realistic property and fingerprint-similarity distributions, which is what
// the similarity-search and overlay experiments need.

#ifndef DRUGTREE_CHEM_SYNTHETIC_LIGANDS_H_
#define DRUGTREE_CHEM_SYNTHETIC_LIGANDS_H_

#include <string>
#include <vector>

#include "chem/molecule.h"
#include "util/result.h"
#include "util/rng.h"

namespace drugtree {
namespace chem {

/// One generated ligand record, as the simulated ligand source serves it.
struct LigandRecord {
  std::string ligand_id;   // "L000123"
  std::string name;        // "ligand-123"
  std::string smiles;
};

/// Generator parameters.
struct LigandGenParams {
  /// Number of scaffold "families": ligands in the same family share a core
  /// and differ by substituents, giving the similarity skew real screening
  /// libraries have.
  int num_families = 20;
  /// Rings per molecule is 1..max_rings.
  int max_rings = 3;
  /// Substituents appended per molecule is 0..max_substituents.
  int max_substituents = 4;
  std::string id_prefix = "L";
};

/// Generates `n` ligands. Deterministic given the rng seed. Every returned
/// SMILES is guaranteed to round-trip through ParseSmiles.
util::Result<std::vector<LigandRecord>> GenerateLigands(
    int n, const LigandGenParams& params, util::Rng* rng);

}  // namespace chem
}  // namespace drugtree

#endif  // DRUGTREE_CHEM_SYNTHETIC_LIGANDS_H_
