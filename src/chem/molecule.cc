#include "chem/molecule.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace chem {

const char* ElementSymbol(Element e) {
  switch (e) {
    case Element::kCarbon: return "C";
    case Element::kNitrogen: return "N";
    case Element::kOxygen: return "O";
    case Element::kSulfur: return "S";
    case Element::kPhosphorus: return "P";
    case Element::kFluorine: return "F";
    case Element::kChlorine: return "Cl";
    case Element::kBromine: return "Br";
    case Element::kIodine: return "I";
    case Element::kHydrogen: return "H";
  }
  return "?";
}

double ElementMassDa(Element e) {
  switch (e) {
    case Element::kCarbon: return 12.011;
    case Element::kNitrogen: return 14.007;
    case Element::kOxygen: return 15.999;
    case Element::kSulfur: return 32.06;
    case Element::kPhosphorus: return 30.974;
    case Element::kFluorine: return 18.998;
    case Element::kChlorine: return 35.45;
    case Element::kBromine: return 79.904;
    case Element::kIodine: return 126.904;
    case Element::kHydrogen: return 1.008;
  }
  return 0.0;
}

int ElementValence(Element e) {
  switch (e) {
    case Element::kCarbon: return 4;
    case Element::kNitrogen: return 3;
    case Element::kOxygen: return 2;
    case Element::kSulfur: return 2;
    case Element::kPhosphorus: return 3;
    case Element::kFluorine:
    case Element::kChlorine:
    case Element::kBromine:
    case Element::kIodine:
    case Element::kHydrogen:
      return 1;
  }
  return 0;
}

int Molecule::AddAtom(const Atom& atom) {
  atoms_.push_back(atom);
  adjacency_.emplace_back();
  return num_atoms() - 1;
}

util::Status Molecule::AddBond(int a, int b, BondOrder order) {
  if (a < 0 || a >= num_atoms() || b < 0 || b >= num_atoms()) {
    return util::Status::InvalidArgument(
        util::StringPrintf("bond atom index out of range: %d-%d", a, b));
  }
  if (a == b) {
    return util::Status::InvalidArgument("self-bonds are not allowed");
  }
  if (FindBond(a, b) != nullptr) {
    return util::Status::AlreadyExists(
        util::StringPrintf("duplicate bond %d-%d", a, b));
  }
  bonds_.push_back(Bond{a, b, order});
  adjacency_[static_cast<size_t>(a)].push_back(b);
  adjacency_[static_cast<size_t>(b)].push_back(a);
  return util::Status::OK();
}

const Bond* Molecule::FindBond(int a, int b) const {
  for (const auto& bond : bonds_) {
    if ((bond.a == a && bond.b == b) || (bond.a == b && bond.b == a)) {
      return &bond;
    }
  }
  return nullptr;
}

int Molecule::HydrogenCount(int i) const {
  const Atom& atom = atoms_[static_cast<size_t>(i)];
  if (atom.explicit_hydrogens >= 0) return atom.explicit_hydrogens;
  int used = 0;
  for (const auto& bond : bonds_) {
    if (bond.a == i || bond.b == i) {
      used += bond.order == BondOrder::kAromatic
                  ? 1  // ring closure brings the order sum to ~aromatic valence
                  : static_cast<int>(bond.order);
    }
  }
  if (atom.aromatic) used += 1;  // one electron is committed to the ring system
  int valence = ElementValence(atom.element) + std::max(0, atom.charge);
  return std::max(0, valence - used);
}

bool Molecule::IsConnected() const {
  if (atoms_.empty()) return true;
  std::vector<bool> seen(atoms_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int w : adjacency_[static_cast<size_t>(v)]) {
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == atoms_.size();
}

bool Molecule::BondInRing(int i) const {
  const Bond& bond = bonds_[static_cast<size_t>(i)];
  std::vector<bool> seen(atoms_.size(), false);
  std::vector<int> stack = {bond.a};
  seen[static_cast<size_t>(bond.a)] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int w : adjacency_[static_cast<size_t>(v)]) {
      if ((v == bond.a && w == bond.b) || (v == bond.b && w == bond.a)) {
        continue;  // skip the bond under test
      }
      if (w == bond.b) return true;
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

int Molecule::RingCount() const {
  if (atoms_.empty()) return 0;
  std::vector<bool> seen(atoms_.size(), false);
  int components = 0;
  for (int start = 0; start < num_atoms(); ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    ++components;
    std::vector<int> stack = {start};
    seen[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int w : adjacency_[static_cast<size_t>(v)]) {
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return num_bonds() - num_atoms() + components;
}

}  // namespace chem
}  // namespace drugtree
