#include "chem/synthetic_ligands.h"

#include <array>

#include "chem/smiles.h"
#include "util/string_util.h"

namespace drugtree {
namespace chem {

namespace {

// Ring cores. {n} in linkage positions is appended textually, so cores are
// written so that appending substituent fragments stays valid SMILES.
const std::array<const char*, 6> kCores = {
    "c1ccccc1",   // benzene
    "c1ccncc1",   // pyridine
    "c1ccoc1",    // furan
    "c1ccsc1",    // thiophene
    "C1CCCCC1",   // cyclohexane
    "C1CCNCC1",   // piperidine
};

// Substituent fragments appended after a core atom via a branch.
const std::array<const char*, 10> kSubstituents = {
    "C",        // methyl
    "CC",       // ethyl
    "O",        // hydroxyl
    "OC",       // methoxy
    "N",        // amino
    "F",        // fluoro
    "Cl",       // chloro
    "C(=O)O",   // carboxyl
    "C(=O)N",   // amide
    "C#N",      // nitrile
};

// Linkers joining two cores.
const std::array<const char*, 4> kLinkers = {"C", "CC", "CO", "CNC"};

struct FamilyTemplate {
  std::vector<int> cores;    // indices into kCores
  std::vector<int> linkers;  // indices into kLinkers, size = cores.size()-1
};

FamilyTemplate MakeFamily(const LigandGenParams& params, util::Rng* rng) {
  FamilyTemplate fam;
  int rings = 1 + static_cast<int>(rng->Uniform(
                      static_cast<uint64_t>(params.max_rings)));
  for (int r = 0; r < rings; ++r) {
    fam.cores.push_back(static_cast<int>(rng->Uniform(kCores.size())));
    if (r > 0) {
      fam.linkers.push_back(static_cast<int>(rng->Uniform(kLinkers.size())));
    }
  }
  return fam;
}

// Renumbers ring-closure digits in a fragment so concatenated fragments never
// collide: digit d becomes d + offset (all our fragments use digit 1 only).
std::string ShiftRingDigits(const std::string& frag, int offset) {
  std::string out;
  for (char c : frag) {
    if (c >= '1' && c <= '9') {
      int d = (c - '0') + offset;
      if (d <= 9) {
        out += char('0' + d);
      } else {
        out += '%';
        out += char('0' + d / 10);
        out += char('0' + d % 10);
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::string AssembleSmiles(const FamilyTemplate& fam,
                           const LigandGenParams& params, util::Rng* rng) {
  std::string smiles;
  int ring_offset = 0;
  for (size_t i = 0; i < fam.cores.size(); ++i) {
    if (i > 0) smiles += kLinkers[static_cast<size_t>(fam.linkers[i - 1])];
    smiles += ShiftRingDigits(kCores[static_cast<size_t>(fam.cores[i])],
                              ring_offset);
    ++ring_offset;
  }
  // Append substituents as branches on the end of the chain.
  int subs = static_cast<int>(
      rng->Uniform(static_cast<uint64_t>(params.max_substituents) + 1));
  for (int s = 0; s < subs; ++s) {
    smiles += '(';
    smiles += kSubstituents[rng->Uniform(kSubstituents.size())];
    smiles += ')';
  }
  return smiles;
}

}  // namespace

util::Result<std::vector<LigandRecord>> GenerateLigands(
    int n, const LigandGenParams& params, util::Rng* rng) {
  if (n < 0) return util::Status::InvalidArgument("n must be non-negative");
  if (params.num_families < 1) {
    return util::Status::InvalidArgument("num_families must be >= 1");
  }
  if (params.max_rings < 1 || params.max_rings > 6) {
    return util::Status::InvalidArgument("max_rings must be in [1, 6]");
  }
  if (rng == nullptr) return util::Status::InvalidArgument("rng must not be null");

  std::vector<FamilyTemplate> families;
  families.reserve(static_cast<size_t>(params.num_families));
  for (int f = 0; f < params.num_families; ++f) {
    families.push_back(MakeFamily(params, rng));
  }

  std::vector<LigandRecord> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const FamilyTemplate& fam = families[rng->Uniform(families.size())];
    std::string smiles = AssembleSmiles(fam, params, rng);
    // Invariant: everything we emit parses. Validate eagerly so downstream
    // code can rely on it.
    auto parsed = ParseSmiles(smiles);
    if (!parsed.ok()) {
      return parsed.status().WithContext("generated invalid SMILES '" + smiles +
                                         "'");
    }
    LigandRecord rec;
    rec.ligand_id = util::StringPrintf("%s%06d", params.id_prefix.c_str(), i);
    rec.name = util::StringPrintf("ligand-%d", i);
    rec.smiles = std::move(smiles);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace chem
}  // namespace drugtree
