#include "chem/similarity.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace chem {

double Tanimoto(const Fingerprint& a, const Fingerprint& b) {
  int inter = a.AndCount(b);
  int uni = a.OrCount(b);
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double Dice(const Fingerprint& a, const Fingerprint& b) {
  int inter = a.AndCount(b);
  int total = a.PopCount() + b.PopCount();
  if (total == 0) return 1.0;
  return 2.0 * static_cast<double>(inter) / static_cast<double>(total);
}

util::Status SimilarityIndex::Add(int64_t id, Fingerprint fp) {
  if (fp.num_bits() != num_bits_) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "fingerprint width %d does not match index width %d", fp.num_bits(),
        num_bits_));
  }
  int pc = fp.PopCount();
  if (bins_.size() <= static_cast<size_t>(num_bits_)) {
    bins_.resize(static_cast<size_t>(num_bits_) + 1);
  }
  bins_[static_cast<size_t>(pc)].push_back(Entry{id, std::move(fp)});
  ++count_;
  return util::Status::OK();
}

util::Result<std::vector<SimilarityHit>> SimilarityIndex::SearchThreshold(
    const Fingerprint& query, double threshold) const {
  if (query.num_bits() != num_bits_) {
    return util::Status::InvalidArgument("query fingerprint width mismatch");
  }
  if (threshold <= 0.0 || threshold > 1.0) {
    return util::Status::InvalidArgument("threshold must be in (0, 1]");
  }
  std::vector<SimilarityHit> hits;
  int qp = query.PopCount();
  int lo = static_cast<int>(std::ceil(threshold * qp));
  int hi = qp == 0 ? 0
                   : static_cast<int>(std::floor(static_cast<double>(qp) /
                                                 threshold));
  hi = std::min(hi, num_bits_);
  for (int p = lo; p <= hi && static_cast<size_t>(p) < bins_.size(); ++p) {
    for (const Entry& e : bins_[static_cast<size_t>(p)]) {
      double s = Tanimoto(query, e.fp);
      if (s >= threshold) hits.push_back({e.id, s});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.similarity > b.similarity ||
           (a.similarity == b.similarity && a.id < b.id);
  });
  return hits;
}

util::Result<std::vector<SimilarityHit>> SimilarityIndex::SearchThresholdParallel(
    const Fingerprint& query, double threshold, util::ThreadPool* pool) const {
  if (query.num_bits() != num_bits_) {
    return util::Status::InvalidArgument("query fingerprint width mismatch");
  }
  if (threshold <= 0.0 || threshold > 1.0) {
    return util::Status::InvalidArgument("threshold must be in (0, 1]");
  }
  // Candidate set: entries surviving the popcount bound, in bin order.
  int qp = query.PopCount();
  int lo = static_cast<int>(std::ceil(threshold * qp));
  int hi = qp == 0 ? 0
                   : static_cast<int>(std::floor(static_cast<double>(qp) /
                                                 threshold));
  hi = std::min(hi, num_bits_);
  std::vector<const Entry*> candidates;
  for (int p = lo; p <= hi && static_cast<size_t>(p) < bins_.size(); ++p) {
    for (const Entry& e : bins_[static_cast<size_t>(p)]) {
      candidates.push_back(&e);
    }
  }
  constexpr size_t kMorsel = 512;
  if (pool == nullptr || candidates.size() < 2 * kMorsel) {
    return SearchThreshold(query, threshold);
  }
  const size_t num_morsels = (candidates.size() + kMorsel - 1) / kMorsel;
  std::vector<std::vector<SimilarityHit>> partial(num_morsels);
  pool->ParallelFor(num_morsels, [&](size_t m) {
    const size_t begin = m * kMorsel;
    const size_t end = std::min(candidates.size(), begin + kMorsel);
    for (size_t i = begin; i < end; ++i) {
      double s = Tanimoto(query, candidates[i]->fp);
      if (s >= threshold) partial[m].push_back({candidates[i]->id, s});
    }
  });
  std::vector<SimilarityHit> hits;
  for (auto& p : partial) {
    hits.insert(hits.end(), p.begin(), p.end());
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.similarity > b.similarity ||
           (a.similarity == b.similarity && a.id < b.id);
  });
  return hits;
}

util::Result<std::vector<SimilarityHit>> SimilarityIndex::SearchTopK(
    const Fingerprint& query, int k) const {
  if (query.num_bits() != num_bits_) {
    return util::Status::InvalidArgument("query fingerprint width mismatch");
  }
  if (k <= 0) return util::Status::InvalidArgument("k must be positive");
  int qp = query.PopCount();

  // Visit popcounts by decreasing upper bound min(p,q)/max(p,q).
  std::vector<int> order;
  for (size_t p = 0; p < bins_.size(); ++p) {
    if (!bins_[p].empty()) order.push_back(static_cast<int>(p));
  }
  auto upper = [qp](int p) {
    if (qp == 0 && p == 0) return 1.0;
    if (qp == 0 || p == 0) return 0.0;
    return static_cast<double>(std::min(p, qp)) /
           static_cast<double>(std::max(p, qp));
  };
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return upper(a) > upper(b); });

  std::vector<SimilarityHit> best;
  for (int p : order) {
    if (static_cast<int>(best.size()) >= k &&
        best.back().similarity >= upper(p)) {
      break;  // no bin can beat the current k-th hit
    }
    for (const Entry& e : bins_[static_cast<size_t>(p)]) {
      double s = Tanimoto(query, e.fp);
      SimilarityHit hit{e.id, s};
      auto pos = std::lower_bound(
          best.begin(), best.end(), hit, [](const auto& a, const auto& b) {
            return a.similarity > b.similarity ||
                   (a.similarity == b.similarity && a.id < b.id);
          });
      best.insert(pos, hit);
      if (static_cast<int>(best.size()) > k) best.pop_back();
    }
  }
  return best;
}

std::vector<SimilarityHit> SimilarityIndex::LinearSearchThreshold(
    const Fingerprint& query, double threshold) const {
  std::vector<SimilarityHit> hits;
  for (const auto& bin : bins_) {
    for (const Entry& e : bin) {
      double s = Tanimoto(query, e.fp);
      if (s >= threshold) hits.push_back({e.id, s});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.similarity > b.similarity ||
           (a.similarity == b.similarity && a.id < b.id);
  });
  return hits;
}

}  // namespace chem
}  // namespace drugtree
