// QueryRequest: the unit of work the multi-session serving layer admits,
// schedules, and executes. A request names who is asking (session id), what
// to run (SQL + planner knobs), how it should be treated (class, priority),
// and by when it is still worth running (absolute deadline on the server's
// util::Clock).
//
// Query classes reproduce the poster's two traffic shapes: kInteractive is
// the mobile viewport/overlay path (small, latency-critical, shed early
// under overload), kAnalytic is the full-tree scan path (large,
// throughput-oriented, must not be starved by interactive bursts).

#ifndef DRUGTREE_SERVER_REQUEST_H_
#define DRUGTREE_SERVER_REQUEST_H_

#include <cstdint>
#include <memory>
#include <string>

#include "obs/trace_context.h"
#include "query/planner.h"

namespace drugtree {
namespace server {

enum class QueryClass : int {
  kInteractive = 0,  // mobile viewport / overlay actions
  kAnalytic = 1,     // full-tree scans, reports
};

inline constexpr int kNumQueryClasses = 2;

inline const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kInteractive: return "interactive";
    case QueryClass::kAnalytic: return "analytic";
  }
  return "unknown";
}

struct QueryRequest {
  /// Originating session (mobile device, analyst shell, load generator).
  uint64_t session_id = 0;
  /// The statement to run.
  std::string sql;
  QueryClass query_class = QueryClass::kInteractive;
  /// Within-class dispatch preference: higher runs first, before the
  /// deadline tiebreak.
  int priority = 0;
  /// Absolute deadline in the server clock's micros; 0 = no deadline. Once
  /// passed, the request is cancelled cooperatively (kCancelled) — before
  /// dispatch if it is still queued, at the next operator checkpoint if it
  /// is mid-scan.
  int64_t deadline_micros = 0;
  /// Per-request planner knobs (optimizer toggles, result-cache opt-in,
  /// morsel parallelism).
  query::PlannerOptions planner;
};

class ResponseState;  // server-internal; carried opaquely through the queues

/// A request inside the serving pipeline: the payload plus admission
/// bookkeeping (when it arrived and in what order).
struct PendingRequest {
  QueryRequest request;
  int64_t enqueue_micros = 0;
  uint64_t seq = 0;  // admission order; the final dispatch tiebreak
  std::shared_ptr<ResponseState> response;
  /// Per-request trace carried through the pipeline (null when the server
  /// runs with tracing disabled). Shared: the submit thread and the
  /// executing worker both annotate it; TraceContext is internally locked.
  std::shared_ptr<obs::TraceContext> trace;
};

}  // namespace server
}  // namespace drugtree

#endif  // DRUGTREE_SERVER_REQUEST_H_
