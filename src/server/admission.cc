#include "server/admission.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace server {

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const util::Clock* clock)
    : clock_(clock) {
  auto* registry = obs::MetricRegistry::Default();
  for (int c = 0; c < kNumQueryClasses; ++c) {
    ClassQueue& q = classes_[static_cast<size_t>(c)];
    QueryClass cls = static_cast<QueryClass>(c);
    obs::Labels labels = {{"class", QueryClassName(cls)}};
    // 0 is honoured (admit nothing — shed every request of this class).
    q.capacity = std::max(0, options.queue_capacity(cls));
    q.depth_gauge = registry->GetGauge("server.admission.queue_depth", labels);
    q.admitted_counter =
        registry->GetCounter("server.admission.admitted", labels);
    q.shed_counter = registry->GetCounter("server.admission.shed", labels);
    q.wait_ms =
        registry->GetHistogram("server.admission.queue_wait_ms", labels);
  }
}

util::Status AdmissionController::Admit(PendingRequest* req) {
  ClassQueue& q = classes_[static_cast<size_t>(req->request.query_class)];
  if (q.queue.size() >= static_cast<size_t>(q.capacity)) {
    ++q.shed_count;
    q.shed_counter->Increment();
    return util::Status::ResourceExhausted(util::StringPrintf(
        "%s queue full (%d queued)", QueryClassName(req->request.query_class),
        q.capacity));
  }
  req->enqueue_micros = clock_->NowMicros();
  req->seq = next_seq_++;
  q.queue.push_back(std::move(*req));
  ++q.admitted_count;
  q.admitted_counter->Increment();
  q.depth_gauge->Set(static_cast<int64_t>(q.queue.size()));
  return util::Status::OK();
}

PendingRequest AdmissionController::Pop(QueryClass c) {
  ClassQueue& q = classes_[static_cast<size_t>(c)];
  // Scan for the best entry: priority desc, deadline asc (0 = none sorts
  // last), admission order asc. Queues are bounded and small, so a linear
  // scan beats maintaining a heap under the scheduling mutex.
  auto better = [](const PendingRequest& a, const PendingRequest& b) {
    if (a.request.priority != b.request.priority) {
      return a.request.priority > b.request.priority;
    }
    int64_t da = a.request.deadline_micros;
    int64_t db = b.request.deadline_micros;
    if (da != db) {
      if (da == 0) return false;  // no deadline loses to any deadline
      if (db == 0) return true;
      return da < db;
    }
    return a.seq < b.seq;
  };
  auto best = q.queue.begin();
  for (auto it = std::next(q.queue.begin()); it != q.queue.end(); ++it) {
    if (better(*it, *best)) best = it;
  }
  PendingRequest out = std::move(*best);
  q.queue.erase(best);
  q.depth_gauge->Set(static_cast<int64_t>(q.queue.size()));
  q.wait_ms->Observe(
      static_cast<double>(clock_->NowMicros() - out.enqueue_micros) / 1000.0);
  return out;
}

bool AdmissionController::Empty() const {
  for (const auto& q : classes_) {
    if (!q.queue.empty()) return false;
  }
  return true;
}

}  // namespace server
}  // namespace drugtree
