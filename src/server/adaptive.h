// AdaptiveController: closed-loop retuning of per-class execution knobs
// (vectorized batch size, morsel parallelism) from observed completion
// latencies.
//
// The control signal is the interactive class's recent p99 versus its
// latency target; the actuator is the *analytic* class's aggressiveness.
// Analytic work starts at full width (it soaks spare slots on an idle
// server); when interactive p99 climbs past the target, analytic
// parallelism and batch size step down so interactive requests stop
// queueing behind wide morsel fans; when p99 stays comfortably low for
// several consecutive windows (hysteresis — one good window is noise),
// analytic width steps back up.
//
// Safety: batch size and parallelism are result-invariance axes of the
// engine (identical rows at any setting), so the controller can never
// change answers — only latency. Decisions are count-driven (every
// `window` interactive completions), not wall-clock-driven, so behavior
// is deterministic under a simulated clock.

#ifndef DRUGTREE_SERVER_ADAPTIVE_H_
#define DRUGTREE_SERVER_ADAPTIVE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "server/request.h"

namespace drugtree {
namespace server {

struct AdaptiveOptions {
  /// Off by default: requests run with their submitted knobs untouched.
  bool enabled = false;
  /// Interactive completions per control decision.
  int window = 64;
  /// Interactive p99 target the controller defends (distinct from the SLO
  /// target, which is enqueue->completion at a coarser bound).
  int64_t target_micros = 2'000;
  /// p99 above high_ratio * target steps analytic width down immediately.
  double high_ratio = 0.9;
  /// p99 below low_ratio * target is a "comfortable" window; after
  /// `hysteresis` consecutive ones, analytic width steps back up.
  double low_ratio = 0.5;
  int hysteresis = 2;
  /// Bounds for the analytic knobs the controller walks between.
  int min_parallelism = 1;
  int max_parallelism = 4;
  size_t min_batch = 256;
  size_t max_batch = 4096;
};

/// The two execution knobs the controller owns per class.
struct AdaptiveKnobs {
  size_t batch_size = 1024;
  int parallelism = 1;
};

class AdaptiveController {
 public:
  explicit AdaptiveController(const AdaptiveOptions& options);

  const AdaptiveOptions& options() const { return options_; }

  /// Feed one completed request's enqueue->completion latency. Interactive
  /// completions drive the control loop; other classes are ignored (their
  /// latency is the thing being traded away). No-op when disabled.
  void Record(QueryClass cls, int64_t latency_micros);

  /// Current knobs for a class. Interactive knobs are fixed (small
  /// requests gain nothing from wide morsel fans); analytic knobs move
  /// with the control loop.
  AdaptiveKnobs knobs(QueryClass cls) const;

  int64_t decisions() const;
  int64_t steps_down() const;
  int64_t steps_up() const;

  /// {"enabled":..,"decisions":..,"steps_down":..,"steps_up":..,
  ///  "last_p99_micros":..,"analytic":{"batch_size":..,"parallelism":..}}
  std::string StatszJson() const;

 private:
  void StepDownLocked();
  void StepUpLocked();

  const AdaptiveOptions options_;

  mutable std::mutex mu_;
  std::vector<int64_t> window_;  // interactive latencies this window
  AdaptiveKnobs interactive_;
  AdaptiveKnobs analytic_;
  int low_streak_ = 0;
  int64_t last_p99_micros_ = 0;
  int64_t decisions_ = 0;
  int64_t steps_down_ = 0;
  int64_t steps_up_ = 0;
};

}  // namespace server
}  // namespace drugtree

#endif  // DRUGTREE_SERVER_ADAPTIVE_H_
