// Admission control: per-class bounded queues with load shedding. A full
// class queue rejects new work immediately (kResourceExhausted) instead of
// letting latency grow without bound — the mobile client retries or degrades
// gracefully, and the server's completed-request latency stays bounded.
//
// Synchronization contract: the queue-mutating methods (Admit/Pop) and the
// depth accessors are externally synchronized — DrugTreeServer calls them
// under its scheduling mutex. Metric writes inside are safe from any thread.

#ifndef DRUGTREE_SERVER_ADMISSION_H_
#define DRUGTREE_SERVER_ADMISSION_H_

#include <array>
#include <cstdint>
#include <deque>

#include "obs/metrics.h"
#include "server/request.h"
#include "util/clock.h"
#include "util/status.h"

namespace drugtree {
namespace server {

struct AdmissionOptions {
  /// Per-class queue bounds; 0 admits nothing (sheds the whole class).
  /// Interactive work is plentiful and cheap; give it headroom.
  int interactive_queue_capacity = 64;
  /// Analytic scans are heavy; keep the backlog short so an accepted scan
  /// still means something.
  int analytic_queue_capacity = 16;

  int queue_capacity(QueryClass c) const {
    return c == QueryClass::kInteractive ? interactive_queue_capacity
                                         : analytic_queue_capacity;
  }
};

class AdmissionController {
 public:
  /// `clock` is borrowed and times queue waits (the server's clock).
  AdmissionController(const AdmissionOptions& options,
                      const util::Clock* clock);

  /// Enqueues the request, stamping enqueue time and admission order.
  /// Returns kResourceExhausted — and counts a shed — when the class queue
  /// is at capacity. The caller still owns `req.response` on rejection.
  util::Status Admit(PendingRequest* req);

  /// Pops the best queued request of `c`: highest priority first, then
  /// earliest deadline (no deadline sorts last), then admission order.
  /// Requires QueueDepth(c) > 0. Observes the queue-wait histogram.
  PendingRequest Pop(QueryClass c);

  size_t QueueDepth(QueryClass c) const {
    return classes_[static_cast<size_t>(c)].queue.size();
  }
  bool Empty() const;

  // Test/report accessors (snapshot semantics, like the obs counters).
  int64_t admitted(QueryClass c) const {
    return classes_[static_cast<size_t>(c)].admitted_count;
  }
  int64_t shed(QueryClass c) const {
    return classes_[static_cast<size_t>(c)].shed_count;
  }

 private:
  struct ClassQueue {
    std::deque<PendingRequest> queue;
    int capacity = 0;
    int64_t admitted_count = 0;
    int64_t shed_count = 0;
    obs::Gauge* depth_gauge = nullptr;
    obs::Counter* admitted_counter = nullptr;
    obs::Counter* shed_counter = nullptr;
    obs::HistogramMetric* wait_ms = nullptr;
  };

  const util::Clock* clock_;
  std::array<ClassQueue, kNumQueryClasses> classes_;
  uint64_t next_seq_ = 1;
};

}  // namespace server
}  // namespace drugtree

#endif  // DRUGTREE_SERVER_ADMISSION_H_
