#include "server/adaptive.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace server {

AdaptiveController::AdaptiveController(const AdaptiveOptions& options)
    : options_(options) {
  window_.reserve(static_cast<size_t>(std::max(1, options_.window)));
  // Analytic starts wide: an unloaded server should soak every spare slot.
  // The first pressured window walks it down.
  analytic_.batch_size = options_.max_batch;
  analytic_.parallelism = options_.max_parallelism;
}

void AdaptiveController::Record(QueryClass cls, int64_t latency_micros) {
  if (!options_.enabled || cls != QueryClass::kInteractive) return;
  std::lock_guard<std::mutex> lock(mu_);
  window_.push_back(latency_micros);
  if (static_cast<int>(window_.size()) < std::max(1, options_.window)) return;
  std::sort(window_.begin(), window_.end());
  size_t idx = static_cast<size_t>(0.99 * static_cast<double>(window_.size()));
  if (idx >= window_.size()) idx = window_.size() - 1;
  last_p99_micros_ = window_[idx];
  window_.clear();
  ++decisions_;
  const double target = static_cast<double>(options_.target_micros);
  const double p99 = static_cast<double>(last_p99_micros_);
  if (p99 > options_.high_ratio * target) {
    low_streak_ = 0;
    StepDownLocked();
  } else if (p99 < options_.low_ratio * target) {
    if (++low_streak_ >= std::max(1, options_.hysteresis)) {
      low_streak_ = 0;
      StepUpLocked();
    }
  } else {
    low_streak_ = 0;  // in-band: hold, and restart the step-up evidence
  }
}

void AdaptiveController::StepDownLocked() {
  bool moved = false;
  if (analytic_.parallelism > options_.min_parallelism) {
    --analytic_.parallelism;
    moved = true;
  }
  if (analytic_.batch_size / 2 >= options_.min_batch) {
    analytic_.batch_size /= 2;
    moved = true;
  }
  if (moved) ++steps_down_;
}

void AdaptiveController::StepUpLocked() {
  bool moved = false;
  if (analytic_.parallelism < options_.max_parallelism) {
    ++analytic_.parallelism;
    moved = true;
  }
  if (analytic_.batch_size * 2 <= options_.max_batch) {
    analytic_.batch_size *= 2;
    moved = true;
  }
  if (moved) ++steps_up_;
}

AdaptiveKnobs AdaptiveController::knobs(QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cls == QueryClass::kInteractive ? interactive_ : analytic_;
}

int64_t AdaptiveController::decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

int64_t AdaptiveController::steps_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_down_;
}

int64_t AdaptiveController::steps_up() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_up_;
}

std::string AdaptiveController::StatszJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return util::StringPrintf(
      "{\"enabled\":%s,\"decisions\":%lld,\"steps_down\":%lld,"
      "\"steps_up\":%lld,\"last_p99_micros\":%lld,"
      "\"analytic\":{\"batch_size\":%zu,\"parallelism\":%d}}",
      options_.enabled ? "true" : "false", (long long)decisions_,
      (long long)steps_down_, (long long)steps_up_,
      (long long)last_p99_micros_, analytic_.batch_size,
      analytic_.parallelism);
}

}  // namespace server
}  // namespace drugtree
