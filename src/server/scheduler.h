// Deadline-aware weighted-fair scheduling across query classes.
//
// Cross-class fairness is stride scheduling: each class carries a pass
// value that advances by kStrideScale / weight per dispatch, and the
// backlogged class with the smallest pass runs next. Interactive work
// (weight 4 by default) therefore gets ~4 dispatch opportunities per
// analytic one when both are backlogged, while analytic work is never
// starved — its pass always catches up. A class re-entering after idling is
// clamped to the current virtual time so it cannot burst on accumulated
// lag. Within a class, AdmissionController::Pop orders by priority then
// earliest deadline, which is what makes the scheduler deadline-aware.
//
// Per-class slots cap how much of the worker pool one class can occupy
// (analytic scans cannot monopolize every worker), and total_slots caps
// global concurrency. Externally synchronized by the server's mutex.

#ifndef DRUGTREE_SERVER_SCHEDULER_H_
#define DRUGTREE_SERVER_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <optional>

#include "server/admission.h"
#include "server/request.h"

namespace drugtree {
namespace server {

struct SchedulerOptions {
  int interactive_weight = 4;
  int analytic_weight = 1;
  /// Per-class concurrency caps. Their sum may exceed total_slots; the
  /// global cap then arbitrates.
  int interactive_slots = 3;
  int analytic_slots = 2;
  /// Global concurrency cap; keep <= the server's worker thread count so a
  /// dispatched request never waits behind another in the pool queue.
  int total_slots = 4;

  int weight(QueryClass c) const {
    return c == QueryClass::kInteractive ? interactive_weight
                                         : analytic_weight;
  }
  int slots(QueryClass c) const {
    return c == QueryClass::kInteractive ? interactive_slots : analytic_slots;
  }
};

class FairScheduler {
 public:
  /// `admission` is borrowed; the scheduler pops from its queues.
  FairScheduler(const SchedulerOptions& options,
                AdmissionController* admission);

  /// Pops and returns the next request to dispatch, charging the chosen
  /// class's stride, or nullopt when nothing is runnable (all queues empty,
  /// class slots exhausted, or the global cap is reached).
  std::optional<PendingRequest> PickNext();

  /// Releases the slot held by a completed request of class `c`.
  void OnComplete(QueryClass c);

  int running(QueryClass c) const {
    return running_[static_cast<size_t>(c)];
  }
  int running_total() const { return running_total_; }

 private:
  static constexpr int64_t kStrideScale = 1 << 20;

  AdmissionController* admission_;
  SchedulerOptions options_;
  std::array<int64_t, kNumQueryClasses> pass_{};
  std::array<int64_t, kNumQueryClasses> stride_{};
  std::array<int, kNumQueryClasses> running_{};
  int64_t vtime_ = 0;  // pass of the most recent dispatch
  int running_total_ = 0;
};

}  // namespace server
}  // namespace drugtree

#endif  // DRUGTREE_SERVER_SCHEDULER_H_
