#include "server/server.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/string_util.h"

namespace drugtree {
namespace server {

namespace {

/// DRUGTREE_SLOW_QUERY_MICROS overrides ServerOptions::slow_query_micros so
/// operators can arm the slow-query log on a deployed binary without a
/// rebuild. Unset / unparsable -> the configured value.
int64_t ResolveSlowQueryMicros(int64_t configured) {
  const char* env = std::getenv("DRUGTREE_SLOW_QUERY_MICROS");
  if (env == nullptr || env[0] == '\0') return configured;
  char* end = nullptr;
  long long parsed = std::strtoll(env, &end, 10);
  if (end == env || parsed < 0) return configured;
  return static_cast<int64_t>(parsed);
}

/// DRUGTREE_TELEMETRY=0 kills the sampler/alert wiring on a deployed binary
/// (the obs_noop_ab overhead lane); any other value keeps the configured
/// setting.
bool ResolveTelemetryEnabled(bool configured) {
  const char* env = std::getenv("DRUGTREE_TELEMETRY");
  if (env == nullptr || env[0] == '\0') return configured;
  return !(env[0] == '0' && env[1] == '\0');
}

/// Health rollup buckets every server reports on, even when no alert
/// targets them yet.
const std::vector<std::string>& HealthBaseline() {
  static const std::vector<std::string>* baseline =
      new std::vector<std::string>{"admission", "scheduler", "plan_cache",
                                   "memory", "serving"};
  return *baseline;
}

}  // namespace

bool ResponseHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu_);
  return state_->done_;
}

void ResponseHandle::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel_.store(true, std::memory_order_relaxed);
}

util::Result<query::QueryOutcome> ResponseHandle::Wait() {
  if (state_ == nullptr) {
    return util::Status::Internal("empty response handle");
  }
  std::unique_lock<std::mutex> lock(state_->mu_);
  state_->cv_.wait(lock, [&] { return state_->done_; });
  if (state_->consumed_) {
    return util::Status::Internal("result already consumed");
  }
  state_->consumed_ = true;
  return std::move(state_->result_);
}

DrugTreeServer::DrugTreeServer(query::Catalog* catalog, util::Clock* clock,
                               const ServerOptions& options)
    : catalog_(catalog),
      clock_(clock),
      options_(options),
      trace_store_(options.trace_store_capacity,
                   ResolveSlowQueryMicros(options.slow_query_micros)),
      memory_root_("server", /*parent=*/nullptr,
                   static_cast<int64_t>(
                       options.memory_high_watermark *
                       static_cast<double>(options.server_memory_bytes)),
                   static_cast<int64_t>(options.server_memory_bytes)),
      admission_(options.admission, clock),
      scheduler_(options.scheduler, &admission_) {
  for (int c = 0; c < kNumQueryClasses; ++c) {
    QueryClass qc = static_cast<QueryClass>(c);
    class_trackers_[static_cast<size_t>(c)] =
        memory_root_.GetOrCreateChild(QueryClassName(qc));
    obs::SloOptions slo_opts;
    slo_opts.target_latency_micros = qc == QueryClass::kInteractive
                                         ? options_.interactive_slo_micros
                                         : options_.analytic_slo_micros;
    slo_opts.objective = options_.slo_objective;
    slo_opts.window_micros = options_.slo_window_micros;
    slo_[static_cast<size_t>(c)] = std::make_unique<obs::SloTracker>(
        QueryClassName(qc), slo_opts, clock_);
  }
  // Account the catalog's resident table data up front: what the scans will
  // actually read is what admission should budget against. Encoded tables
  // charge their compressed bytes, plain tables their row-format estimate,
  // so compression directly widens the watermark headroom. Unconditional
  // Charge: resident data is a fact, not a request the server may refuse.
  {
    obs::MemoryTracker* tables = memory_root_.GetOrCreateChild("tables");
    for (const auto& [name, table] : catalog_->tables()) {
      (void)name;
      resident_table_bytes_ +=
          static_cast<int64_t>(table->ApproxScanFootprintBytes());
    }
    if (resident_table_bytes_ > 0) tables->Charge(resident_table_bytes_);
  }
  if (options_.result_cache_bytes > 0) {
    result_cache_ =
        std::make_unique<query::ResultCache>(options_.result_cache_bytes);
    result_cache_->AttachMemoryTracker(
        memory_root_.GetOrCreateChild("result_cache"));
  }
  // Plan cache / calibrator / adaptive controller are always constructed
  // (Statusz shows an all-zero block when a feature is off) but only wired
  // into the planners when enabled.
  plan_cache_ = std::make_unique<query::PlanCache>(options_.plan_cache_entries);
  calibrator_ = std::make_unique<obs::CostCalibrator>();
  adaptive_ = std::make_unique<AdaptiveController>(options_.adaptive);
  int slots = std::max(1, options_.scheduler.total_slots);
  for (int s = 0; s < slots; ++s) {
    planners_.push_back(std::make_unique<query::Planner>(
        catalog_, result_cache_.get(),
        options_.enable_plan_cache ? plan_cache_.get() : nullptr,
        options_.enable_cost_calibration ? calibrator_.get() : nullptr));
    free_slots_.push_back(s);
  }
  auto* registry = obs::MetricRegistry::Default();
  for (int c = 0; c < kNumQueryClasses; ++c) {
    obs::Labels labels = {
        {"class", QueryClassName(static_cast<QueryClass>(c))}};
    // Sharded replicas discriminate their serving counters by shard id so
    // the router's tail attribution can name the slowest shard, not just
    // the slowest phase. Standalone servers keep the historical label set.
    if (!options_.shard_id.empty()) labels["shard"] = options_.shard_id;
    ClassMetrics& m = metrics_[static_cast<size_t>(c)];
    m.latency_ms = registry->GetHistogram("server.latency_ms", labels);
    m.completed = registry->GetCounter("server.requests.completed", labels);
    m.failed = registry->GetCounter("server.requests.failed", labels);
    m.cancelled = registry->GetCounter("server.requests.cancelled", labels);
    m.deadline_missed =
        registry->GetCounter("server.requests.deadline_missed", labels);
  }
  pool_queue_gauge_ = registry->GetGauge("server.pool.queue_depth");
  obs::Labels shard_labels;
  if (!options_.shard_id.empty()) shard_labels["shard"] = options_.shard_id;
  free_slots_gauge_ =
      registry->GetGauge("server.scheduler.free_slots", shard_labels);
  free_slots_gauge_->Set(static_cast<int64_t>(free_slots_.size()));

  if (ResolveTelemetryEnabled(options_.telemetry.enabled)) {
    timeline_ = std::make_unique<obs::TimeSeriesStore>(
        options_.telemetry.timeline_points);
    obs::SamplerOptions sampler_opts;
    sampler_opts.interval_micros = options_.telemetry.sample_interval_micros;
    sampler_opts.registry_prefixes = {"server.", "router."};
    sampler_ = std::make_unique<obs::MetricsSampler>(
        timeline_.get(), registry, clock_, std::move(sampler_opts));
    sampler_->AddProbe("memory.used_bytes", [this] {
      return static_cast<double>(memory_root_.used());
    });
    sampler_->AddProbe("memory.pressure_pct", [this] {
      int64_t soft = memory_root_.soft_limit_bytes();
      if (soft <= 0) return std::nan("");
      return 100.0 * static_cast<double>(memory_root_.used()) /
             static_cast<double>(soft);
    });
    for (int c = 0; c < kNumQueryClasses; ++c) {
      const char* cls = QueryClassName(static_cast<QueryClass>(c));
      const obs::SloTracker* slo = slo_[static_cast<size_t>(c)].get();
      sampler_->AddProbe(util::StringPrintf("slo.%s.burn_rate", cls),
                         [slo] { return slo->GetSnapshot().burn_rate; });
      sampler_->AddProbe(util::StringPrintf("slo.%s.compliance", cls),
                         [slo] { return slo->GetSnapshot().compliance; });
    }
    // Saturation = queued work while zero slots are free. A serialized
    // closed-loop client always completes with its own slot busy but the
    // queue empty, so this reads 0 unless dispatch genuinely starves.
    // Probes run from TelemetryTick, which is never called with mu_ held.
    sampler_->AddProbe("scheduler.starved_depth", [this] {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_slots_.empty()) return 0.0;
      return static_cast<double>(
          admission_.QueueDepth(QueryClass::kInteractive) +
          admission_.QueueDepth(QueryClass::kAnalytic));
    });
    sampler_->AddProbe("plan_cache.hit_rate_pct", [this] {
      query::PlanCache::Stats s = plan_cache_->stats();
      int64_t lookups = s.hits + s.misses;
      if (lookups == 0) return std::nan("");
      return 100.0 * static_cast<double>(s.hits) /
             static_cast<double>(lookups);
    });

    alerts_ = std::make_unique<obs::AlertEngine>(timeline_.get(), clock_);
    int64_t interval = options_.telemetry.sample_interval_micros;
    if (options_.telemetry.default_rules) {
      obs::AlertRule rule;
      rule.name = "memory_pressure";
      rule.kind = obs::AlertKind::kThreshold;
      rule.series = "memory.pressure_pct";
      rule.threshold = 100.0;
      rule.subsystem = "memory";
      alerts_->AddRule(rule);

      rule = obs::AlertRule();
      rule.name = "interactive_burn";
      rule.kind = obs::AlertKind::kBurnRate;
      rule.series = "slo.interactive.burn_rate";
      rule.threshold = 1.0;
      rule.short_window_micros = 2 * interval;
      rule.long_window_micros = 8 * interval;
      rule.subsystem = "serving";
      rule.severity = obs::AlertSeverity::kCritical;
      alerts_->AddRule(rule);

      rule.name = "analytic_burn";
      rule.series = "slo.analytic.burn_rate";
      rule.severity = obs::AlertSeverity::kWarning;
      alerts_->AddRule(rule);

      rule = obs::AlertRule();
      rule.name = "interactive_queue_growth";
      rule.kind = obs::AlertKind::kRateOfChange;
      rule.series = "server.admission.queue_depth{class=interactive}";
      rule.threshold = 50.0;  // sustained +50 queued requests per second
      rule.for_micros = 2 * interval;
      rule.subsystem = "admission";
      alerts_->AddRule(rule);

      rule = obs::AlertRule();
      rule.name = "plan_cache_collapse";
      rule.kind = obs::AlertKind::kRateOfChange;
      rule.series = "plan_cache.hit_rate_pct";
      rule.threshold = -10.0;  // hit rate falling >10 pct-points per second
      rule.fire_above = false;
      rule.for_micros = 2 * interval;
      rule.subsystem = "plan_cache";
      alerts_->AddRule(rule);

      rule = obs::AlertRule();
      rule.name = "scheduler_saturated";
      rule.kind = obs::AlertKind::kThreshold;
      rule.series = "scheduler.starved_depth";
      rule.threshold = 0.5;  // any queued work while zero slots free
      rule.for_micros = 4 * interval;
      rule.subsystem = "scheduler";
      alerts_->AddRule(rule);
    }
    for (const obs::AlertRule& extra : options_.telemetry.extra_rules) {
      alerts_->AddRule(extra);
    }
  }
  pool_ = std::make_unique<util::ThreadPool>(
      std::max(1, options_.worker_threads));
}

DrugTreeServer::~DrugTreeServer() {
  Resume();
  Drain();
}

ResponseHandle DrugTreeServer::SubmitAsync(QueryRequest request) {
  DT_SPAN("server.submit");
  PendingRequest pending;
  pending.request = std::move(request);
  pending.response = std::make_shared<ResponseState>();
  ResponseHandle handle(pending.response);
  QueryClass cls = pending.request.query_class;
  std::shared_ptr<obs::TraceContext> trace;
  int64_t submit_micros = 0;
  if (options_.enable_tracing) {
    submit_micros = clock_->NowMicros();
    trace = std::make_shared<obs::TraceContext>(
        next_trace_id_.fetch_add(1, std::memory_order_relaxed), clock_);
    trace->set_session_id(pending.request.session_id);
    trace->set_query_class(QueryClassName(cls));
    trace->set_sql(pending.request.sql);
    pending.trace = trace;
  }
  util::Status admitted;
  bool memory_shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Memory-pressure admission: once tracked usage crosses the high
    // watermark, analytic work is shed before it can queue — the headroom
    // between watermark and hard limit stays reserved for interactive
    // traffic, which is never memory-shed.
    if (cls == QueryClass::kAnalytic && memory_root_.OverSoftLimit()) {
      admitted = util::Status::ResourceExhausted(util::StringPrintf(
          "analytic admission shed: server memory %lld bytes above high "
          "watermark %lld",
          (long long)memory_root_.used(),
          (long long)memory_root_.soft_limit_bytes()));
      memory_shed = true;
      counters_[static_cast<size_t>(cls)].shed++;
      counters_[static_cast<size_t>(cls)].memory_shed++;
    } else {
      admitted = admission_.Admit(&pending);
      if (admitted.ok()) {
        if (trace != nullptr) {
          // Admission stamps enqueue_micros under mu_; [submit, enqueue] is
          // the admission-control work. Tag it before DispatchLocked can
          // hand the request to a worker.
          trace->AddPhaseInterval(obs::TracePhase::kAdmit, submit_micros,
                                  pending.enqueue_micros);
        }
        counters_[static_cast<size_t>(cls)].admitted++;
        DispatchLocked();
      } else {
        counters_[static_cast<size_t>(cls)].shed++;
      }
    }
  }
  if (!admitted.ok()) {
    // A shed request is an instantly-failed one from the SLO's viewpoint.
    slo_[static_cast<size_t>(cls)]->Record(/*latency_micros=*/0,
                                           /*ok=*/false);
    if (trace != nullptr) {
      trace->AddPhaseInterval(obs::TracePhase::kAdmit, submit_micros,
                              clock_->NowMicros());
      trace_store_.Record(
          trace->Finish(memory_shed ? "shed_memory" : "shed", /*ok=*/false));
    }
    // Tick before Complete() publishes: a serialized virtual-clock client is
    // still blocked in Wait, so the sample lands at a deterministic point.
    TelemetryTick();
    Complete(handle.state_, std::move(admitted));
  }
  return handle;
}

util::Result<query::QueryOutcome> DrugTreeServer::Submit(
    QueryRequest request) {
  return SubmitAsync(std::move(request)).Wait();
}

void DrugTreeServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void DrugTreeServer::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  DispatchLocked();
}

void DrugTreeServer::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] {
      return admission_.Empty() && scheduler_.running_total() == 0;
    });
  }
  // A quiesced server still moves the timeline forward (burn rates decay,
  // alerts resolve) when someone drains it after advancing the clock.
  TelemetryTick();
}

bool DrugTreeServer::TelemetryTick() {
  if (sampler_ == nullptr) return false;
  // Off-cadence ticks (the common case — every request completion lands
  // here) bail on a lock-free check before touching telemetry_mu_.
  if (!sampler_->Due()) return false;
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  if (!sampler_->SampleIfDue()) return false;
  alerts_->Evaluate();
  overall_health_.store(
      static_cast<int>(
          obs::DeriveHealth(alerts_->Statuses(), HealthBaseline()).overall),
      std::memory_order_relaxed);
  return true;
}

void DrugTreeServer::ForceTelemetrySample() {
  if (sampler_ == nullptr) return;
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  sampler_->SampleNow();
  alerts_->Evaluate();
  overall_health_.store(
      static_cast<int>(
          obs::DeriveHealth(alerts_->Statuses(), HealthBaseline()).overall),
      std::memory_order_relaxed);
}

obs::HealthSnapshot DrugTreeServer::HealthSnapshotNow() const {
  return obs::DeriveHealth(
      alerts_ != nullptr ? alerts_->Statuses() : std::vector<obs::AlertStatus>(),
      HealthBaseline());
}

std::string DrugTreeServer::TailAttributionReport() {
  std::vector<obs::TailAttribution> attrs =
      obs::ComputeTailAttribution(trace_store_.Snapshot());
  if (attrs.empty()) return "(no traces recorded)\n";
  auto* registry = obs::MetricRegistry::Default();
  std::string out;
  for (const obs::TailAttribution& a : attrs) {
    registry
        ->GetGauge("server.tail.p99_micros", {{"class", a.query_class}})
        ->Set(a.p99_micros);
    for (int p = 0; p < obs::kNumTracePhases; ++p) {
      registry
          ->GetGauge("server.tail.share_pct",
                     {{"class", a.query_class},
                      {"phase",
                       obs::TracePhaseName(static_cast<obs::TracePhase>(p))}})
          ->Set(std::llround(100.0 * a.share[static_cast<size_t>(p)]));
    }
    out += a.ToString();
    out += "\n";
  }
  return out;
}

DrugTreeServer::ClassCounters DrugTreeServer::counters(QueryClass c) const {
  std::lock_guard<std::mutex> lock(mu_);
  ClassCounters out = counters_[static_cast<size_t>(c)];
  // Shed/admitted are also tracked by admission; keep the authoritative
  // values consistent with the obs counters it bumps. Memory-pressure sheds
  // happen before admission ever sees the request, so they are added on
  // top of the queue-driven sheds.
  out.shed = admission_.shed(c) + out.memory_shed;
  return out;
}

std::string DrugTreeServer::Statusz() {
  // Freshen the timeline (if due) so the snapshot reports current history.
  // Must run before mu_ is taken below: probes read server state.
  TelemetryTick();
  std::string out = util::StringPrintf(
      "{\"shard\":{\"id\":\"%s\",\"role\":\"%s\"},\"memory\":",
      options_.shard_id.c_str(),
      options_.shard_id.empty() ? "standalone" : "replica");
  out += memory_root_.ToJson();
  out += ",\"slo\":{";
  for (int c = 0; c < kNumQueryClasses; ++c) {
    if (c) out += ",";
    out += util::StringPrintf("\"%s\":",
                              QueryClassName(static_cast<QueryClass>(c)));
    out += slo_[static_cast<size_t>(c)]->ToJson();
  }
  out += "}";
  {
    std::lock_guard<std::mutex> lock(mu_);
    out += ",\"admission\":{";
    for (int c = 0; c < kNumQueryClasses; ++c) {
      QueryClass qc = static_cast<QueryClass>(c);
      if (c) out += ",";
      out += util::StringPrintf(
          "\"%s\":{\"queue_depth\":%zu,\"queue_capacity\":%d,"
          "\"admitted\":%lld,\"shed\":%lld}",
          QueryClassName(qc), admission_.QueueDepth(qc),
          options_.admission.queue_capacity(qc),
          (long long)admission_.admitted(qc), (long long)admission_.shed(qc));
    }
    out += util::StringPrintf(
        "},\"scheduler\":{\"total_slots\":%d,\"free_slots\":%zu,"
        "\"running\":%d,\"paused\":%s}",
        std::max(1, options_.scheduler.total_slots), free_slots_.size(),
        scheduler_.running_total(), paused_ ? "true" : "false");
    out += ",\"classes\":{";
    for (int c = 0; c < kNumQueryClasses; ++c) {
      QueryClass qc = static_cast<QueryClass>(c);
      const ClassCounters& cc = counters_[static_cast<size_t>(c)];
      if (c) out += ",";
      out += util::StringPrintf(
          "\"%s\":{\"admitted\":%lld,\"shed\":%lld,\"memory_shed\":%lld,"
          "\"completed\":%lld,\"failed\":%lld,\"memory_aborted\":%lld,"
          "\"cancelled\":%lld,\"deadline_missed\":%lld}",
          QueryClassName(qc), (long long)cc.admitted,
          (long long)(admission_.shed(qc) + cc.memory_shed),
          (long long)cc.memory_shed, (long long)cc.completed,
          (long long)cc.failed, (long long)cc.memory_aborted,
          (long long)cc.cancelled, (long long)cc.deadline_missed);
    }
    out += "}";
  }
  out += ",\"plan_cache\":";
  out += plan_cache_->StatszJson();
  out += ",\"cost_calibrator\":";
  out += calibrator_->StatszJson();
  out += ",\"adaptive\":";
  out += adaptive_->StatszJson();
  out += util::StringPrintf(
      ",\"timeline\":{\"enabled\":%s,\"sample_interval_micros\":%lld,"
      "\"samples\":%lld,\"series\":",
      timeline_ != nullptr ? "true" : "false",
      (long long)options_.telemetry.sample_interval_micros,
      (long long)(sampler_ != nullptr ? sampler_->samples() : 0));
  out += timeline_ != nullptr ? timeline_->SummaryJson() : "[]";
  out += "},\"alerts\":";
  out += alerts_ != nullptr
             ? alerts_->ToJson()
             : "{\"firing\":0,\"rules\":[],\"transitions\":[]}";
  out += ",\"health\":";
  out += HealthSnapshotNow().ToJson();
  out += util::StringPrintf(
      ",\"trace_store\":{\"recorded\":%lld,\"dropped\":%lld,\"slow\":%lld}}",
      (long long)trace_store_.total_recorded(),
      (long long)trace_store_.dropped(), (long long)trace_store_.slow_count());
  return out;
}

void DrugTreeServer::EnableDispatchLog() {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_log_enabled_ = true;
  dispatch_log_.clear();
}

std::vector<uint64_t> DrugTreeServer::TakeDispatchLog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out = std::move(dispatch_log_);
  dispatch_log_.clear();
  return out;
}

void DrugTreeServer::DispatchLocked() {
  if (paused_) return;
  // Read the pool depth *before* handing new work to the pool: a worker
  // dequeues a just-submitted task at an arbitrary real-time instant, so a
  // post-submit read races — and a raced value sampled into the telemetry
  // timeline breaks bit-determinism for serialized virtual-clock workloads.
  pool_queue_gauge_->Set(static_cast<int64_t>(pool_->QueueDepth()));
  while (!free_slots_.empty()) {
    std::optional<PendingRequest> next = scheduler_.PickNext();
    if (!next.has_value()) break;
    int slot = free_slots_.back();
    free_slots_.pop_back();
    if (dispatch_log_enabled_) {
      dispatch_log_.push_back(next->request.session_id);
    }
    // std::function requires a copyable callable; box the moved request.
    auto boxed = std::make_shared<PendingRequest>(std::move(*next));
    pool_->Submit([this, boxed, slot] { Execute(std::move(*boxed), slot); });
  }
  free_slots_gauge_->Set(static_cast<int64_t>(free_slots_.size()));
}

void DrugTreeServer::Execute(PendingRequest req, int slot) {
  QueryClass cls = req.request.query_class;
  ClassMetrics& m = metrics_[static_cast<size_t>(cls)];
  int64_t deadline = req.request.deadline_micros;
  std::shared_ptr<obs::TraceContext> trace = req.trace;
  util::Result<query::QueryOutcome> result{util::Status::Internal("pending")};
  int64_t end = 0;
  bool deadline_missed = false;
  // Per-query tracker: stack-local, parented into the session node so every
  // charge propagates session -> class -> server. Its hard limit is the
  // per-query budget; its peak is stamped into the trace. Destroyed after
  // the trace is filed, releasing anything the engine left charged.
  obs::MemoryTracker* session_tracker =
      class_trackers_[static_cast<size_t>(cls)]->GetOrCreateChild(
          util::StringPrintf("session-%llu",
                             (unsigned long long)req.request.session_id));
  obs::MemoryTracker query_tracker(
      util::StringPrintf(
          "query-%llu", (unsigned long long)next_query_id_.fetch_add(
                            1, std::memory_order_relaxed)),
      session_tracker, /*soft_limit_bytes=*/0,
      static_cast<int64_t>(options_.query_memory_bytes));
  int64_t cpu_micros = 0;
  {
    obs::ScopedTraceContext installed(trace.get());
    // Inner scope: the server.execute root span closes (and is adopted by
    // the installed context) before Finish() freezes the record below.
    {
      DT_SPAN("server.execute");
      int64_t now = clock_->NowMicros();
      if (trace != nullptr) {
        trace->set_lane(util::StringPrintf("slot-%d", slot));
        trace->AddPhaseInterval(obs::TracePhase::kQueueWait,
                                req.enqueue_micros, now);
      }

      int64_t cpu_start = obs::ThreadCpuMicros();
      bool already_dead = deadline > 0 && now > deadline;
      if (req.response->cancel_.load(std::memory_order_relaxed)) {
        result = util::Status::Cancelled("cancelled before dispatch");
      } else if (already_dead) {
        // Don't waste a slot on work nobody can use anymore.
        result = util::Status::Cancelled("deadline exceeded before dispatch");
      } else {
        // Brown-out fault injection (benches/tests): burn clock time before
        // planning so the request's latency blows its SLO target. A
        // SimulatedClock jumps deterministically; a RealClock sleeps.
        int64_t fault =
            fault_execution_delay_micros_.load(std::memory_order_relaxed);
        if (fault > 0) clock_->AdvanceMicros(fault);
        query::QueryContext context;
        context.clock = clock_;
        context.deadline_micros = deadline;
        context.cancel = &req.response->cancel_;
        context.memory = &query_tracker;
        // Slow-query forensics wants the offender's analyzed plan, and we
        // only know a query was slow after it ran — so collect whenever the
        // slow log is armed.
        context.collect_analyze =
            trace != nullptr && trace_store_.slow_threshold_micros() > 0;
        // Adaptive knob override: batch size and parallelism are
        // result-invariance axes, so retuning them per class changes
        // latency, never answers.
        if (adaptive_->options().enabled) {
          AdaptiveKnobs knobs = adaptive_->knobs(cls);
          req.request.planner.batch_size = knobs.batch_size;
          req.request.planner.parallelism = knobs.parallelism;
        }
        result = planners_[static_cast<size_t>(slot)]->Run(
            req.request.sql, req.request.planner, &context);
      }
      cpu_micros = obs::ThreadCpuMicros() - cpu_start;

      end = clock_->NowMicros();
      deadline_missed = deadline > 0 && end > deadline;
      slo_[static_cast<size_t>(cls)]->Record(end - req.enqueue_micros,
                                             result.ok());
      adaptive_->Record(cls, end - req.enqueue_micros);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ClassCounters& c = counters_[static_cast<size_t>(cls)];
        if (result.ok()) {
          ++c.completed;
          m.completed->Increment();
          m.latency_ms->Observe(
              static_cast<double>(end - req.enqueue_micros) / 1000.0);
        } else if (result.status().IsCancelled()) {
          ++c.cancelled;
          m.cancelled->Increment();
          if (deadline_missed) {
            ++c.deadline_missed;
            m.deadline_missed->Increment();
          }
        } else {
          ++c.failed;
          if (result.status().IsResourceExhausted()) ++c.memory_aborted;
          m.failed->Increment();
        }
      }
    }
    if (trace != nullptr) {
      // Serialize = the result-packaging epilogue. Stamp and file the
      // record strictly *before* Complete publishes the result: the waiter
      // may advance a simulated clock the instant it wakes, and a stamp
      // taken after that would make timelines nondeterministic.
      trace->AddPhaseInterval(obs::TracePhase::kSerialize, end,
                              clock_->NowMicros());
      trace->set_peak_memory_bytes(query_tracker.peak());
      trace->set_cpu_micros(cpu_micros);
      std::string status = result.ok() ? "ok"
                           : result.status().IsResourceExhausted()
                               ? "resource_exhausted"
                           : result.status().IsCancelled()
                               ? (deadline_missed ? "deadline" : "cancelled")
                               : result.status().ToString();
      trace_store_.Record(trace->Finish(std::move(status), result.ok()));
    }
  }
  // Same contract as the trace record above: sample before the waiter can
  // wake and advance a simulated clock, so timelines stay bit-deterministic.
  TelemetryTick();
  Complete(req.response, std::move(result));
  {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.OnComplete(cls);
    free_slots_.push_back(slot);
    DispatchLocked();
  }
  drain_cv_.notify_all();
}

void DrugTreeServer::Complete(const std::shared_ptr<ResponseState>& state,
                              util::Result<query::QueryOutcome> result) {
  {
    std::lock_guard<std::mutex> lock(state->mu_);
    state->result_ = std::move(result);
    state->done_ = true;
  }
  state->cv_.notify_all();
}

}  // namespace server
}  // namespace drugtree
