#include "server/scheduler.h"

#include <algorithm>

namespace drugtree {
namespace server {

FairScheduler::FairScheduler(const SchedulerOptions& options,
                             AdmissionController* admission)
    : admission_(admission), options_(options) {
  for (int c = 0; c < kNumQueryClasses; ++c) {
    int w = std::max(1, options_.weight(static_cast<QueryClass>(c)));
    stride_[static_cast<size_t>(c)] = kStrideScale / w;
  }
}

std::optional<PendingRequest> FairScheduler::PickNext() {
  if (running_total_ >= options_.total_slots) return std::nullopt;
  int best = -1;
  for (int c = 0; c < kNumQueryClasses; ++c) {
    QueryClass cls = static_cast<QueryClass>(c);
    size_t i = static_cast<size_t>(c);
    if (admission_->QueueDepth(cls) == 0) continue;
    if (running_[i] >= options_.slots(cls)) continue;
    // Re-entry clamp: a class that sat idle joins at the current virtual
    // time instead of bursting on its stale (small) pass.
    pass_[i] = std::max(pass_[i], vtime_);
    if (best < 0 || pass_[i] < pass_[static_cast<size_t>(best)]) best = c;
  }
  if (best < 0) return std::nullopt;
  size_t b = static_cast<size_t>(best);
  vtime_ = pass_[b];
  pass_[b] += stride_[b];
  ++running_[b];
  ++running_total_;
  return admission_->Pop(static_cast<QueryClass>(best));
}

void FairScheduler::OnComplete(QueryClass c) {
  --running_[static_cast<size_t>(c)];
  --running_total_;
}

}  // namespace server
}  // namespace drugtree
