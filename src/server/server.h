// DrugTreeServer: the multi-session query serving layer. Sits between
// clients (mobile sessions, analyst shells, load generators) and the query
// engine, and owns the full serving pipeline:
//
//   Submit -> AdmissionController (bounded per-class queues, load shedding)
//          -> FairScheduler (deadline-aware weighted-fair dispatch)
//          -> util::ThreadPool workers -> per-slot query::Planner
//          -> ResponseHandle (futures-style completion)
//
// Deadlines are enforced, not advisory: every dispatched request carries a
// query::QueryContext, so an expired deadline (or an explicit Cancel) stops
// execution at the next operator checkpoint with kCancelled.
//
// Thread-safety: Submit/SubmitAsync/Pause/Resume/Drain and the stat
// accessors may be called from any thread. The server serves reads; catalog
// mutations (AddActivity et al.) require the server to be drained first.

#ifndef DRUGTREE_SERVER_SERVER_H_
#define DRUGTREE_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/alerts.h"
#include "obs/cost_calibrator.h"
#include "obs/metrics.h"
#include "obs/resource_tracker.h"
#include "obs/slo_tracker.h"
#include "obs/timeseries.h"
#include "obs/trace_store.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "query/query_context.h"
#include "query/result_cache.h"
#include "server/adaptive.h"
#include "server/admission.h"
#include "server/request.h"
#include "server/scheduler.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace server {

/// Continuous telemetry: a TimeSeriesStore of sampled metric history plus
/// an AlertEngine evaluated at well-defined points (request completion,
/// Drain, Statusz) — never from a dedicated thread, so SimulatedClock
/// workloads stay bit-deterministic. The DRUGTREE_TELEMETRY environment
/// variable overrides `enabled` ("0" disables) for overhead A/B runs.
struct TelemetryOptions {
  bool enabled = true;
  /// Minimum micros between samples.
  int64_t sample_interval_micros = 250'000;
  /// Retained points per series (ring; oldest evicted).
  size_t timeline_points = 240;
  /// Install the built-in rule set (memory pressure, per-class SLO burn
  /// rate, queue growth, plan-cache collapse, scheduler saturation).
  bool default_rules = true;
  /// Additional rules appended after the defaults.
  std::vector<obs::AlertRule> extra_rules;
};

struct ServerOptions {
  /// Worker threads executing dispatched requests. Keep >= scheduler
  /// total_slots so a dispatched request never queues inside the pool.
  int worker_threads = 4;
  AdmissionOptions admission;
  SchedulerOptions scheduler;
  /// Server-owned semantic result cache shared by every worker (requests
  /// opt in via PlannerOptions::use_result_cache). 0 disables it.
  uint64_t result_cache_bytes = 16 * 1024 * 1024;
  /// Per-request tracing: every request carries an obs::TraceContext whose
  /// finished record lands in the server's TraceStore. Cheap (a handful of
  /// clock reads per request); turn off only for overhead A/B runs.
  bool enable_tracing = true;
  /// Retained completed traces (ring buffer; oldest overwritten).
  size_t trace_store_capacity = 4096;
  /// Slow-query threshold in micros; > 0 turns on the slow-query log (full
  /// phase timeline + EXPLAIN ANALYZE of offenders at WARNING) and makes
  /// workers collect analyze stats. 0 = off. Overridden by the
  /// DRUGTREE_SLOW_QUERY_MICROS environment variable when set.
  int64_t slow_query_micros = 0;

  /// Stable shard identity when this server is one replica of a sharded
  /// topology (e.g. "s2r0"); empty for a standalone single-node server.
  /// Non-empty ids add a {"shard": id} label to the per-class registry
  /// metrics (so shed / deadline-miss counters attribute per shard) and a
  /// "shard" block to Statusz(); the empty default keeps single-node metric
  /// label sets and the Statusz shape exactly as before.
  std::string shard_id;

  /// Resource accounting. The server owns a tracker hierarchy
  /// (server -> class -> session -> query); these knobs size its limits.
  /// Total tracked bytes the server budgets for (root hard limit; charges
  /// beyond it fail with kResourceExhausted).
  uint64_t server_memory_bytes = 256 * 1024 * 1024;
  /// Fraction of server_memory_bytes at which the server is "under memory
  /// pressure": analytic submissions are shed at admission while
  /// interactive traffic keeps the remaining headroom as its reserved
  /// floor.
  double memory_high_watermark = 0.80;
  /// Per-query hard limit (tracked operator state + result buffer). A query
  /// crossing it aborts with kResourceExhausted instead of OOMing the
  /// process. 0 = unlimited.
  uint64_t query_memory_bytes = 64 * 1024 * 1024;

  /// Per-class latency SLOs: target latency (enqueue -> completion) and the
  /// fraction of requests expected to meet it, tracked over a rolling
  /// window (see obs::SloTracker).
  int64_t interactive_slo_micros = 50'000;
  int64_t analytic_slo_micros = 1'000'000;
  double slo_objective = 0.99;
  int64_t slo_window_micros = 60'000'000;

  /// Parameterized plan cache shared by every planner slot: optimized
  /// logical plans are cached as templates keyed by structural fingerprint
  /// and re-bound to each statement's literals (see query::PlanCache).
  /// Invalidation is version-driven, so the cache stays correct across
  /// catalog mutations, Analyze, and encoded-segment builds/drops.
  bool enable_plan_cache = true;
  size_t plan_cache_entries = 256;
  /// Fold observed per-operator timings (from analyzed executions) back
  /// into the optimizer's cost coefficients (see obs::CostCalibrator).
  bool enable_cost_calibration = true;
  /// Closed-loop retuning of per-class batch size / parallelism from
  /// interactive tail latency. Disabled by default.
  AdaptiveOptions adaptive;
  /// Continuous telemetry: sampled metric history + alerting + health.
  TelemetryOptions telemetry;
};

/// Shared completion state behind a ResponseHandle. Internal to the serving
/// layer; clients interact through the handle.
class ResponseState {
 public:
  ResponseState() : result_(util::Status::Internal("pending")) {}

 private:
  friend class DrugTreeServer;
  friend class ResponseHandle;

  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  bool consumed_ = false;
  util::Result<query::QueryOutcome> result_;
  std::atomic<bool> cancel_{false};
};

/// Futures-style handle to an in-flight request. Copyable; all copies share
/// the same completion state. The result is move-consumed by the first
/// Wait() call.
class ResponseHandle {
 public:
  ResponseHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the request has completed (successfully or not).
  bool Done() const;

  /// Requests cooperative cancellation: takes effect before dispatch if the
  /// request is still queued, at the next operator checkpoint otherwise.
  void Cancel();

  /// Blocks until completion and moves the result out. A second call
  /// returns kInternal ("result already consumed").
  util::Result<query::QueryOutcome> Wait();

 private:
  friend class DrugTreeServer;
  explicit ResponseHandle(std::shared_ptr<ResponseState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<ResponseState> state_;
};

class DrugTreeServer {
 public:
  /// Per-class serving outcomes (snapshot; shed comes from admission).
  struct ClassCounters {
    int64_t admitted = 0;
    int64_t shed = 0;
    int64_t completed = 0;
    int64_t failed = 0;            // non-cancellation errors
    int64_t cancelled = 0;         // kCancelled (flag or deadline)
    int64_t deadline_missed = 0;   // subset of cancelled: deadline-driven
    int64_t memory_shed = 0;       // shed at admission under memory pressure
    int64_t memory_aborted = 0;    // subset of failed: per-query hard limit
  };

  /// `catalog` and `clock` are borrowed and must outlive the server. The
  /// clock times deadlines and queue waits: RealClock for live serving,
  /// SimulatedClock for deterministic tests.
  DrugTreeServer(query::Catalog* catalog, util::Clock* clock,
                 const ServerOptions& options = ServerOptions());

  /// Resumes, drains, and joins the workers.
  ~DrugTreeServer();

  DrugTreeServer(const DrugTreeServer&) = delete;
  DrugTreeServer& operator=(const DrugTreeServer&) = delete;

  /// Admits and eventually executes `request`. Returns immediately; a shed
  /// request's handle is already Done() with kResourceExhausted.
  ResponseHandle SubmitAsync(QueryRequest request);

  /// Synchronous convenience: SubmitAsync + Wait.
  util::Result<query::QueryOutcome> Submit(QueryRequest request);

  /// Stops dispatching (queues keep admitting). Tests use this to stage a
  /// deterministic backlog; operationally it is maintenance mode.
  void Pause();
  void Resume();

  /// Blocks until every admitted request has completed. Resume first if
  /// paused, or queued work will keep Drain waiting.
  void Drain();

  util::Clock* clock() const { return clock_; }
  query::ResultCache* result_cache() { return result_cache_.get(); }
  /// Always present; fed by the planners only when the matching
  /// ServerOptions flag is on, so a disabled feature reads as all-zero
  /// stats rather than a missing block.
  query::PlanCache* plan_cache() { return plan_cache_.get(); }
  obs::CostCalibrator* cost_calibrator() { return calibrator_.get(); }
  const AdaptiveController* adaptive() const { return adaptive_.get(); }

  /// Completed per-request traces (slow-query log, Chrome export, tail
  /// attribution). Always present; empty when tracing is disabled.
  obs::TraceStore* trace_store() { return &trace_store_; }

  /// Per-class tail-latency attribution over everything traced so far, one
  /// line per class ("interactive p99=12.40ms (n=3/300): 71% queue_wait ...").
  /// Also publishes server.tail.p99_micros{class=} and
  /// server.tail.share_pct{class=,phase=} gauges to the metric registry.
  std::string TailAttributionReport();

  ClassCounters counters(QueryClass c) const;

  /// The root of the server's memory-tracker hierarchy. Tests and benches
  /// use it to inspect usage or to stage deterministic pressure (an
  /// obs::ScopedMemoryCharge against the root pushes the server over its
  /// high watermark regardless of execution timing).
  obs::MemoryTracker* memory_tracker() { return &memory_root_; }

  /// Standing charge for catalog-resident table data, taken against the
  /// root at construction under the "tables" child. Encoded tables charge
  /// their compressed footprint, so building encoded segments widens the
  /// headroom under the memory high watermark (the 80% shed point moves
  /// with the compression ratio).
  int64_t resident_table_bytes() const { return resident_table_bytes_; }

  /// Per-class SLO state (rolling compliance + error-budget burn rate).
  const obs::SloTracker* slo_tracker(QueryClass c) const {
    return slo_[static_cast<size_t>(c)].get();
  }

  // Continuous telemetry ------------------------------------------------

  /// Sampled metric history; null when telemetry is disabled.
  obs::TimeSeriesStore* timeline() { return timeline_.get(); }
  /// Alert rules + firing state; null when telemetry is disabled.
  obs::AlertEngine* alert_engine() { return alerts_.get(); }

  /// Samples the timeline if the interval elapsed, then re-evaluates the
  /// alert rules and the cached health. Invoked from request completion,
  /// Drain, and Statusz; tests and benches may call it directly. Must NOT
  /// be called with mu_ held (probes read server state). Returns whether a
  /// sample was taken (always false when telemetry is disabled).
  bool TelemetryTick();
  /// Unconditional sample + evaluation (tests; no-op when disabled).
  void ForceTelemetrySample();

  /// Cached overall health from the last alert evaluation — a relaxed
  /// atomic read, cheap enough for the ShardRouter's replica picker.
  obs::HealthState health() const {
    return static_cast<obs::HealthState>(
        overall_health_.load(std::memory_order_relaxed));
  }
  /// Fresh per-subsystem rollup (admission, scheduler, plan_cache, memory,
  /// serving) derived from the currently-firing alerts.
  obs::HealthSnapshot HealthSnapshotNow() const;

  /// Fault-injection knob (benches/tests): every executed request advances
  /// the server clock by this many micros before planning — a SimulatedClock
  /// jumps (deterministic brown-out), a RealClock sleeps. 0 = off.
  void set_fault_execution_delay_micros(int64_t micros) {
    fault_execution_delay_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t fault_execution_delay_micros() const {
    return fault_execution_delay_micros_.load(std::memory_order_relaxed);
  }

  /// One-call JSON introspection snapshot: the full memory-tracker tree,
  /// per-class SLO state, admission queue occupancy, scheduler slots,
  /// per-class serving counters, TraceStore totals, and the telemetry
  /// timeline / alerts / health blocks. Exported by `bench_server
  /// --statusz`.
  std::string Statusz();

  /// Test/debug hook: record session ids in dispatch order. Off by default
  /// (the log grows per dispatched request).
  void EnableDispatchLog();
  std::vector<uint64_t> TakeDispatchLog();

 private:
  struct ClassMetrics {
    obs::HistogramMetric* latency_ms = nullptr;  // completed requests only
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* deadline_missed = nullptr;
  };

  /// Dispatches admitted requests onto free slots until the scheduler has
  /// nothing runnable. Caller holds mu_.
  void DispatchLocked();

  /// Runs one request on a pool worker using the slot's planner, then
  /// completes its response state and releases the slot.
  void Execute(PendingRequest req, int slot);

  /// Completes a response state (own mutex; safe without mu_).
  static void Complete(const std::shared_ptr<ResponseState>& state,
                       util::Result<query::QueryOutcome> result);

  query::Catalog* catalog_;
  util::Clock* clock_;
  ServerOptions options_;
  obs::TraceStore trace_store_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_query_id_{1};
  /// Root of the tracker hierarchy; class nodes are owned children. Session
  /// nodes are created lazily under their class node; per-query trackers
  /// are stack-local in Execute() and parent into the session node, so the
  /// tree only holds long-lived nodes.
  obs::MemoryTracker memory_root_;
  std::array<obs::MemoryTracker*, kNumQueryClasses> class_trackers_{};
  int64_t resident_table_bytes_ = 0;
  std::array<std::unique_ptr<obs::SloTracker>, kNumQueryClasses> slo_;
  std::unique_ptr<query::ResultCache> result_cache_;
  std::unique_ptr<query::PlanCache> plan_cache_;
  std::unique_ptr<obs::CostCalibrator> calibrator_;
  std::unique_ptr<AdaptiveController> adaptive_;
  /// One planner per scheduler slot: a slot is an exclusive token, so its
  /// planner (and any lazily created morsel pool) is never shared.
  std::vector<std::unique_ptr<query::Planner>> planners_;
  std::array<ClassMetrics, kNumQueryClasses> metrics_;
  obs::Gauge* pool_queue_gauge_ = nullptr;
  obs::Gauge* free_slots_gauge_ = nullptr;

  /// Telemetry (all null when disabled). telemetry_mu_ serializes
  /// sample+evaluate passes so concurrent completions cannot interleave a
  /// sample with a rule evaluation.
  std::unique_ptr<obs::TimeSeriesStore> timeline_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
  std::unique_ptr<obs::AlertEngine> alerts_;
  std::mutex telemetry_mu_;
  std::atomic<int> overall_health_{0};
  std::atomic<int64_t> fault_execution_delay_micros_{0};

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  AdmissionController admission_;                      // guarded by mu_
  FairScheduler scheduler_;                            // guarded by mu_
  std::vector<int> free_slots_;                        // guarded by mu_
  std::array<ClassCounters, kNumQueryClasses> counters_{};  // guarded by mu_
  bool paused_ = false;                                // guarded by mu_
  bool dispatch_log_enabled_ = false;                  // guarded by mu_
  std::vector<uint64_t> dispatch_log_;                 // guarded by mu_

  /// Declared last: destroyed (drained + joined) before any member a
  /// worker task could still reference.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace server
}  // namespace drugtree

#endif  // DRUGTREE_SERVER_SERVER_H_
