// Parameterized plan cache (Hyrise-style): literals are normalized out of
// the parsed statement (query/normalize.h), the optimized logical plan is
// stored as a template keyed by the structural fingerprint, and later
// executions of the same shape re-bind the stored plan to their literal
// values instead of re-running the optimizer.
//
// Soundness of re-binding: NormalizeStatement tags every literal with a
// positional ordinal that survives Clone(). Rewrites that *consume* a
// literal at plan time (tree-predicate rewriting resolves the node name
// into interval constants; constant folding collapses literal-only trees;
// TRUE-conjunct elimination drops them) synthesize fresh, untagged
// literals — so a template is re-bindable only when every ordinal appears
// verbatim in the optimized plan. Templates that consumed a literal are
// still cached, but a lookup with different parameter values re-plans from
// scratch: a stale or unusable template can cost a re-plan, never a wrong
// result. (Re-bound plans keep the template's join order — the classic
// parametric-plan tradeoff: always correct, possibly suboptimal for
// outlier literals.)
//
// Each fingerprint holds a small MRU list of parameter variants, so hot
// non-rebindable statements (a mobile session cycling a handful of subtree
// overlays, whose node literals are consumed by the tree-predicate rewrite)
// all stay resident instead of evicting one another, and a successful
// re-bind is memoized as a variant — the clone + substitution is paid once
// per literal vector, not per execution.
//
// Invalidation: each template captures a version signature — the catalog
// data epoch, each referenced table's plan_version() (mutations, Analyze
// stats refreshes, encoded-segment builds/drops), and the cost-calibrator
// coefficient version. Any bump makes the next lookup evict and re-plan.
//
// Thread-safe: one cache serves every planner slot of a server.

#ifndef DRUGTREE_QUERY_PLAN_CACHE_H_
#define DRUGTREE_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "query/catalog.h"
#include "query/logical_plan.h"
#include "query/parser.h"
#include "storage/value.h"

namespace drugtree {
namespace query {

class PlanCache {
 public:
  /// Everything a cached plan's validity depends on.
  struct VersionSignature {
    uint64_t catalog_epoch = 0;
    uint64_t cost_version = 0;  // calibrated-coefficient version
    /// plan_version() of each referenced table, in statement order.
    std::vector<std::pair<std::string, uint64_t>> tables;

    bool operator==(const VersionSignature& o) const {
      return catalog_epoch == o.catalog_epoch &&
             cost_version == o.cost_version && tables == o.tables;
    }
  };

  /// Snapshot of the statement tables' current versions. Unregistered
  /// tables record version 0 (planning will fail later anyway).
  static VersionSignature CaptureVersions(const Catalog& catalog,
                                          const SelectStatement& stmt,
                                          uint64_t cost_version);

  struct Stats {
    int64_t hits = 0;           // template reused (verbatim or re-bound)
    int64_t rebinds = 0;        // subset of hits: parameters substituted
    int64_t misses = 0;         // no template / unusable template
    int64_t invalidations = 0;  // evicted on a version-signature mismatch
    int64_t installs = 0;
    int64_t variant_evictions = 0;  // per-fingerprint MRU list overflowed
  };

  struct Lookup {
    LogicalPtr plan;      // null = miss: plan from scratch, then Install
    bool rebound = false;
  };

  explicit PlanCache(size_t capacity_entries = 256)
      : capacity_(capacity_entries > 0 ? capacity_entries : 1) {}

  /// Looks up `fingerprint`. A stored entry whose signature differs from
  /// `current` is evicted wholesale (invalidation) — the caller re-plans.
  /// On a match: a variant with identical parameters is reused directly
  /// (the returned plan is shared and must be treated as read-only —
  /// physical planning clones every expression it lifts); otherwise a
  /// re-bindable variant is deep-cloned, substituted, and memoized as a new
  /// variant; with neither, the lookup counts as a miss.
  Lookup Get(const std::string& fingerprint, const VersionSignature& current,
             const std::vector<storage::Value>& params);

  /// Installs a variant for `fingerprint` (replacing the whole entry when
  /// its signature is stale). `plan` is the freshly optimized logical plan
  /// with ordinal tags intact; `params` are the literal values it was
  /// planned with.
  void Install(const std::string& fingerprint, LogicalPtr plan,
               std::vector<storage::Value> params, VersionSignature versions);

  void Clear();
  size_t size() const;
  Stats stats() const;

  /// {"entries":..,"variants":..,"capacity":..,"hits":..,"rebinds":..,
  ///  "misses":..,"invalidations":..,"installs":..,"variant_evictions":..}
  std::string StatszJson() const;

 private:
  /// Bound on the per-fingerprint variant list: enough for a mobile
  /// session's working set of hot subtree nodes, small enough that the
  /// exact-parameter scan stays a handful of Value compares.
  static constexpr size_t kMaxVariantsPerEntry = 8;

  struct Template {
    LogicalPtr plan;
    std::vector<storage::Value> params;
    bool rebindable = false;
  };

  struct Entry {
    VersionSignature versions;     // shared: any bump evicts every variant
    std::list<Template> variants;  // front = most recently used
    std::list<std::string>::iterator lru_it;
  };

  void TouchLocked(Entry& entry, const std::string& fingerprint);
  void TrimVariantsLocked(Entry& entry);

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::string> lru_;  // front = most recent
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_PLAN_CACHE_H_
