#include "query/rules.h"

#include <algorithm>
#include <set>

#include "obs/trace.h"
#include "query/cost_model.h"
#include "query/join_order.h"
#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Value;
using storage::ValueType;

namespace {

bool IsPureLiteralTree(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) return false;
  if (e.kind == ExprKind::kFunction && e.IsAggregate()) return false;
  for (const auto& c : e.children) {
    if (!IsPureLiteralTree(*c)) return false;
  }
  return true;
}

/// Aliases referenced by an expression ("p.family" -> "p"). Bare column
/// names are reported under "" (treated as multi-alias, i.e. not pushable).
std::set<std::string> ReferencedAliases(const Expr& e) {
  std::set<std::string> out;
  std::vector<std::string> cols;
  e.CollectColumns(&cols);
  for (const auto& c : cols) {
    size_t dot = c.find('.');
    out.insert(dot == std::string::npos ? "" : c.substr(0, dot));
  }
  return out;
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr, const Catalog& catalog) {
  if (!expr) return expr;
  auto folded = expr->Clone();
  for (auto& c : folded->children) c = FoldConstants(c, catalog);
  if (folded->kind == ExprKind::kLiteral ||
      folded->kind == ExprKind::kColumnRef) {
    return folded;
  }
  if (!IsPureLiteralTree(*folded)) return folded;
  EvalContext ctx{catalog.tree(), catalog.tree_index()};
  storage::Row empty;
  auto value = EvalExpr(*folded, empty, ctx);
  if (!value.ok()) return folded;  // e.g. unknown node name: leave to runtime
  return Expr::Literal(std::move(value).ValueUnsafe());
}

util::Result<ExprPtr> RewriteTreePredicates(
    const ExprPtr& expr, const Catalog& catalog,
    const std::map<std::string, std::string>& alias_to_table) {
  if (!expr) return expr;
  auto out = expr->Clone();
  for (auto& c : out->children) {
    DRUGTREE_ASSIGN_OR_RETURN(c,
                              RewriteTreePredicates(c, catalog, alias_to_table));
  }
  if (out->kind != ExprKind::kFunction ||
      (out->function != "SUBTREE" && out->function != "ANCESTOR_OF")) {
    return out;
  }
  if (out->children.size() != 2) {
    return util::Status::InvalidArgument(out->function +
                                         " takes (node_column, node)");
  }
  const Expr& col = *out->children[0];
  const Expr& node_arg = *out->children[1];
  if (col.kind != ExprKind::kColumnRef ||
      node_arg.kind != ExprKind::kLiteral) {
    return out;  // dynamic form: leave for runtime evaluation
  }
  if (catalog.tree() == nullptr || catalog.tree_index() == nullptr) return out;

  size_t dot = col.column.find('.');
  if (dot == std::string::npos) return out;
  std::string alias = col.column.substr(0, dot);
  std::string col_name = col.column.substr(dot + 1);
  auto it = alias_to_table.find(alias);
  if (it == alias_to_table.end()) return out;
  const TreeBinding* binding = catalog.GetTreeBinding(it->second);
  if (binding == nullptr || binding->node_col != col_name) return out;

  // Resolve the reference node at plan time.
  phylo::NodeId node = phylo::kInvalidNode;
  if (node_arg.literal.type() == ValueType::kString) {
    node = catalog.tree()->FindByName(node_arg.literal.AsString());
  } else if (node_arg.literal.type() == ValueType::kInt64) {
    auto id = static_cast<phylo::NodeId>(node_arg.literal.AsInt64());
    if (catalog.tree()->Contains(id)) node = id;
  }
  if (node == phylo::kInvalidNode) {
    return util::Status::NotFound("tree node not found: " +
                                  node_arg.literal.ToString());
  }
  const phylo::TreeIndex& index = *catalog.tree_index();
  if (out->function == "SUBTREE") {
    // pre(node) <= row.pre <= post(node).
    ExprPtr pre_col = Expr::Column(alias + "." + binding->pre_col);
    return Expr::Binary(
        BinaryOp::kAnd,
        Expr::Binary(BinaryOp::kGe, pre_col->Clone(),
                     Expr::Literal(Value::Int64(index.Pre(node)))),
        Expr::Binary(BinaryOp::kLe, pre_col,
                     Expr::Literal(Value::Int64(index.Post(node)))));
  }
  // ANCESTOR_OF needs the row's post column.
  if (binding->post_col.empty()) return out;
  ExprPtr pre_col = Expr::Column(alias + "." + binding->pre_col);
  ExprPtr post_col = Expr::Column(alias + "." + binding->post_col);
  return Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kLe, pre_col,
                   Expr::Literal(Value::Int64(index.Pre(node)))),
      Expr::Binary(BinaryOp::kGe, post_col,
                   Expr::Literal(Value::Int64(index.Pre(node)))));
}

namespace {

struct JoinRegion {
  std::vector<LogicalPtr> scans;           // kScan leaves, textual order
  std::vector<ExprPtr> conjuncts;          // all predicates in the region
};

// Collects the scans and predicates of a Filter/Join/Scan region.
util::Status CollectRegion(const LogicalPtr& node, JoinRegion* region) {
  switch (node->kind) {
    case LogicalKind::kScan: {
      auto scan = LogicalNode::Scan(node->table, node->alias);
      if (node->scan_predicate) {
        for (auto& c : SplitConjuncts(node->scan_predicate)) {
          region->conjuncts.push_back(std::move(c));
        }
      }
      region->scans.push_back(std::move(scan));
      return util::Status::OK();
    }
    case LogicalKind::kFilter: {
      for (auto& c : SplitConjuncts(node->predicate)) {
        region->conjuncts.push_back(std::move(c));
      }
      return CollectRegion(node->children[0], region);
    }
    case LogicalKind::kJoin: {
      if (node->join_condition) {
        for (auto& c : SplitConjuncts(node->join_condition)) {
          region->conjuncts.push_back(std::move(c));
        }
      }
      DRUGTREE_RETURN_IF_ERROR(CollectRegion(node->children[0], region));
      return CollectRegion(node->children[1], region);
    }
    default:
      return util::Status::Internal("unexpected node kind in join region");
  }
}

bool IsJoinRegionNode(const LogicalNode& node) {
  return node.kind == LogicalKind::kScan || node.kind == LogicalKind::kFilter ||
         node.kind == LogicalKind::kJoin;
}

// True for a conjunct of the shape colA = colB across two different aliases.
bool IsEquiJoinCondition(const Expr& e, std::string* left_col,
                         std::string* right_col) {
  if (e.kind != ExprKind::kBinary || e.bin_op != BinaryOp::kEq) return false;
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  if (l.kind != ExprKind::kColumnRef || r.kind != ExprKind::kColumnRef) {
    return false;
  }
  auto la = ReferencedAliases(l);
  auto ra = ReferencedAliases(r);
  if (la.size() != 1 || ra.size() != 1 || *la.begin() == *ra.begin() ||
      la.count("") || ra.count("")) {
    return false;
  }
  *left_col = l.column;
  *right_col = r.column;
  return true;
}

}  // namespace

util::Result<LogicalPtr> OptimizeLogicalPlan(const LogicalPtr& plan,
                                             const Catalog& catalog,
                                             const OptimizerOptions& options) {
  // Peel the pipeline above the join region.
  std::vector<LogicalPtr> pipeline;  // from root downwards (clones, childless)
  LogicalPtr cursor = plan;
  while (cursor && !IsJoinRegionNode(*cursor)) {
    auto copy = std::make_shared<LogicalNode>(*cursor);
    copy->children.clear();
    pipeline.push_back(copy);
    if (cursor->children.size() != 1) {
      return util::Status::Internal("pipeline node with != 1 child");
    }
    cursor = cursor->children[0];
  }
  if (!cursor) return util::Status::Internal("plan has no join region");

  JoinRegion region;
  DRUGTREE_RETURN_IF_ERROR(CollectRegion(cursor, &region));

  std::map<std::string, std::string> alias_to_table;
  for (const auto& s : region.scans) alias_to_table[s->alias] = s->table;

  // Per-conjunct rewrites.
  std::vector<ExprPtr> conjuncts;
  {
    DT_SPAN("query.rewrite");
    for (auto& c : region.conjuncts) {
      ExprPtr e = c;
      if (options.enable_tree_rewrite) {
        DRUGTREE_ASSIGN_OR_RETURN(e,
                                  RewriteTreePredicates(e, catalog,
                                                        alias_to_table));
      }
      if (options.enable_constant_folding) e = FoldConstants(e, catalog);
      // Re-split: rewrites may introduce fresh conjunctions.
      for (auto& piece : SplitConjuncts(e)) {
        // Drop literal TRUE.
        if (piece->kind == ExprKind::kLiteral &&
            piece->literal.type() == ValueType::kBool &&
            piece->literal.AsBool()) {
          continue;
        }
        conjuncts.push_back(std::move(piece));
      }
    }
  }

  // Classify conjuncts.
  std::map<std::string, std::vector<ExprPtr>> scan_preds;
  std::vector<ExprPtr> residual;
  struct PendingEdge {
    std::string left_col, right_col;
    ExprPtr condition;
  };
  std::vector<PendingEdge> pending_edges;
  for (auto& c : conjuncts) {
    auto aliases = ReferencedAliases(*c);
    std::string lc, rc;
    if (aliases.size() == 1 && !aliases.count("") && options.enable_pushdown) {
      scan_preds[*aliases.begin()].push_back(std::move(c));
    } else if (aliases.size() == 2 && IsEquiJoinCondition(*c, &lc, &rc)) {
      pending_edges.push_back({lc, rc, std::move(c)});
    } else {
      residual.push_back(std::move(c));
    }
  }

  // Attach scan predicates and estimate cardinalities.
  CostModel cost(&catalog, alias_to_table, options.costs);
  std::vector<JoinRelation> relations;
  std::map<std::string, size_t> alias_index;
  for (auto& s : region.scans) {
    auto it = scan_preds.find(s->alias);
    if (it != scan_preds.end()) {
      s->scan_predicate = CombineConjuncts(it->second);
    }
    alias_index[s->alias] = relations.size();
    relations.push_back(
        {s->alias, cost.EstimateScanRows(s->alias, s->scan_predicate)});
  }

  std::vector<JoinEdge> edges;
  for (auto& pe : pending_edges) {
    std::string la = pe.left_col.substr(0, pe.left_col.find('.'));
    std::string ra = pe.right_col.substr(0, pe.right_col.find('.'));
    JoinEdge e;
    e.left_rel = alias_index[la];
    e.right_rel = alias_index[ra];
    e.condition = pe.condition;
    e.selectivity = cost.JoinSelectivity(pe.left_col, pe.right_col);
    edges.push_back(std::move(e));
  }

  DRUGTREE_ASSIGN_OR_RETURN(JoinOrderResult order, [&] {
    DT_SPAN("query.join_order");
    return ChooseJoinOrder(relations, edges, options.enable_join_reorder,
                           cost.costs());
  }());

  // Rebuild the join tree left-deep in the chosen order.
  LogicalPtr rebuilt = region.scans[order.order[0]];
  for (size_t step = 1; step < order.order.size(); ++step) {
    ExprPtr condition = CombineConjuncts(order.conditions[step - 1]);
    rebuilt = LogicalNode::Join(rebuilt, region.scans[order.order[step]],
                                condition);
  }
  if (!residual.empty()) {
    rebuilt = LogicalNode::Filter(rebuilt, CombineConjuncts(residual));
  }

  // Reattach the pipeline.
  for (auto it = pipeline.rbegin(); it != pipeline.rend(); ++it) {
    (*it)->children = {rebuilt};
    rebuilt = *it;
  }
  DRUGTREE_RETURN_IF_ERROR(ComputeSchema(rebuilt.get(), catalog));
  return rebuilt;
}

}  // namespace query
}  // namespace drugtree
