// Physical operators (volcano iterator model with vectorized batches).
// Each operator exposes Open()/Next(&row)/NextBatch(&batch) and its output
// schema; ExplainString() renders the physical plan for EXPLAIN output and
// the E2 ablation logs. Open()/Next()/NextBatch() are non-virtual shells on
// the base class that maintain per-operator execution stats (rows_out,
// next_calls, batches, and — under EXPLAIN ANALYZE — cumulative time);
// operators implement OpenImpl()/NextImpl() and, for the vectorized hot
// path, NextBatchImpl(). Adapter shims run in both directions: operators
// without a batch implementation are batched by accumulating NextImpl()
// rows, and batch-native operators serve row-at-a-time parents by draining
// an internal batch — so row and batch operators compose freely in one plan.

#ifndef DRUGTREE_QUERY_PHYSICAL_H_
#define DRUGTREE_QUERY_PHYSICAL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/explain.h"
#include "query/catalog.h"
#include "query/expr.h"
#include "query/logical_plan.h"
#include "query/parser.h"
#include "query/query_context.h"
#include "storage/row_batch.h"
#include "storage/table.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace query {

/// Execution-wide counters (reported by benchmarks).
struct ExecStats {
  int64_t rows_scanned = 0;       // rows read from base tables
  int64_t rows_index_fetched = 0; // rows fetched through an index
  int64_t rows_joined = 0;        // rows emitted by join operators
  int64_t predicate_evals = 0;    // per-row predicate evaluations
  int64_t bytes_scanned = 0;      // storage bytes the scan touched: encoded
                                  // segment bytes on the encoded path, the
                                  // decoded batch's bytes on the plain batch
                                  // path (0 on pure row paths)
};

/// Morsel-parallel execution context threaded from the planner into
/// CPU-heavy operators (scan filtering, hash-join build hashing). A null
/// pool or parallelism <= 1 keeps every operator on the serial path.
/// Parallel operators are morsel-deterministic: per-morsel results are
/// recombined in morsel order, so output is identical to serial execution.
struct ParallelContext {
  util::ThreadPool* pool = nullptr;
  int parallelism = 1;
  /// Rows per morsel; also the minimum input size worth parallelizing.
  size_t morsel_rows = 1024;

  bool enabled() const { return pool != nullptr && parallelism > 1; }
};

/// Per-operator execution counters, collected by the base
/// Open()/Next()/NextBatch() shells. Row/call counts are always on; timing
/// is only collected after EnableAnalyze() to keep the default path cheap.
///
/// next_calls semantics under batching: one increment per NextBatch() call
/// — i.e. per *batch*, not per row — including the final exhausted call.
/// In row-at-a-time mode (batch_size 1, or a batch-native operator drained
/// by a row-consuming parent) it counts Next() calls as before, so
/// next_calls == rows_out + 1 only holds on pure row paths.
struct OperatorStats {
  int64_t rows_out = 0;        // rows handed to the parent (either mode)
  int64_t next_calls = 0;      // Next()/NextBatch() invocations (including
                               // the last exhausted one)
  int64_t batches = 0;         // non-empty batches handed to the parent via
                               // NextBatch() (0 on pure row paths)
  int64_t elapsed_micros = 0;  // Open()+Next()+NextBatch() time, inclusive
                               // of children (only under EnableAnalyze)
  int64_t bytes_scanned = 0;   // storage bytes touched by scan operators
                               // (see ExecStats::bytes_scanned); rendered
                               // as `bytes=` by EXPLAIN ANALYZE when > 0
};

class PhysicalOperator {
 public:
  /// Releases any operator-state memory charged against the query's tracker
  /// (materialized build sides, sort buffers, aggregate state).
  virtual ~PhysicalOperator();

  /// Prepares for iteration (binds expressions, builds hash tables, sorts).
  util::Status Open();

  /// Produces the next row. Returns false when exhausted. When the operator
  /// is batch-native and a batch size > 1 is configured, rows are drained
  /// from an internal batch, so row-consuming parents still benefit from
  /// the vectorized pipeline below them.
  util::Result<bool> Next(storage::Row* out);

  /// Produces the next batch (up to the configured batch size). Returns
  /// false when exhausted; a true return always carries at least one
  /// logical row. Operators without a native batch implementation are
  /// adapted automatically by accumulating NextImpl() rows, so the batch
  /// driver can run any plan. Output row order is identical to Next().
  util::Result<bool> NextBatch(storage::RowBatch* out);

  /// Configures the rows-per-batch target for the whole subtree. 1 (the
  /// default) preserves the exact legacy row-at-a-time path everywhere;
  /// values > 1 enable the vectorized path and the drain adapter in Next().
  void SetBatchSize(size_t batch_size);

  const storage::Schema& schema() const { return schema_; }

  /// One-line operator description.
  virtual std::string Describe() const = 0;

  /// Indented subtree rendering.
  std::string ExplainString(int indent = 0) const;

  /// Switches the whole subtree into EXPLAIN ANALYZE mode: subsequent
  /// Open()/Next() calls are timed against `clock` (a SimulatedClock gives
  /// exact simulated attribution; RealClock gives wall time).
  void EnableAnalyze(const util::Clock* clock);

  /// Attaches a deadline/cancellation context to the whole subtree (null
  /// detaches). The base shells check it in Open() and every
  /// `kCancelCheckInterval` Next() calls; long-running operator loops
  /// (serial scans, nested-loop inner passes, parallel morsels) add their
  /// own checks so cancellation latency stays bounded by a morsel, not by
  /// output cardinality.
  void SetQueryContext(const QueryContext* context);

  const OperatorStats& op_stats() const { return op_stats_; }

  /// The annotated plan tree for EXPLAIN ANALYZE rendering (call after the
  /// plan has been drained).
  obs::ExplainNode AnalyzeTree() const;

 protected:
  virtual util::Status OpenImpl() = 0;
  virtual util::Result<bool> NextImpl(storage::Row* out) = 0;

  /// Batch production; the default implementation adapts NextImpl(). Batch
  /// overrides must return true only with >= 1 logical row in `out`.
  virtual util::Result<bool> NextBatchImpl(storage::RowBatch* out);

  /// True when NextBatchImpl is a native override (drives the batch->row
  /// drain adapter inside Next()).
  virtual bool HasBatchImpl() const { return false; }

  size_t batch_size() const { return batch_size_; }

  /// Cancellation checkpoint granularity for row-at-a-time loops.
  static constexpr int64_t kCancelCheckInterval = 64;
  /// Row granularity for checks inside tight operator-internal loops.
  static constexpr int64_t kCancelCheckRows = 1024;

  /// The attached context; null when the query is not cancellable.
  const QueryContext* query_context() const { return query_context_; }

  /// Charges `bytes` of operator-held state against the query's memory
  /// tracker (no-op when no tracker is attached). Charges accumulate and
  /// are released by the operator destructor, so call once per buffer
  /// growth, not per row. Returns the tracker's resource-exhausted status
  /// when the charge would breach a hard limit; operators must propagate
  /// that status so the query aborts instead of OOMing.
  util::Status ChargeOperatorMemory(int64_t bytes);

  /// Accumulates storage bytes touched into this operator's stats (scan
  /// operators only; surfaces in EXPLAIN ANALYZE as `bytes=`).
  void AddBytesScanned(int64_t bytes) { op_stats_.bytes_scanned += bytes; }

  storage::Schema schema_;
  std::vector<PhysicalOperator*> explain_children_;  // borrowed, for explain

 private:
  /// Row production for the Next() shell: NextImpl() on the row path, the
  /// batch->row drain adapter when this operator is batch-native.
  util::Result<bool> NextRowOrDrain(storage::Row* out);

  OperatorStats op_stats_;
  const util::Clock* analyze_clock_ = nullptr;  // non-null => timing on
  const QueryContext* query_context_ = nullptr;
  size_t batch_size_ = 1;
  storage::RowBatch drain_batch_;  // batch->row adapter state
  size_t drain_pos_ = 0;
  // Memory accounting: tracker the charges went to (captured at first
  // charge so destruction releases against the right node even after the
  // context is detached), total charged, and the high-water charge for the
  // in-flight output batch (NextBatch shell charges deltas only).
  obs::MemoryTracker* charged_tracker_ = nullptr;
  int64_t charged_bytes_ = 0;
  int64_t batch_charged_bytes_ = 0;
};

using PhysicalPtr = std::unique_ptr<PhysicalOperator>;

/// Full-table scan with an optional residual predicate.
class SeqScanOp : public PhysicalOperator {
 public:
  SeqScanOp(const storage::Table* table, std::string alias, ExprPtr predicate,
            EvalContext ctx, ExecStats* stats, ParallelContext par = {});
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  util::Result<bool> NextBatchImpl(storage::RowBatch* out) override;
  bool HasBatchImpl() const override { return true; }
  std::string Describe() const override;

 private:
  /// Filters the whole table in morsels on par_.pool at Open() time; hits
  /// are concatenated in morsel (= row) order so the row stream is
  /// identical to the serial cursor path.
  util::Status MaterializeParallel();

  /// Batch production directly on the table's encoded snapshot: predicates
  /// run per segment on the encoded form (dictionary code ranges, RLE runs,
  /// frame-of-reference deltas) and only the surviving rows are decoded
  /// into the output batch. Taken when Open() found a fresh snapshot and
  /// the whole predicate translated to encoded clauses; row order and
  /// results are identical to the plain path.
  util::Result<bool> NextBatchEncoded(storage::RowBatch* out);

  const storage::Table* table_;
  std::string alias_;
  ExprPtr predicate_;
  EvalContext ctx_;
  ExecStats* stats_;
  ParallelContext par_;
  int64_t cursor_ = 0;
  bool materialized_ = false;             // parallel path taken at Open()
  std::vector<storage::RowId> matches_;   // surviving rows, in row order
  size_t mcursor_ = 0;
  // Encoded-scan state (null snapshot => plain path).
  const storage::EncodedTableSnapshot* encoded_ = nullptr;
  std::vector<storage::EncodedPredicate> enc_clauses_;
  size_t enc_seg_ = 0;                    // next segment to filter
  std::vector<uint32_t> enc_matches_;     // survivors of segment enc_seg_-1
  std::vector<uint32_t> enc_scratch_;
  size_t enc_pos_ = 0;                    // next survivor to emit
};

/// Index access path: equality (hash or B+-tree) or range (B+-tree).
class IndexScanOp : public PhysicalOperator {
 public:
  struct Bounds {
    storage::Value equal;                // set for point lookups
    storage::Value lo, hi;               // set for range scans (may be NULL)
    bool lo_inclusive = true, hi_inclusive = true;
    bool is_point = false;
  };

  IndexScanOp(const storage::Table* table, std::string alias,
              std::string column, Bounds bounds, ExprPtr residual,
              EvalContext ctx, ExecStats* stats);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  util::Result<bool> NextBatchImpl(storage::RowBatch* out) override;
  bool HasBatchImpl() const override { return true; }
  std::string Describe() const override;

 private:
  const storage::Table* table_;
  std::string alias_;
  std::string column_;
  Bounds bounds_;
  ExprPtr residual_;
  EvalContext ctx_;
  ExecStats* stats_;
  std::vector<storage::RowId> matches_;
  size_t cursor_ = 0;
};

class FilterOp : public PhysicalOperator {
 public:
  FilterOp(PhysicalPtr child, ExprPtr predicate, EvalContext ctx,
           ExecStats* stats);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  util::Result<bool> NextBatchImpl(storage::RowBatch* out) override;
  bool HasBatchImpl() const override { return true; }
  std::string Describe() const override;

 private:
  PhysicalPtr child_;
  ExprPtr predicate_;
  EvalContext ctx_;
  ExecStats* stats_;
};

class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(PhysicalPtr child, std::vector<OutputColumn> outputs,
            EvalContext ctx);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  util::Result<bool> NextBatchImpl(storage::RowBatch* out) override;
  bool HasBatchImpl() const override { return true; }
  std::string Describe() const override;

 private:
  PhysicalPtr child_;
  std::vector<OutputColumn> outputs_;
  EvalContext ctx_;
  // Row path: output positions whose expression is a bare column ref that
  // no other output references; those Values are moved out of the child row
  // instead of re-evaluated+copied (-1 = evaluate normally). The child row
  // buffer is a member so its capacity is reused across calls.
  std::vector<int> move_cols_;
  storage::Row in_row_;
  storage::RowBatch child_batch_;  // batch path input
};

/// Nested-loop join with an arbitrary (possibly null) condition; the right
/// input is materialized once.
class NestedLoopJoinOp : public PhysicalOperator {
 public:
  NestedLoopJoinOp(PhysicalPtr left, PhysicalPtr right, ExprPtr condition,
                   EvalContext ctx, ExecStats* stats);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  std::string Describe() const override;

 private:
  PhysicalPtr left_, right_;
  ExprPtr condition_;
  EvalContext ctx_;
  ExecStats* stats_;
  std::vector<storage::Row> right_rows_;
  storage::Row current_left_;
  bool have_left_ = false;
  size_t right_cursor_ = 0;
};

/// Hash join on one or more equi-key pairs, with an optional residual
/// condition; builds on the right input, probes with the left.
class HashJoinOp : public PhysicalOperator {
 public:
  HashJoinOp(PhysicalPtr left, PhysicalPtr right,
             std::vector<std::pair<ExprPtr, ExprPtr>> key_pairs,
             ExprPtr residual, EvalContext ctx, ExecStats* stats,
             ParallelContext par = {});
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  util::Result<bool> NextBatchImpl(storage::RowBatch* out) override;
  bool HasBatchImpl() const override { return true; }
  std::string Describe() const override;

 private:
  util::Result<uint64_t> KeyHash(const std::vector<ExprPtr>& exprs,
                                 const storage::Row& row,
                                 std::vector<storage::Value>* key_out);

  /// Verifies one right-side candidate against current_key_, applies the
  /// residual, and (on a match) fills `joined` and updates the stats.
  util::Result<bool> MatchCandidate(const storage::Row& r,
                                    storage::Row* joined);

  PhysicalPtr left_, right_;
  std::vector<std::pair<ExprPtr, ExprPtr>> key_pairs_;
  ExprPtr residual_;
  EvalContext ctx_;
  ExecStats* stats_;
  ParallelContext par_;
  // Build side: rows materialized in arrival order; the table maps key hash
  // to row indices in that order. Key hashing is morsel-parallel when a
  // pool is available, but the index lists (and thus probe match order) are
  // assembled serially in row order, so output is parallelism-independent.
  std::vector<storage::Row> right_rows_;
  std::unordered_map<uint64_t, std::vector<size_t>> hash_table_;
  // Key expressions split out of key_pairs_ at Open() so neither Next path
  // rebuilds the vectors per call.
  std::vector<ExprPtr> left_keys_, right_keys_;
  storage::Row current_left_;
  std::vector<storage::Value> current_key_;
  bool have_left_ = false;
  const std::vector<size_t>* probe_list_ = nullptr;
  size_t probe_pos_ = 0;
  // Batch probe state: the current left batch, its evaluated key columns
  // (logical row order), and the next logical row to probe.
  storage::RowBatch probe_batch_;
  std::vector<storage::ColumnVector> probe_key_cols_;
  size_t probe_idx_ = 0;
};

/// Full sort (materializing).
class SortOp : public PhysicalOperator {
 public:
  SortOp(PhysicalPtr child, std::vector<OrderKey> keys, EvalContext ctx);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  std::string Describe() const override;

 private:
  PhysicalPtr child_;
  std::vector<OrderKey> keys_;
  EvalContext ctx_;
  std::vector<storage::Row> rows_;
  size_t cursor_ = 0;
};

/// Hash aggregation with COUNT/SUM/AVG/MIN/MAX.
class HashAggregateOp : public PhysicalOperator {
 public:
  HashAggregateOp(PhysicalPtr child, std::vector<ExprPtr> group_by,
                  std::vector<OutputColumn> aggregates,
                  storage::Schema output_schema, EvalContext ctx);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  std::string Describe() const override;

 private:
  struct AggState {
    int64_t count = 0;          // rows seen (for COUNT(*) / AVG)
    int64_t non_null = 0;       // non-null inputs (for COUNT(x))
    double sum = 0.0;
    bool sum_is_int = true;
    storage::Value min, max;
  };

  PhysicalPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<OutputColumn> aggregates_;
  EvalContext ctx_;
  std::vector<std::pair<storage::Row, std::vector<AggState>>> groups_;
  size_t cursor_ = 0;
};

/// Streaming duplicate elimination (hash set over encoded rows).
class DistinctOp : public PhysicalOperator {
 public:
  explicit DistinctOp(PhysicalPtr child);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  std::string Describe() const override;

 private:
  PhysicalPtr child_;
  std::unordered_set<std::string> seen_;
};

class LimitOp : public PhysicalOperator {
 public:
  LimitOp(PhysicalPtr child, int64_t limit);
  util::Status OpenImpl() override;
  util::Result<bool> NextImpl(storage::Row* out) override;
  util::Result<bool> NextBatchImpl(storage::RowBatch* out) override;
  bool HasBatchImpl() const override { return true; }
  std::string Describe() const override;

 private:
  PhysicalPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_PHYSICAL_H_
