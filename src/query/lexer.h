// Lexer for the DrugTree query language (a SQL subset with tree predicates).

#ifndef DRUGTREE_QUERY_LEXER_H_
#define DRUGTREE_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace drugtree {
namespace query {

enum class TokenKind {
  kKeyword,     // SELECT, FROM, WHERE, ... (uppercased)
  kIdentifier,  // table/column names; may contain one '.' qualifier
  kString,      // 'literal'
  kInteger,
  kFloat,
  kOperator,    // = <> < <= > >= + - * / ( ) , . ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // keyword/identifier uppercased? identifiers keep case
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Tokenizes a query string. Keywords are recognized case-insensitively and
/// reported upper-case; identifiers keep their original case.
util::Result<std::vector<Token>> Lex(const std::string& text);

/// True iff `word` (upper-case) is a reserved keyword.
bool IsKeyword(const std::string& upper_word);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_LEXER_H_
