#include "query/join_order.h"

#include <algorithm>
#include <limits>
#include <map>

namespace drugtree {
namespace query {

namespace {

// Estimated rows after joining a set of relations: product of base rows
// times the selectivity of every edge internal to the set.
double SetRows(uint32_t mask, const std::vector<JoinRelation>& relations,
               const std::vector<JoinEdge>& edges) {
  double rows = 1.0;
  for (size_t i = 0; i < relations.size(); ++i) {
    if (mask & (1u << i)) rows *= relations[i].estimated_rows;
  }
  for (const auto& e : edges) {
    if ((mask & (1u << e.left_rel)) && (mask & (1u << e.right_rel))) {
      rows *= e.selectivity;
    }
  }
  return std::max(1.0, rows);
}

// Conditions whose both sides land in `left_mask` vs the new relation.
std::vector<ExprPtr> EdgesBetween(uint32_t left_mask, size_t new_rel,
                                  const std::vector<JoinEdge>& edges) {
  std::vector<ExprPtr> out;
  for (const auto& e : edges) {
    bool connects = (e.left_rel == new_rel && (left_mask & (1u << e.right_rel))) ||
                    (e.right_rel == new_rel && (left_mask & (1u << e.left_rel)));
    if (connects) out.push_back(e.condition->Clone());
  }
  return out;
}

JoinOrderResult FixedOrder(const std::vector<JoinRelation>& relations,
                           const std::vector<JoinEdge>& edges) {
  JoinOrderResult result;
  uint32_t mask = 0;
  double cost = 0.0;
  for (size_t i = 0; i < relations.size(); ++i) {
    result.order.push_back(i);
    if (i > 0) {
      result.conditions.push_back(EdgesBetween(mask, i, edges));
      cost += SetRows(mask | (1u << i), relations, edges);
    }
    mask |= 1u << i;
  }
  result.estimated_cost = cost;
  return result;
}

JoinOrderResult GreedyOrder(const std::vector<JoinRelation>& relations,
                            const std::vector<JoinEdge>& edges) {
  JoinOrderResult result;
  const size_t n = relations.size();
  std::vector<bool> used(n, false);
  // Start from the smallest relation.
  size_t start = 0;
  for (size_t i = 1; i < n; ++i) {
    if (relations[i].estimated_rows < relations[start].estimated_rows) {
      start = i;
    }
  }
  result.order.push_back(start);
  used[start] = true;
  uint32_t mask = 1u << start;
  double cost = 0.0;
  for (size_t step = 1; step < n; ++step) {
    double best_rows = std::numeric_limits<double>::infinity();
    size_t best = 0;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = !EdgesBetween(mask, i, edges).empty();
      double rows = SetRows(mask | (1u << i), relations, edges);
      // Prefer connected relations (avoid cross products) then size.
      if ((connected && !best_connected) ||
          (connected == best_connected && rows < best_rows)) {
        best = i;
        best_rows = rows;
        best_connected = connected;
      }
    }
    result.order.push_back(best);
    result.conditions.push_back(EdgesBetween(mask, best, edges));
    cost += best_rows;
    used[best] = true;
    mask |= 1u << best;
  }
  result.estimated_cost = cost;
  return result;
}

JoinOrderResult DpOrder(const std::vector<JoinRelation>& relations,
                        const std::vector<JoinEdge>& edges,
                        const obs::CalibratedCosts& costs) {
  const size_t n = relations.size();
  const uint32_t full = (1u << n) - 1;
  struct State {
    double cost = std::numeric_limits<double>::infinity();
    size_t last = 0;       // relation joined last
    uint32_t prev = 0;     // mask before joining `last`
  };
  std::vector<State> dp(full + 1);
  for (size_t i = 0; i < n; ++i) {
    dp[1u << i].cost = 0.0;  // base scans are costed elsewhere
    dp[1u << i].last = i;
    dp[1u << i].prev = 0;
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (dp[mask].cost == std::numeric_limits<double>::infinity()) continue;
    if (mask == full) break;
    double mask_rows = SetRows(mask, relations, edges);
    (void)mask_rows;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) continue;
      uint32_t next = mask | (1u << i);
      double out_rows = SetRows(next, relations, edges);
      // Connected steps pay the per-row probe coefficient; cross products
      // pay the penalty so connected orders win ties decisively.
      bool connected = !EdgesBetween(mask, i, edges).empty();
      double step_cost = out_rows * (connected ? costs.hash_probe_row
                                               : costs.cross_product_penalty);
      double total = dp[mask].cost + step_cost;
      if (total < dp[next].cost) {
        dp[next].cost = total;
        dp[next].last = i;
        dp[next].prev = mask;
      }
    }
  }
  // Reconstruct.
  JoinOrderResult result;
  std::vector<size_t> rev;
  uint32_t cur = full;
  while (cur != 0) {
    rev.push_back(dp[cur].last);
    cur = dp[cur].prev;
  }
  std::reverse(rev.begin(), rev.end());
  result.order = rev;
  uint32_t mask = 1u << rev[0];
  for (size_t step = 1; step < rev.size(); ++step) {
    result.conditions.push_back(EdgesBetween(mask, rev[step], edges));
    mask |= 1u << rev[step];
  }
  result.estimated_cost = dp[full].cost;
  return result;
}

}  // namespace

util::Result<JoinOrderResult> ChooseJoinOrder(
    const std::vector<JoinRelation>& relations,
    const std::vector<JoinEdge>& edges, bool enable_reordering,
    const obs::CalibratedCosts& costs) {
  if (relations.empty()) {
    return util::Status::InvalidArgument("no relations to order");
  }
  if (relations.size() > 31) {
    return util::Status::InvalidArgument("too many relations (max 31)");
  }
  for (const auto& e : edges) {
    if (e.left_rel >= relations.size() || e.right_rel >= relations.size()) {
      return util::Status::InvalidArgument("join edge index out of range");
    }
  }
  if (!enable_reordering || relations.size() == 1) {
    return FixedOrder(relations, edges);
  }
  if (relations.size() <= kDpTableLimit) {
    return DpOrder(relations, edges, costs);
  }
  return GreedyOrder(relations, edges);
}

}  // namespace query
}  // namespace drugtree
