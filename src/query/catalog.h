// Catalog: name -> table resolution plus the tree metadata the optimizer's
// tree-predicate rewrite needs.

#ifndef DRUGTREE_QUERY_CATALOG_H_
#define DRUGTREE_QUERY_CATALOG_H_

#include <map>
#include <string>

#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "storage/table.h"
#include "util/result.h"

namespace drugtree {
namespace query {

/// Declares that a table's columns encode tree positions:
///   node_col holds NodeIds, pre_col the node's pre-order number, and
///   post_col (optional, empty when absent) the subtree-max pre-order.
/// With this binding, SUBTREE(node_col, X) rewrites to
///   pre_col BETWEEN pre(X) AND post(X)
/// and ANCESTOR_OF(node_col, X) (only when post_col exists) to
///   pre_col <= pre(X) AND post_col >= pre(X).
struct TreeBinding {
  std::string node_col;
  std::string pre_col;
  std::string post_col;
};

class Catalog {
 public:
  Catalog() = default;

  /// Registers a table under its name. The table is borrowed and must
  /// outlive the catalog.
  util::Status Register(storage::Table* table);

  util::Result<storage::Table*> Lookup(const std::string& name) const;

  /// All registered tables by name (e.g. for server-wide footprint
  /// accounting or bulk encoded-segment builds).
  const std::map<std::string, storage::Table*>& tables() const {
    return tables_;
  }

  /// Attaches the phylogeny used by tree functions and rewrites.
  void SetTree(const phylo::Tree* tree, const phylo::TreeIndex* index) {
    tree_ = tree;
    tree_index_ = index;
  }
  const phylo::Tree* tree() const { return tree_; }
  const phylo::TreeIndex* tree_index() const { return tree_index_; }

  /// Declares a tree binding for a registered table.
  util::Status BindTree(const std::string& table, TreeBinding binding);

  /// Binding for a table, or nullptr.
  const TreeBinding* GetTreeBinding(const std::string& table) const;

  /// Bumps the data epoch; result caches key on this to invalidate stale
  /// entries after data changes.
  void BumpEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

 private:
  std::map<std::string, storage::Table*> tables_;
  std::map<std::string, TreeBinding> tree_bindings_;
  const phylo::Tree* tree_ = nullptr;
  const phylo::TreeIndex* tree_index_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_CATALOG_H_
