// Parser: query text -> SelectStatement AST.
//
// Grammar (SQL subset):
//   select    := SELECT select_item (',' select_item)*
//                FROM table_ref (join | ',' table_ref)*
//                [WHERE expr] [GROUP BY expr (',' expr)*]
//                [ORDER BY expr [ASC|DESC] (',' ...)*] [LIMIT int] [';']
//   join      := [INNER] JOIN table_ref ON expr
//   table_ref := identifier [AS? identifier]
//   select_item := expr [AS? identifier] | '*'
// Expressions: OR > AND > NOT > comparison > additive > multiplicative >
// unary > primary; primaries are literals, column refs, function calls,
// parenthesized exprs, and IS [NOT] NULL postfix.

#ifndef DRUGTREE_QUERY_PARSER_H_
#define DRUGTREE_QUERY_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "query/expr.h"
#include "util/result.h"

namespace drugtree {
namespace query {

struct SelectItem {
  ExprPtr expr;        // null for '*'
  std::string alias;   // output name; derived from expr if not given
  bool star = false;
};

struct TableRef {
  std::string table;   // catalog name
  std::string alias;   // defaults to the table name
};

struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Parsed SELECT statement. Explicit JOIN ... ON conditions are folded into
/// `where` as conjuncts (the optimizer re-derives join predicates), so
/// `tables` is always a flat list.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select;
  std::vector<TableRef> tables;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;

  /// Canonical text used as the result-cache key.
  std::string ToString() const;
};

/// Parses one SELECT statement.
util::Result<SelectStatement> ParseQuery(const std::string& text);

/// EXPLAIN prefix attached to a statement. kPlan prints the physical plan
/// without executing; kAnalyze executes and annotates each operator with
/// rows_out / Next() calls / cumulative time.
enum class ExplainMode {
  kNone,
  kPlan,     // EXPLAIN <select>
  kAnalyze,  // EXPLAIN ANALYZE <select>
};

/// A top-level statement: an optional EXPLAIN [ANALYZE] prefix plus a SELECT.
struct Statement {
  ExplainMode explain = ExplainMode::kNone;
  SelectStatement select;
};

/// Parses a statement, consuming an optional leading EXPLAIN [ANALYZE].
util::Result<Statement> ParseStatement(const std::string& text);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_PARSER_H_
