#include "query/physical.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/resource_tracker.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Column;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

namespace {

// Qualified scan schema for a base table under an alias.
util::Result<Schema> ScanSchema(const Table& table, const std::string& alias) {
  std::vector<Column> cols;
  for (const auto& c : table.schema().columns()) {
    cols.push_back({alias + "." + c.name, c.type, c.nullable});
  }
  return Schema::Create(std::move(cols));
}

uint64_t HashKey(const std::vector<Value>& key) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const auto& v : key) {
    h ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Morsel accounting for the parallel operator paths.
obs::Counter* MorselCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Default()->GetCounter("query.parallel.morsels");
  return c;
}

obs::Counter* ParallelRowsCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Default()->GetCounter("query.parallel.rows");
  return c;
}

/// Estimated resident bytes of one materialized row: vector header, inline
/// Value slots, and string payloads.
int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes =
      static_cast<int64_t>(sizeof(Row) + row.size() * sizeof(Value));
  for (const auto& v : row) {
    if (v.type() == ValueType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

/// Materializing loops charge in chunks of this size so a hard limit aborts
/// the build mid-flight (bounded overshoot) without a tracker round-trip
/// per row.
constexpr int64_t kChargeChunkBytes = 64 * 1024;

/// Maps a comparison BinaryOp to the storage layer's CompareOp; false for
/// non-comparison operators.
bool ToCompareOp(BinaryOp op, storage::CompareOp* out) {
  switch (op) {
    case BinaryOp::kEq: *out = storage::CompareOp::kEq; return true;
    case BinaryOp::kNe: *out = storage::CompareOp::kNe; return true;
    case BinaryOp::kLt: *out = storage::CompareOp::kLt; return true;
    case BinaryOp::kLe: *out = storage::CompareOp::kLe; return true;
    case BinaryOp::kGt: *out = storage::CompareOp::kGt; return true;
    case BinaryOp::kGe: *out = storage::CompareOp::kGe; return true;
    default: return false;
  }
}

/// Mirror of a comparison across `literal OP column` -> `column OP' literal`.
storage::CompareOp FlipCompareOp(storage::CompareOp op) {
  switch (op) {
    case storage::CompareOp::kLt: return storage::CompareOp::kGt;
    case storage::CompareOp::kLe: return storage::CompareOp::kGe;
    case storage::CompareOp::kGt: return storage::CompareOp::kLt;
    case storage::CompareOp::kGe: return storage::CompareOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// Translates a scan predicate into encoded-executable clauses. Succeeds
/// only when the ENTIRE predicate is a conjunction of (column cmp literal)
/// clauses — partial translation would change error semantics (an encoded
/// clause could skip rows on which a residual clause would have raised,
/// e.g. a division by zero). A null predicate translates to zero clauses.
/// The scan schema mirrors the table's column order, so bound indices are
/// table column indices.
bool TranslateEncodedPredicate(const Expr* pred, const ExprPtr& pred_owner,
                               std::vector<storage::EncodedPredicate>* out) {
  out->clear();
  if (pred == nullptr) return true;
  for (const ExprPtr& clause : SplitConjuncts(pred_owner)) {
    if (clause->kind != ExprKind::kBinary || clause->children.size() != 2) {
      return false;
    }
    storage::CompareOp op;
    if (!ToCompareOp(clause->bin_op, &op)) return false;
    const Expr* l = clause->children[0].get();
    const Expr* r = clause->children[1].get();
    const Expr* col;
    const Expr* lit;
    if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kLiteral) {
      col = l;
      lit = r;
    } else if (l->kind == ExprKind::kLiteral &&
               r->kind == ExprKind::kColumnRef) {
      col = r;
      lit = l;
      op = FlipCompareOp(op);
    } else {
      return false;
    }
    if (col->bound_index < 0) return false;
    out->push_back({static_cast<size_t>(col->bound_index), op, lit->literal});
  }
  return true;
}

}  // namespace

PhysicalOperator::~PhysicalOperator() {
  if (charged_tracker_ != nullptr && charged_bytes_ > 0) {
    charged_tracker_->Release(charged_bytes_);
  }
}

util::Status PhysicalOperator::ChargeOperatorMemory(int64_t bytes) {
  if (bytes <= 0) return util::Status::OK();
  // Stick with the tracker of the first charge: the destructor releases the
  // whole accumulated total against one node, so mixing trackers across a
  // context swap would corrupt both.
  obs::MemoryTracker* tracker = charged_tracker_;
  if (tracker == nullptr && query_context_ != nullptr) {
    tracker = query_context_->memory;
  }
  if (tracker == nullptr) return util::Status::OK();
  DRUGTREE_RETURN_IF_ERROR(tracker->TryCharge(bytes));
  charged_tracker_ = tracker;
  charged_bytes_ += bytes;
  return util::Status::OK();
}

std::string PhysicalOperator::ExplainString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const auto* c : explain_children_) {
    out += c->ExplainString(indent + 1);
  }
  return out;
}

util::Status PhysicalOperator::Open() {
  drain_batch_.Reset(0);
  drain_pos_ = 0;
  if (query_context_ != nullptr) {
    DRUGTREE_RETURN_IF_ERROR(query_context_->Check());
  }
  if (analyze_clock_ == nullptr) return OpenImpl();
  int64_t start = analyze_clock_->NowMicros();
  util::Status status = OpenImpl();
  op_stats_.elapsed_micros += analyze_clock_->NowMicros() - start;
  return status;
}

util::Result<bool> PhysicalOperator::NextRowOrDrain(storage::Row* out) {
  if (batch_size_ <= 1 || !HasBatchImpl()) return NextImpl(out);
  // Batch->row drain adapter: the parent iterates rows while this operator
  // produces vectorized batches underneath.
  while (drain_pos_ >= drain_batch_.size()) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, NextBatchImpl(&drain_batch_));
    if (!more) return false;
    drain_pos_ = 0;
  }
  *out = drain_batch_.RowAt(drain_pos_++);
  return true;
}

util::Result<bool> PhysicalOperator::Next(storage::Row* out) {
  ++op_stats_.next_calls;
  if (query_context_ != nullptr &&
      (op_stats_.next_calls % kCancelCheckInterval) == 0) {
    util::Status live = query_context_->Check();
    if (!live.ok()) return live;
  }
  if (analyze_clock_ == nullptr) {
    util::Result<bool> more = NextRowOrDrain(out);
    if (more.ok() && *more) ++op_stats_.rows_out;
    return more;
  }
  int64_t start = analyze_clock_->NowMicros();
  util::Result<bool> more = NextRowOrDrain(out);
  op_stats_.elapsed_micros += analyze_clock_->NowMicros() - start;
  if (more.ok() && *more) ++op_stats_.rows_out;
  return more;
}

util::Result<bool> PhysicalOperator::NextBatch(storage::RowBatch* out) {
  ++op_stats_.next_calls;
  // One checkpoint per batch: cheap relative to the batch of work it gates,
  // and it bounds cancellation latency by batch_size rows per operator.
  if (query_context_ != nullptr) {
    util::Status live = query_context_->Check();
    if (!live.ok()) return live;
  }
  util::Result<bool> more = [&]() -> util::Result<bool> {
    if (analyze_clock_ == nullptr) return NextBatchImpl(out);
    int64_t start = analyze_clock_->NowMicros();
    util::Result<bool> r = NextBatchImpl(out);
    op_stats_.elapsed_micros += analyze_clock_->NowMicros() - start;
    return r;
  }();
  if (more.ok() && *more) {
    op_stats_.rows_out += static_cast<int64_t>(out->size());
    ++op_stats_.batches;
    // High-water accounting for the in-flight output batch: only growth
    // beyond the largest batch seen so far is charged, so steady-state
    // batches of stable size cost one ApproxBytes() walk and no tracker
    // traffic.
    if (query_context_ != nullptr && query_context_->memory != nullptr) {
      int64_t bytes = static_cast<int64_t>(out->ApproxBytes());
      if (bytes > batch_charged_bytes_) {
        DRUGTREE_RETURN_IF_ERROR(
            ChargeOperatorMemory(bytes - batch_charged_bytes_));
        batch_charged_bytes_ = bytes;
      }
    }
  }
  return more;
}

util::Result<bool> PhysicalOperator::NextBatchImpl(storage::RowBatch* out) {
  // Row->batch adapter: accumulate NextImpl() rows. Used by operators
  // without a native batch implementation (Sort, HashAggregate,
  // NestedLoopJoin, Distinct) so the batch driver runs any plan.
  out->Reset(schema_.columns().size());
  storage::Row row;
  for (size_t i = 0; i < batch_size_; ++i) {
    if (query_context_ != nullptr && i != 0 &&
        (i % static_cast<size_t>(kCancelCheckInterval)) == 0) {
      DRUGTREE_RETURN_IF_ERROR(query_context_->Check());
    }
    DRUGTREE_ASSIGN_OR_RETURN(bool more, NextImpl(&row));
    if (!more) break;
    out->AppendRow(std::move(row));
  }
  return out->physical_size() > 0;
}

void PhysicalOperator::SetBatchSize(size_t batch_size) {
  batch_size_ = batch_size == 0 ? 1 : batch_size;
  for (auto* c : explain_children_) c->SetBatchSize(batch_size);
}

void PhysicalOperator::EnableAnalyze(const util::Clock* clock) {
  analyze_clock_ = clock;
  for (auto* c : explain_children_) c->EnableAnalyze(clock);
}

void PhysicalOperator::SetQueryContext(const QueryContext* context) {
  query_context_ = context;
  for (auto* c : explain_children_) c->SetQueryContext(context);
}

obs::ExplainNode PhysicalOperator::AnalyzeTree() const {
  obs::ExplainNode node;
  node.label = Describe();
  node.rows_out = op_stats_.rows_out;
  node.next_calls = op_stats_.next_calls;
  node.batches = op_stats_.batches;
  node.bytes_scanned = op_stats_.bytes_scanned;
  node.elapsed_micros = op_stats_.elapsed_micros;
  for (const auto* c : explain_children_) {
    node.children.push_back(c->AnalyzeTree());
  }
  return node;
}

// ---------------------------------------------------------------- SeqScanOp

SeqScanOp::SeqScanOp(const Table* table, std::string alias, ExprPtr predicate,
                     EvalContext ctx, ExecStats* stats, ParallelContext par)
    : table_(table),
      alias_(std::move(alias)),
      predicate_(std::move(predicate)),
      ctx_(ctx),
      stats_(stats),
      par_(par) {}

util::Status SeqScanOp::OpenImpl() {
  DRUGTREE_ASSIGN_OR_RETURN(schema_, ScanSchema(*table_, alias_));
  if (predicate_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(predicate_.get(), schema_));
  }
  cursor_ = 0;
  mcursor_ = 0;
  materialized_ = false;
  matches_.clear();
  encoded_ = nullptr;
  enc_clauses_.clear();
  enc_seg_ = 0;
  enc_pos_ = 0;
  enc_matches_.clear();
  // Encoded fast path: only on the batch driver, only when the table has a
  // fresh encoded snapshot, and only when the whole predicate translates to
  // (column cmp literal) conjuncts — anything else falls back to the plain
  // paths, which are exact by construction.
  if (batch_size() > 1 && table_->encoded() != nullptr &&
      TranslateEncodedPredicate(predicate_.get(), predicate_, &enc_clauses_)) {
    encoded_ = table_->encoded();
    return util::Status::OK();
  }
  if (par_.enabled() && predicate_ &&
      static_cast<size_t>(table_->NumRows()) >= 2 * par_.morsel_rows) {
    DRUGTREE_RETURN_IF_ERROR(MaterializeParallel());
    materialized_ = true;
  }
  return util::Status::OK();
}

util::Status SeqScanOp::MaterializeParallel() {
  DT_SPAN("exec.parallel_scan");
  const size_t n = static_cast<size_t>(table_->NumRows());
  const size_t morsel = par_.morsel_rows;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  std::vector<std::vector<storage::RowId>> hits(num_morsels);
  std::vector<util::Status> errors(num_morsels, util::Status::OK());
  std::vector<int64_t> scanned(num_morsels, 0);
  std::vector<int64_t> evals(num_morsels, 0);
  const QueryContext* qctx = query_context();
  par_.pool->ParallelFor(num_morsels, [&](size_t m) {
    // Morsel-boundary cancellation point: an expired deadline stops the
    // scan within one morsel of work per worker.
    if (qctx != nullptr) {
      util::Status live = qctx->Check();
      if (!live.ok()) {
        errors[m] = live;
        return;
      }
    }
    const size_t begin = m * morsel;
    const size_t end = std::min(n, begin + morsel);
    for (size_t i = begin; i < end; ++i) {
      storage::RowId id = static_cast<storage::RowId>(i);
      if (table_->IsDeleted(id)) continue;
      ++scanned[m];
      ++evals[m];
      auto keep = EvalPredicate(*predicate_, table_->row(id), ctx_);
      if (!keep.ok()) {
        errors[m] = keep.status();
        return;
      }
      if (*keep) hits[m].push_back(id);
    }
  });
  for (const auto& s : errors) {
    if (!s.ok()) return s;
  }
  for (size_t m = 0; m < num_morsels; ++m) {
    stats_->rows_scanned += scanned[m];
    stats_->predicate_evals += evals[m];
    matches_.insert(matches_.end(), hits[m].begin(), hits[m].end());
  }
  MorselCounter()->Add(static_cast<int64_t>(num_morsels));
  ParallelRowsCounter()->Add(static_cast<int64_t>(n));
  return ChargeOperatorMemory(
      static_cast<int64_t>(matches_.size() * sizeof(storage::RowId)));
}

util::Result<bool> SeqScanOp::NextImpl(Row* out) {
  if (materialized_) {
    // Stats were accumulated during the parallel materialization.
    if (mcursor_ >= matches_.size()) return false;
    *out = table_->row(matches_[mcursor_++]);
    return true;
  }
  while (cursor_ < table_->NumRows()) {
    storage::RowId id = cursor_++;
    // A selective predicate can walk many rows per emitted one, so the
    // base-shell checkpoint (per Next() call) is not enough here.
    if (query_context() != nullptr && (cursor_ % kCancelCheckRows) == 0) {
      DRUGTREE_RETURN_IF_ERROR(query_context()->Check());
    }
    if (table_->IsDeleted(id)) continue;
    ++stats_->rows_scanned;
    const Row& row = table_->row(id);
    if (predicate_) {
      ++stats_->predicate_evals;
      DRUGTREE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate_, row, ctx_));
      if (!keep) continue;
    }
    *out = row;
    return true;
  }
  return false;
}

util::Result<bool> SeqScanOp::NextBatchImpl(storage::RowBatch* out) {
  const size_t cols = schema_.columns().size();
  if (encoded_ != nullptr) return NextBatchEncoded(out);
  if (materialized_) {
    // Stats were accumulated during the parallel materialization; slice the
    // surviving rows into batches (one batch per morsel at the defaults).
    out->Reset(cols);
    while (mcursor_ < matches_.size() && out->physical_size() < batch_size()) {
      out->AppendRow(table_->row(matches_[mcursor_++]));
    }
    if (out->physical_size() == 0) return false;
    int64_t bytes = static_cast<int64_t>(out->ApproxBytes());
    stats_->bytes_scanned += bytes;
    AddBytesScanned(bytes);
    return true;
  }
  for (;;) {
    out->Reset(cols);
    size_t got = table_->ScanBatch(&cursor_, batch_size(), out);
    if (got == 0) return false;  // only tombstones remained
    stats_->rows_scanned += static_cast<int64_t>(got);
    int64_t bytes = static_cast<int64_t>(out->ApproxBytes());
    stats_->bytes_scanned += bytes;
    AddBytesScanned(bytes);
    if (predicate_) {
      stats_->predicate_evals += static_cast<int64_t>(got);
      std::vector<uint32_t> sel;
      DRUGTREE_RETURN_IF_ERROR(EvalPredicateBatch(*predicate_, *out, ctx_,
                                                  &sel));
      if (sel.empty()) {
        // Everything filtered out; a selective predicate can walk many
        // batches per emitted one, so checkpoint here like the row path
        // does per kCancelCheckRows rows.
        if (query_context() != nullptr) {
          DRUGTREE_RETURN_IF_ERROR(query_context()->Check());
        }
        continue;
      }
      out->SetSelection(std::move(sel));
    }
    return true;
  }
}

util::Result<bool> SeqScanOp::NextBatchEncoded(storage::RowBatch* out) {
  out->Reset(schema_.columns().size());
  size_t appended = 0;
  while (appended < batch_size()) {
    if (enc_pos_ >= enc_matches_.size()) {
      // Current segment drained: filter the next one. Matches are produced
      // directly on the encoded form; only survivors are ever decoded.
      if (enc_seg_ >= encoded_->segments.size()) break;
      // Segment-boundary checkpoint: a selective predicate can walk many
      // segments per emitted batch.
      if (query_context() != nullptr) {
        DRUGTREE_RETURN_IF_ERROR(query_context()->Check());
      }
      const storage::EncodedSegment& seg = encoded_->segments[enc_seg_++];
      stats_->rows_scanned += static_cast<int64_t>(seg.num_rows);
      if (!enc_clauses_.empty()) {
        stats_->predicate_evals += static_cast<int64_t>(seg.num_rows);
      }
      stats_->bytes_scanned += static_cast<int64_t>(seg.encoded_bytes);
      AddBytesScanned(static_cast<int64_t>(seg.encoded_bytes));
      enc_pos_ = 0;
      storage::FilterSegment(seg, enc_clauses_, &enc_matches_, &enc_scratch_);
      continue;
    }
    const storage::EncodedSegment& seg = encoded_->segments[enc_seg_ - 1];
    size_t take =
        std::min(batch_size() - appended, enc_matches_.size() - enc_pos_);
    for (size_t c = 0; c < seg.columns.size(); ++c) {
      seg.columns[c].GatherInto(enc_matches_.data() + enc_pos_, take,
                                &out->column(c));
    }
    enc_pos_ += take;
    appended += take;
  }
  if (appended == 0) return false;
  out->FinishAppendedRows();
  return true;
}

std::string SeqScanOp::Describe() const {
  std::string out = "SeqScan " + table_->name();
  if (alias_ != table_->name()) out += " AS " + alias_;
  if (predicate_) out += " [filter: " + predicate_->ToString() + "]";
  if (const storage::EncodedTableSnapshot* snap = table_->encoded()) {
    out += " [encoded: " + snap->Summary(table_->schema()) + "]";
  }
  return out;
}

// -------------------------------------------------------------- IndexScanOp

IndexScanOp::IndexScanOp(const Table* table, std::string alias,
                         std::string column, Bounds bounds, ExprPtr residual,
                         EvalContext ctx, ExecStats* stats)
    : table_(table),
      alias_(std::move(alias)),
      column_(std::move(column)),
      bounds_(std::move(bounds)),
      residual_(std::move(residual)),
      ctx_(ctx),
      stats_(stats) {}

util::Status IndexScanOp::OpenImpl() {
  DRUGTREE_ASSIGN_OR_RETURN(schema_, ScanSchema(*table_, alias_));
  if (residual_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(residual_.get(), schema_));
  }
  if (bounds_.is_point) {
    DRUGTREE_ASSIGN_OR_RETURN(matches_,
                              table_->IndexLookup(column_, bounds_.equal));
  } else {
    DRUGTREE_ASSIGN_OR_RETURN(
        matches_, table_->IndexRange(column_, bounds_.lo, bounds_.lo_inclusive,
                                     bounds_.hi, bounds_.hi_inclusive));
  }
  cursor_ = 0;
  return ChargeOperatorMemory(
      static_cast<int64_t>(matches_.size() * sizeof(storage::RowId)));
}

util::Result<bool> IndexScanOp::NextImpl(Row* out) {
  while (cursor_ < matches_.size()) {
    storage::RowId id = matches_[cursor_++];
    if (table_->IsDeleted(id)) continue;
    ++stats_->rows_index_fetched;
    const Row& row = table_->row(id);
    if (residual_) {
      ++stats_->predicate_evals;
      DRUGTREE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, row, ctx_));
      if (!keep) continue;
    }
    *out = row;
    return true;
  }
  return false;
}

util::Result<bool> IndexScanOp::NextBatchImpl(storage::RowBatch* out) {
  const size_t cols = schema_.columns().size();
  for (;;) {
    out->Reset(cols);
    size_t appended = 0;
    while (cursor_ < matches_.size() && appended < batch_size()) {
      storage::RowId id = matches_[cursor_++];
      if (table_->IsDeleted(id)) continue;
      ++stats_->rows_index_fetched;
      out->AppendRow(table_->row(id));
      ++appended;
    }
    if (appended == 0) return false;
    if (residual_) {
      stats_->predicate_evals += static_cast<int64_t>(appended);
      std::vector<uint32_t> sel;
      DRUGTREE_RETURN_IF_ERROR(EvalPredicateBatch(*residual_, *out, ctx_,
                                                  &sel));
      if (sel.empty()) continue;  // match set is bounded; shell checkpoints
      out->SetSelection(std::move(sel));
    }
    return true;
  }
}

std::string IndexScanOp::Describe() const {
  std::string out = "IndexScan " + table_->name() + "." + column_;
  if (bounds_.is_point) {
    out += " = " + bounds_.equal.ToString();
  } else {
    out += util::StringPrintf(
        " in %c%s, %s%c", bounds_.lo_inclusive ? '[' : '(',
        bounds_.lo.is_null() ? "-inf" : bounds_.lo.ToString().c_str(),
        bounds_.hi.is_null() ? "+inf" : bounds_.hi.ToString().c_str(),
        bounds_.hi_inclusive ? ']' : ')');
  }
  if (residual_) out += " [residual: " + residual_->ToString() + "]";
  return out;
}

// ----------------------------------------------------------------- FilterOp

FilterOp::FilterOp(PhysicalPtr child, ExprPtr predicate, EvalContext ctx,
                   ExecStats* stats)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      ctx_(ctx),
      stats_(stats) {
  explain_children_ = {child_.get()};
}

util::Status FilterOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(child_->Open());
  schema_ = child_->schema();
  if (predicate_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(predicate_.get(), schema_));
  }
  return util::Status::OK();
}

util::Result<bool> FilterOp::NextImpl(Row* out) {
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (!predicate_) return true;
    ++stats_->predicate_evals;
    DRUGTREE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate_, *out, ctx_));
    if (keep) return true;
  }
}

util::Result<bool> FilterOp::NextBatchImpl(storage::RowBatch* out) {
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    if (!predicate_) return true;
    stats_->predicate_evals += static_cast<int64_t>(out->size());
    std::vector<uint32_t> sel;
    DRUGTREE_RETURN_IF_ERROR(EvalPredicateBatch(*predicate_, *out, ctx_,
                                                &sel));
    if (sel.empty()) continue;  // child's NextBatch shell checkpoints
    out->SetSelection(std::move(sel));
    return true;
  }
}

std::string FilterOp::Describe() const {
  return "Filter " + (predicate_ ? predicate_->ToString() : "true");
}

// ---------------------------------------------------------------- ProjectOp

ProjectOp::ProjectOp(PhysicalPtr child, std::vector<OutputColumn> outputs,
                     EvalContext ctx)
    : child_(std::move(child)), outputs_(std::move(outputs)), ctx_(ctx) {
  explain_children_ = {child_.get()};
}

util::Status ProjectOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(child_->Open());
  std::vector<Column> cols;
  for (auto& o : outputs_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(o.expr.get(), child_->schema()));
    cols.push_back({o.name, ValueType::kString, true});
  }
  DRUGTREE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(cols)));
  // Row-path move optimization: an output that is a bare column ref may
  // steal the child's Value instead of copying — but only if no other
  // output expression also reads that column (SELECT p.acc, p.acc or
  // SELECT x, x + 1 must keep copying).
  std::vector<int> ref_counts;
  auto count_refs = [&ref_counts](const Expr& e, auto&& self) -> void {
    if (e.kind == ExprKind::kColumnRef && e.bound_index >= 0) {
      if (static_cast<size_t>(e.bound_index) >= ref_counts.size()) {
        ref_counts.resize(static_cast<size_t>(e.bound_index) + 1, 0);
      }
      ++ref_counts[static_cast<size_t>(e.bound_index)];
    }
    for (const auto& c : e.children) self(*c, self);
  };
  for (const auto& o : outputs_) count_refs(*o.expr, count_refs);
  move_cols_.assign(outputs_.size(), -1);
  for (size_t i = 0; i < outputs_.size(); ++i) {
    const Expr& e = *outputs_[i].expr;
    if (e.kind == ExprKind::kColumnRef && e.bound_index >= 0 &&
        ref_counts[static_cast<size_t>(e.bound_index)] == 1) {
      move_cols_[i] = e.bound_index;
    }
  }
  return util::Status::OK();
}

util::Result<bool> ProjectOp::NextImpl(Row* out) {
  DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->Next(&in_row_));
  if (!more) return false;
  out->clear();
  out->reserve(outputs_.size());
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (move_cols_[i] >= 0) {
      // The child row is discarded after this call; steal the value.
      out->push_back(std::move(in_row_[static_cast<size_t>(move_cols_[i])]));
      continue;
    }
    DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*outputs_[i].expr, in_row_,
                                                ctx_));
    out->push_back(std::move(v));
  }
  return true;
}

util::Result<bool> ProjectOp::NextBatchImpl(storage::RowBatch* out) {
  DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
  if (!more) return false;
  out->Reset(outputs_.size());
  for (size_t c = 0; c < outputs_.size(); ++c) {
    DRUGTREE_RETURN_IF_ERROR(
        EvalExprBatch(*outputs_[c].expr, child_batch_, ctx_, &out->column(c)));
  }
  out->FinishAppendedRows();
  return true;
}

std::string ProjectOp::Describe() const {
  std::string out = "Project ";
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (i) out += ", ";
    out += outputs_[i].name;
  }
  return out;
}

// --------------------------------------------------------- NestedLoopJoinOp

NestedLoopJoinOp::NestedLoopJoinOp(PhysicalPtr left, PhysicalPtr right,
                                   ExprPtr condition, EvalContext ctx,
                                   ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      condition_(std::move(condition)),
      ctx_(ctx),
      stats_(stats) {
  explain_children_ = {left_.get(), right_.get()};
}

util::Status NestedLoopJoinOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(left_->Open());
  DRUGTREE_RETURN_IF_ERROR(right_->Open());
  std::vector<Column> cols;
  for (const auto& c : left_->schema().columns()) cols.push_back(c);
  for (const auto& c : right_->schema().columns()) cols.push_back(c);
  DRUGTREE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(cols)));
  if (condition_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(condition_.get(), schema_));
  }
  // Materialize the inner side once, charging as it grows so a hard memory
  // limit aborts the build instead of completing it first.
  right_rows_.clear();
  Row r;
  int64_t pending = 0;
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, right_->Next(&r));
    if (!more) break;
    pending += ApproxRowBytes(r);
    right_rows_.push_back(r);
    if (pending >= kChargeChunkBytes) {
      DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
      pending = 0;
    }
  }
  DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
  have_left_ = false;
  right_cursor_ = 0;
  return util::Status::OK();
}

util::Result<bool> NestedLoopJoinOp::NextImpl(Row* out) {
  for (;;) {
    if (!have_left_) {
      DRUGTREE_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      have_left_ = true;
      right_cursor_ = 0;
    }
    while (right_cursor_ < right_rows_.size()) {
      // A selective condition can walk the whole inner table per emitted
      // row; checkpoint by inner-row count, not by Next() call.
      if (query_context() != nullptr &&
          (right_cursor_ % static_cast<size_t>(kCancelCheckRows)) == 0 &&
          right_cursor_ != 0) {
        DRUGTREE_RETURN_IF_ERROR(query_context()->Check());
      }
      const Row& r = right_rows_[right_cursor_++];
      Row joined = current_left_;
      joined.insert(joined.end(), r.begin(), r.end());
      if (condition_) {
        ++stats_->predicate_evals;
        DRUGTREE_ASSIGN_OR_RETURN(bool keep,
                                  EvalPredicate(*condition_, joined, ctx_));
        if (!keep) continue;
      }
      ++stats_->rows_joined;
      *out = std::move(joined);
      return true;
    }
    have_left_ = false;
  }
}

std::string NestedLoopJoinOp::Describe() const {
  return "NestedLoopJoin" +
         (condition_ ? " ON " + condition_->ToString() : std::string(" (cross)"));
}

// --------------------------------------------------------------- HashJoinOp

HashJoinOp::HashJoinOp(PhysicalPtr left, PhysicalPtr right,
                       std::vector<std::pair<ExprPtr, ExprPtr>> key_pairs,
                       ExprPtr residual, EvalContext ctx, ExecStats* stats,
                       ParallelContext par)
    : left_(std::move(left)),
      right_(std::move(right)),
      key_pairs_(std::move(key_pairs)),
      residual_(std::move(residual)),
      ctx_(ctx),
      stats_(stats),
      par_(par) {
  explain_children_ = {left_.get(), right_.get()};
}

util::Result<uint64_t> HashJoinOp::KeyHash(const std::vector<ExprPtr>& exprs,
                                           const Row& row,
                                           std::vector<Value>* key_out) {
  key_out->clear();
  for (const auto& e : exprs) {
    DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row, ctx_));
    key_out->push_back(std::move(v));
  }
  return HashKey(*key_out);
}

util::Status HashJoinOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(left_->Open());
  DRUGTREE_RETURN_IF_ERROR(right_->Open());
  std::vector<Column> cols;
  for (const auto& c : left_->schema().columns()) cols.push_back(c);
  for (const auto& c : right_->schema().columns()) cols.push_back(c);
  DRUGTREE_ASSIGN_OR_RETURN(schema_, Schema::Create(std::move(cols)));

  // Bind: left keys to the left schema, right keys to the right schema,
  // residual to the joined schema.
  for (auto& [lk, rk] : key_pairs_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(lk.get(), left_->schema()));
    DRUGTREE_RETURN_IF_ERROR(BindExpr(rk.get(), right_->schema()));
  }
  if (residual_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(residual_.get(), schema_));
  }

  // Split the key pairs once; both Next paths reuse these.
  left_keys_.clear();
  right_keys_.clear();
  for (auto& [lk, rk] : key_pairs_) {
    left_keys_.push_back(lk);
    right_keys_.push_back(rk);
  }

  // Build phase on the right input: materialize, hash the keys (in morsels
  // when a pool is available), then index hash -> row positions in row
  // order. The index layout is independent of the hashing schedule, so the
  // probe side sees identical match order at any parallelism.
  hash_table_.clear();
  right_rows_.clear();
  Row r;
  int64_t pending = 0;
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, right_->Next(&r));
    if (!more) break;
    pending += ApproxRowBytes(r);
    right_rows_.push_back(r);
    if (pending >= kChargeChunkBytes) {
      DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
      pending = 0;
    }
  }
  DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
  const size_t n = right_rows_.size();
  std::vector<uint64_t> hashes(n);
  std::vector<char> valid(n, 0);
  if (par_.enabled() && n >= 2 * par_.morsel_rows) {
    DT_SPAN("exec.parallel_build");
    const size_t morsel = par_.morsel_rows;
    const size_t num_morsels = (n + morsel - 1) / morsel;
    std::vector<util::Status> errors(num_morsels, util::Status::OK());
    const QueryContext* qctx = query_context();
    par_.pool->ParallelFor(num_morsels, [&](size_t m) {
      // Morsel-boundary cancellation point (same contract as the scan).
      if (qctx != nullptr) {
        util::Status live = qctx->Check();
        if (!live.ok()) {
          errors[m] = live;
          return;
        }
      }
      std::vector<Value> key;
      const size_t begin = m * morsel;
      const size_t end = std::min(n, begin + morsel);
      for (size_t i = begin; i < end; ++i) {
        auto h = KeyHash(right_keys_, right_rows_[i], &key);
        if (!h.ok()) {
          errors[m] = h.status();
          return;
        }
        bool has_null = false;
        for (const auto& v : key) has_null |= v.is_null();
        valid[i] = has_null ? 0 : 1;  // NULL keys never join
        hashes[i] = *h;
      }
    });
    for (const auto& s : errors) {
      if (!s.ok()) return s;
    }
    MorselCounter()->Add(static_cast<int64_t>(num_morsels));
    ParallelRowsCounter()->Add(static_cast<int64_t>(n));
  } else {
    std::vector<Value> key;
    for (size_t i = 0; i < n; ++i) {
      DRUGTREE_ASSIGN_OR_RETURN(uint64_t h,
                                KeyHash(right_keys_, right_rows_[i], &key));
      bool has_null = false;
      for (const auto& v : key) has_null |= v.is_null();
      valid[i] = has_null ? 0 : 1;  // NULL keys never join
      hashes[i] = h;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (valid[i]) hash_table_[hashes[i]].push_back(i);
  }
  // Coarse hash-table overhead: bucket/node bookkeeping per distinct key
  // plus one index slot per build row.
  int64_t table_bytes = 0;
  for (const auto& [h, list] : hash_table_) {
    table_bytes += 64 + static_cast<int64_t>(list.size()) * 8;
  }
  DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(table_bytes));
  have_left_ = false;
  probe_list_ = nullptr;
  probe_batch_.Reset(0);
  probe_key_cols_.clear();
  probe_idx_ = 0;
  return util::Status::OK();
}

// Emits the surviving join row for right-side candidate `r` into `joined`,
// or leaves it empty. Shared by both probe paths so match verification,
// residual evaluation, and stats accounting stay identical.
util::Result<bool> HashJoinOp::MatchCandidate(const Row& r, Row* joined) {
  // Verify key equality (hash collisions).
  std::vector<Value> rkey;
  auto rh = KeyHash(right_keys_, r, &rkey);
  if (!rh.ok()) return rh.status();
  if (rkey != current_key_) return false;
  *joined = current_left_;
  joined->insert(joined->end(), r.begin(), r.end());
  if (residual_) {
    ++stats_->predicate_evals;
    DRUGTREE_ASSIGN_OR_RETURN(bool keep,
                              EvalPredicate(*residual_, *joined, ctx_));
    if (!keep) return false;
  }
  ++stats_->rows_joined;
  return true;
}

util::Result<bool> HashJoinOp::NextImpl(Row* out) {
  for (;;) {
    if (!have_left_) {
      DRUGTREE_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      DRUGTREE_ASSIGN_OR_RETURN(uint64_t h,
                                KeyHash(left_keys_, current_left_,
                                        &current_key_));
      bool has_null = false;
      for (const auto& v : current_key_) has_null |= v.is_null();
      if (has_null) continue;
      auto it = hash_table_.find(h);
      probe_list_ = it == hash_table_.end() ? nullptr : &it->second;
      probe_pos_ = 0;
      have_left_ = true;
    }
    while (probe_list_ != nullptr && probe_pos_ < probe_list_->size()) {
      const Row& r = right_rows_[(*probe_list_)[probe_pos_++]];
      Row joined;
      DRUGTREE_ASSIGN_OR_RETURN(bool match, MatchCandidate(r, &joined));
      if (!match) continue;
      *out = std::move(joined);
      return true;
    }
    have_left_ = false;
  }
}

util::Result<bool> HashJoinOp::NextBatchImpl(storage::RowBatch* out) {
  out->Reset(schema_.columns().size());
  for (;;) {
    // Drain the current probe row's match list first.
    while (probe_list_ != nullptr && probe_pos_ < probe_list_->size()) {
      const Row& r = right_rows_[(*probe_list_)[probe_pos_++]];
      Row joined;
      DRUGTREE_ASSIGN_OR_RETURN(bool match, MatchCandidate(r, &joined));
      if (!match) continue;
      out->AppendRow(std::move(joined));
      if (out->physical_size() >= batch_size()) return true;
    }
    probe_list_ = nullptr;
    // Advance to the next probe row, fetching (and key-evaluating) a fresh
    // left batch when the current one is exhausted.
    if (probe_idx_ >= probe_batch_.size()) {
      DRUGTREE_ASSIGN_OR_RETURN(bool more, left_->NextBatch(&probe_batch_));
      if (!more) return out->physical_size() > 0;  // flush the tail
      probe_idx_ = 0;
      probe_key_cols_.resize(left_keys_.size());
      for (size_t k = 0; k < left_keys_.size(); ++k) {
        DRUGTREE_RETURN_IF_ERROR(EvalExprBatch(*left_keys_[k], probe_batch_,
                                               ctx_, &probe_key_cols_[k]));
      }
    }
    const size_t i = probe_idx_++;
    current_key_.clear();
    bool has_null = false;
    for (const auto& col : probe_key_cols_) {
      Value v = col.GetValue(i);
      has_null |= v.is_null();
      current_key_.push_back(std::move(v));
    }
    if (has_null) continue;  // NULL keys never join
    uint64_t h = HashKey(current_key_);
    auto it = hash_table_.find(h);
    if (it == hash_table_.end()) continue;
    current_left_ = probe_batch_.RowAt(i);
    probe_list_ = &it->second;
    probe_pos_ = 0;
  }
}

std::string HashJoinOp::Describe() const {
  std::string out = "HashJoin ON ";
  for (size_t i = 0; i < key_pairs_.size(); ++i) {
    if (i) out += " AND ";
    out += key_pairs_[i].first->ToString() + " = " +
           key_pairs_[i].second->ToString();
  }
  if (residual_) out += " [residual: " + residual_->ToString() + "]";
  return out;
}

// ------------------------------------------------------------------- SortOp

SortOp::SortOp(PhysicalPtr child, std::vector<OrderKey> keys, EvalContext ctx)
    : child_(std::move(child)), keys_(std::move(keys)), ctx_(ctx) {
  explain_children_ = {child_.get()};
}

util::Status SortOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(child_->Open());
  schema_ = child_->schema();
  for (auto& k : keys_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(k.expr.get(), schema_));
  }
  rows_.clear();
  Row r;
  int64_t pending = 0;
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->Next(&r));
    if (!more) break;
    pending += ApproxRowBytes(r);
    rows_.push_back(std::move(r));
    if (pending >= kChargeChunkBytes) {
      DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
      pending = 0;
    }
  }
  DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
  // Precompute sort keys, then sort by them.
  std::vector<std::pair<std::vector<Value>, size_t>> keyed;
  keyed.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::vector<Value> kv;
    for (const auto& k : keys_) {
      DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*k.expr, rows_[i], ctx_));
      kv.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(kv), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const auto& a, const auto& b) {
                     for (size_t k = 0; k < keys_.size(); ++k) {
                       int c = a.first[k].Compare(b.first[k]);
                       if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (const auto& [kv, idx] : keyed) sorted.push_back(std::move(rows_[idx]));
  rows_ = std::move(sorted);
  cursor_ = 0;
  return util::Status::OK();
}

util::Result<bool> SortOp::NextImpl(Row* out) {
  if (cursor_ >= rows_.size()) return false;
  // Each sorted row is handed out exactly once; move, don't copy.
  *out = std::move(rows_[cursor_++]);
  return true;
}

std::string SortOp::Describe() const {
  std::string out = "Sort ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i) out += ", ";
    out += keys_[i].expr->ToString();
    if (!keys_[i].ascending) out += " DESC";
  }
  return out;
}

// --------------------------------------------------------- HashAggregateOp

HashAggregateOp::HashAggregateOp(PhysicalPtr child,
                                 std::vector<ExprPtr> group_by,
                                 std::vector<OutputColumn> aggregates,
                                 Schema output_schema, EvalContext ctx)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)),
      ctx_(ctx) {
  schema_ = std::move(output_schema);
  explain_children_ = {child_.get()};
}

util::Status HashAggregateOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(child_->Open());
  for (auto& g : group_by_) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(g.get(), child_->schema()));
  }
  for (auto& a : aggregates_) {
    // Bind the aggregate's argument (if any) against the child schema.
    for (auto& arg : a.expr->children) {
      DRUGTREE_RETURN_IF_ERROR(BindExpr(arg.get(), child_->schema()));
    }
  }
  // Accumulate.
  std::unordered_map<uint64_t, std::vector<size_t>> key_to_groups;
  groups_.clear();
  Row in;
  int64_t pending = 0;
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    Row key;
    for (const auto& g : group_by_) {
      DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, in, ctx_));
      key.push_back(std::move(v));
    }
    uint64_t h = HashKey(key);
    size_t group_idx = SIZE_MAX;
    auto it = key_to_groups.find(h);
    if (it != key_to_groups.end()) {
      for (size_t gi : it->second) {
        if (groups_[gi].first == key) {
          group_idx = gi;
          break;
        }
      }
    }
    if (group_idx == SIZE_MAX) {
      group_idx = groups_.size();
      // Memory grows with group cardinality, not input rows: charge per
      // new group (key bytes + aggregate states + index-entry overhead).
      pending += ApproxRowBytes(key) +
                 static_cast<int64_t>(aggregates_.size() * sizeof(AggState)) +
                 48;
      if (pending >= kChargeChunkBytes) {
        DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
        pending = 0;
      }
      groups_.emplace_back(key,
                           std::vector<AggState>(aggregates_.size()));
      key_to_groups[h].push_back(group_idx);
    }
    auto& states = groups_[group_idx].second;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      AggState& st = states[a];
      ++st.count;
      const Expr& agg = *aggregates_[a].expr;
      if (agg.children.empty()) continue;  // COUNT(*)
      DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg.children[0], in, ctx_));
      if (v.is_null()) continue;
      ++st.non_null;
      if (v.type() == ValueType::kInt64) {
        st.sum += static_cast<double>(v.AsInt64());
      } else if (v.type() == ValueType::kDouble) {
        st.sum += v.AsDouble();
        st.sum_is_int = false;
      }
      if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
      if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
    }
  }
  DRUGTREE_RETURN_IF_ERROR(ChargeOperatorMemory(pending));
  // A global aggregate (no GROUP BY) over zero rows still emits one group.
  if (groups_.empty() && group_by_.empty()) {
    groups_.emplace_back(Row{}, std::vector<AggState>(aggregates_.size()));
  }
  cursor_ = 0;
  return util::Status::OK();
}

util::Result<bool> HashAggregateOp::NextImpl(Row* out) {
  if (cursor_ >= groups_.size()) return false;
  auto& [key, states] = groups_[cursor_++];
  // Each group is emitted exactly once; move the key row out.
  *out = std::move(key);
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const Expr& agg = *aggregates_[a].expr;
    const AggState& st = states[a];
    if (agg.function == "COUNT") {
      out->push_back(Value::Int64(agg.children.empty() ? st.count
                                                       : st.non_null));
    } else if (agg.function == "SUM") {
      if (st.non_null == 0) {
        out->push_back(Value::Null());
      } else if (st.sum_is_int) {
        out->push_back(Value::Int64(static_cast<int64_t>(st.sum)));
      } else {
        out->push_back(Value::Double(st.sum));
      }
    } else if (agg.function == "AVG") {
      out->push_back(st.non_null == 0
                         ? Value::Null()
                         : Value::Double(st.sum /
                                         static_cast<double>(st.non_null)));
    } else if (agg.function == "MIN") {
      out->push_back(st.min);
    } else if (agg.function == "MAX") {
      out->push_back(st.max);
    } else {
      return util::Status::Unimplemented("aggregate " + agg.function);
    }
  }
  return true;
}

std::string HashAggregateOp::Describe() const {
  std::string out = "HashAggregate";
  if (!group_by_.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (i) out += ", ";
      out += group_by_[i]->ToString();
    }
  }
  return out;
}

// --------------------------------------------------------------- DistinctOp

DistinctOp::DistinctOp(PhysicalPtr child) : child_(std::move(child)) {
  explain_children_ = {child_.get()};
}

util::Status DistinctOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(child_->Open());
  schema_ = child_->schema();
  seen_.clear();
  return util::Status::OK();
}

util::Result<bool> DistinctOp::NextImpl(Row* out) {
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    std::string key;
    storage::EncodeRow(*out, &key);
    if (seen_.insert(std::move(key)).second) return true;
  }
}

std::string DistinctOp::Describe() const { return "Distinct"; }

// ------------------------------------------------------------------ LimitOp

LimitOp::LimitOp(PhysicalPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {
  explain_children_ = {child_.get()};
}

util::Status LimitOp::OpenImpl() {
  DRUGTREE_RETURN_IF_ERROR(child_->Open());
  schema_ = child_->schema();
  produced_ = 0;
  return util::Status::OK();
}

util::Result<bool> LimitOp::NextImpl(Row* out) {
  if (produced_ >= limit_) return false;
  DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  return true;
}

util::Result<bool> LimitOp::NextBatchImpl(storage::RowBatch* out) {
  if (produced_ >= limit_) return false;
  DRUGTREE_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  const int64_t remaining = limit_ - produced_;
  if (static_cast<int64_t>(out->size()) > remaining) {
    // Truncate by selection; the overshoot rows were already computed by
    // the child, so dropping them keeps output identical to the row path.
    std::vector<uint32_t> sel;
    sel.reserve(static_cast<size_t>(remaining));
    for (int64_t i = 0; i < remaining; ++i) {
      sel.push_back(
          static_cast<uint32_t>(out->PhysicalIndex(static_cast<size_t>(i))));
    }
    out->SetSelection(std::move(sel));
  }
  produced_ += static_cast<int64_t>(out->size());
  return true;
}

std::string LimitOp::Describe() const {
  return util::StringPrintf("Limit %lld", (long long)limit_);
}

}  // namespace query
}  // namespace drugtree
