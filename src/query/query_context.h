// QueryContext: the per-request execution context that makes deadlines and
// cancellation real rather than advisory. The serving layer (src/server/)
// attaches one to every dispatched request; physical operators cooperatively
// check it at morsel boundaries and abort with StatusCode::kCancelled.
//
// The context is plain data borrowed for the duration of one execution: the
// clock and cancel flag outlive the query (the server owns both). A
// default-constructed context never cancels, so unserved callers (tests,
// examples, direct Planner::Run) pay nothing.

#ifndef DRUGTREE_QUERY_QUERY_CONTEXT_H_
#define DRUGTREE_QUERY_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "util/clock.h"
#include "util/status.h"

namespace drugtree {
namespace obs {
class MemoryTracker;
}  // namespace obs
namespace query {

struct QueryContext {
  /// Clock the deadline is measured on (the server's clock). Null disables
  /// deadline enforcement.
  const util::Clock* clock = nullptr;
  /// Absolute deadline in clock micros; 0 = no deadline.
  int64_t deadline_micros = 0;
  /// Cooperative cancellation flag (set by ResponseHandle::Cancel or the
  /// dispatcher). Null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// When set, the planner enables per-operator analyze instrumentation even
  /// for plain (non-EXPLAIN) queries and publishes the rendered tree to the
  /// active obs::TraceContext, so slow-query forensics can show the plan of
  /// an offender after the fact. Adds two clock reads per operator per batch.
  bool collect_analyze = false;
  /// Per-query memory tracker (a transient node parented under the server
  /// hierarchy). Operators charge materialized state and batch buffers
  /// against it; a hard-limit breach aborts the query with
  /// kResourceExhausted at the offending allocation instead of OOMing.
  /// Null = no resource accounting (the default for unserved callers).
  obs::MemoryTracker* memory = nullptr;

  bool has_deadline() const { return clock != nullptr && deadline_micros > 0; }

  /// OK while the query may keep running; kCancelled once the flag is set
  /// or the deadline has passed. Cheap enough for per-morsel checks: one
  /// relaxed load plus (with a deadline) one clock read.
  util::Status Check() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return util::Status::Cancelled("query cancelled");
    }
    if (has_deadline() && clock->NowMicros() > deadline_micros) {
      return util::Status::Cancelled("deadline exceeded");
    }
    return util::Status::OK();
  }
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_QUERY_CONTEXT_H_
