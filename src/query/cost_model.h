// Cardinality and cost estimation over table statistics — the "standard"
// half of the poster's optimization story. Cost and selectivity constants
// live in one named-coefficient object (obs::CalibratedCosts) instead of
// being scattered as literals; the serving layer's obs::CostCalibrator
// re-estimates them from EXPLAIN ANALYZE capture, and the defaults
// reproduce the historical constants bit-for-bit.

#ifndef DRUGTREE_QUERY_COST_MODEL_H_
#define DRUGTREE_QUERY_COST_MODEL_H_

#include <map>
#include <string>

#include "obs/cost_calibrator.h"
#include "query/catalog.h"
#include "query/expr.h"
#include "util/result.h"

namespace drugtree {
namespace query {

/// Estimates selectivities and cardinalities. Alias-aware: expressions use
/// qualified names ("p.family"), and the estimator is constructed with the
/// alias -> table mapping of the current query. An optional coefficient
/// snapshot overrides the default cost constants (null = defaults, which
/// match the pre-calibration engine exactly).
class CostModel {
 public:
  CostModel(const Catalog* catalog,
            std::map<std::string, std::string> alias_to_table,
            const obs::CalibratedCosts* costs = nullptr)
      : catalog_(catalog), alias_to_table_(std::move(alias_to_table)) {
    if (costs != nullptr) costs_ = *costs;
  }

  /// The coefficient snapshot this model prices with.
  const obs::CalibratedCosts& costs() const { return costs_; }

  /// Base row count of the table behind `alias`.
  double TableRows(const std::string& alias) const;

  /// Selectivity in [0,1] of one conjunct. Handles col-vs-literal
  /// comparisons via column statistics; unknown shapes get the coefficient
  /// defaults (range/eq priors, interval-index SUBTREE/ANCESTOR_OF priors).
  double ConjunctSelectivity(const Expr& conjunct) const;

  /// Estimated output of scanning `alias` under a conjunction (may be null).
  double EstimateScanRows(const std::string& alias, const ExprPtr& pred) const;

  /// Estimated cost of scanning `alias`: per-row scan cost times base rows,
  /// with the encoded discount when a fresh compressed snapshot exists.
  double ScanCost(const std::string& alias) const;

  /// Equi-join selectivity for `left_col = right_col`: 1/max(ndv_l, ndv_r);
  /// falls back to 0.01 when statistics are missing.
  double JoinSelectivity(const std::string& left_col,
                         const std::string& right_col) const;

  /// Historical per-operator cost constants (arbitrary units ~ row touches).
  /// Kept as the documented defaults of the named coefficients.
  static constexpr double kSeqScanRowCost = 1.0;
  static constexpr double kIndexProbeCost = 4.0;   // traversal overhead
  static constexpr double kIndexRowCost = 1.5;     // fetch per matching row
  static constexpr double kHashBuildRowCost = 1.5;
  static constexpr double kHashProbeRowCost = 1.0;
  static constexpr double kNestedLoopRowCost = 0.6;

 private:
  /// Splits "alias.column"; returns the ColumnStats or null.
  const storage::ColumnStats* StatsFor(const std::string& qualified) const;

  const Catalog* catalog_;
  std::map<std::string, std::string> alias_to_table_;
  obs::CalibratedCosts costs_;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_COST_MODEL_H_
