// Cardinality and cost estimation over table statistics — the "standard"
// half of the poster's optimization story.

#ifndef DRUGTREE_QUERY_COST_MODEL_H_
#define DRUGTREE_QUERY_COST_MODEL_H_

#include <map>
#include <string>

#include "query/catalog.h"
#include "query/expr.h"
#include "util/result.h"

namespace drugtree {
namespace query {

/// Estimates selectivities and cardinalities. Alias-aware: expressions use
/// qualified names ("p.family"), and the estimator is constructed with the
/// alias -> table mapping of the current query.
class CostModel {
 public:
  CostModel(const Catalog* catalog,
            std::map<std::string, std::string> alias_to_table)
      : catalog_(catalog), alias_to_table_(std::move(alias_to_table)) {}

  /// Base row count of the table behind `alias`.
  double TableRows(const std::string& alias) const;

  /// Selectivity in [0,1] of one conjunct. Handles col-vs-literal
  /// comparisons via column statistics; unknown shapes get the classic
  /// default guesses (0.33 for range, 0.1 for equality, 0.5 otherwise).
  double ConjunctSelectivity(const Expr& conjunct) const;

  /// Estimated output of scanning `alias` under a conjunction (may be null).
  double EstimateScanRows(const std::string& alias, const ExprPtr& pred) const;

  /// Equi-join selectivity for `left_col = right_col`: 1/max(ndv_l, ndv_r);
  /// falls back to 0.01 when statistics are missing.
  double JoinSelectivity(const std::string& left_col,
                         const std::string& right_col) const;

  /// Per-operator cost constants (arbitrary units ~ row touches).
  static constexpr double kSeqScanRowCost = 1.0;
  static constexpr double kIndexProbeCost = 4.0;   // traversal overhead
  static constexpr double kIndexRowCost = 1.5;     // fetch per matching row
  static constexpr double kHashBuildRowCost = 1.5;
  static constexpr double kHashProbeRowCost = 1.0;
  static constexpr double kNestedLoopRowCost = 0.6;

 private:
  /// Splits "alias.column"; returns the ColumnStats or null.
  const storage::ColumnStats* StatsFor(const std::string& qualified) const;

  const Catalog* catalog_;
  std::map<std::string, std::string> alias_to_table_;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_COST_MODEL_H_
