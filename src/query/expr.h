// Expression trees: the scalar language shared by the parser, the logical
// plan, the optimizer rules, and the physical operators.
//
// Evaluation uses SQL three-valued logic for comparisons and AND/OR/NOT
// (NULL-in propagates as documented per operator). Tree predicates
// (SUBTREE, ANCESTOR_OF) and tree scalars (TREE_DEPTH) evaluate against the
// phylogeny supplied in EvalContext; the optimizer rewrites the predicates
// into interval comparisons whenever the catalog metadata allows, so the
// executor only falls back to per-row tree walks in the unoptimized plans.

#ifndef DRUGTREE_QUERY_EXPR_H_
#define DRUGTREE_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/result.h"

namespace drugtree {
namespace query {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFunction,
};

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv,
};

enum class UnaryOp { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// One expression node. A small tagged struct (rather than a class
/// hierarchy) keeps cloning and pattern matching in the rewriter simple.
struct Expr {
  ExprKind kind;

  // kLiteral
  storage::Value literal;
  /// Positional parameter ordinal assigned by NormalizeStatement (-1 =
  /// untagged). Clone preserves it; literals synthesized by the optimizer
  /// (constant folding, tree-predicate rewriting) are untagged, which is how
  /// the plan cache detects that a literal was consumed at plan time and the
  /// template cannot be re-bound to new parameter values.
  int param_index = -1;

  // kColumnRef: "alias.column" or bare "column" as written; `bound_index`
  // is filled by binding against an execution schema (-1 = unbound).
  std::string column;
  int bound_index = -1;

  // kBinary / kUnary
  BinaryOp bin_op = BinaryOp::kEq;
  UnaryOp un_op = UnaryOp::kNot;

  // kFunction: upper-cased name + args. Aggregates (COUNT/SUM/...) also use
  // this node kind but are handled by the aggregation operator, never by
  // scalar evaluation. COUNT(*) is represented with zero args.
  std::string function;

  std::vector<ExprPtr> children;

  static ExprPtr Literal(storage::Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args);

  /// Deep copy.
  ExprPtr Clone() const;

  /// Display form, parenthesized.
  std::string ToString() const;

  /// True iff this is an aggregate function call (COUNT/SUM/AVG/MIN/MAX) at
  /// the top level.
  bool IsAggregate() const;

  /// True iff any node in the tree is an aggregate call.
  bool ContainsAggregate() const;

  /// Collects the distinct column names referenced anywhere below.
  void CollectColumns(std::vector<std::string>* out) const;
};

/// Phylogeny context available during evaluation (may be absent for purely
/// relational queries).
struct EvalContext {
  const phylo::Tree* tree = nullptr;
  const phylo::TreeIndex* tree_index = nullptr;
};

/// Resolves a column name against a schema of qualified names
/// ("alias.column"). A bare name matches any qualified name with that suffix
/// if the match is unique; exact matches win. Errors on ambiguity or miss.
util::Result<size_t> ResolveColumn(const storage::Schema& schema,
                                   const std::string& name);

/// Binds all column refs in `expr` to indexes of `schema` (in place).
util::Status BindExpr(Expr* expr, const storage::Schema& schema);

/// Evaluates a bound expression against a row. Comparisons involving NULL
/// yield NULL; AND/OR use Kleene logic; arithmetic with NULL yields NULL.
util::Result<storage::Value> EvalExpr(const Expr& expr, const storage::Row& row,
                                      const EvalContext& ctx);

/// Evaluates a predicate: NULL counts as false.
util::Result<bool> EvalPredicate(const Expr& expr, const storage::Row& row,
                                 const EvalContext& ctx);

/// Vectorized evaluation: computes `expr` over every *selected* row of
/// `batch`, appending exactly batch.size() values to `out` (cleared first)
/// in logical row order. Result-equivalent to calling EvalExpr on RowAt(i)
/// for each i — same values, same SQL three-valued logic, same errors —
/// but column-wise: typed columns take branch-light fast paths (numeric and
/// string comparisons, arithmetic, Kleene AND/OR), everything else falls
/// back to a per-row loop over the already-evaluated child columns. The
/// only observable difference from the row engine is error *timing*: a
/// failing row (e.g. division by zero) surfaces when its batch is
/// evaluated, which may be before earlier rows were consumed downstream.
util::Status EvalExprBatch(const Expr& expr, const storage::RowBatch& batch,
                           const EvalContext& ctx,
                           storage::ColumnVector* out);

/// Vectorized predicate: evaluates `expr` over the selected rows of `batch`
/// and fills `sel_out` (cleared first) with the *physical* indices of rows
/// where it is true (NULL counts as false), in ascending order — i.e. a
/// refinement of the batch's current selection, ready for
/// RowBatch::SetSelection.
util::Status EvalPredicateBatch(const Expr& expr,
                                const storage::RowBatch& batch,
                                const EvalContext& ctx,
                                std::vector<uint32_t>* sel_out);

/// Splits a predicate into its top-level AND conjuncts (clones).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Rebuilds a conjunction from conjuncts (nullptr for the empty list).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_EXPR_H_
