#include "query/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace drugtree {
namespace query {

bool IsKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE", "AND",   "OR",    "NOT",     "JOIN",
      "ON",     "GROUP", "BY",    "ORDER", "ASC",   "DESC",    "LIMIT",
      "AS",     "TRUE",  "FALSE", "NULL",  "INNER", "IS",      "DISTINCT",
      "BETWEEN", "EXPLAIN", "ANALYZE",
  };
  return kKeywords.count(upper_word) > 0;
}

util::Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto error = [&](const std::string& msg) {
    return util::Status::ParseError(
        util::StringPrintf("query position %zu: %s", i, msg.c_str()));
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      std::string word = text.substr(start, i - start);
      // Qualified identifier "a.b".
      if (i < n && text[i] == '.' && i + 1 < n &&
          (std::isalpha(static_cast<unsigned char>(text[i + 1])) ||
           text[i + 1] == '_')) {
        ++i;
        size_t qstart = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                         text[i] == '_')) {
          ++i;
        }
        tok.kind = TokenKind::kIdentifier;
        tok.text = word + "." + text.substr(qstart, i - qstart);
        tokens.push_back(std::move(tok));
        continue;
      }
      std::string upper = util::ToUpper(word);
      if (IsKeyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        } else {
          i = save;
        }
      }
      std::string num = text.substr(start, i - start);
      if (is_float) {
        DRUGTREE_ASSIGN_OR_RETURN(double v, util::ParseDouble(num));
        tok.kind = TokenKind::kFloat;
        tok.float_value = v;
      } else {
        DRUGTREE_ASSIGN_OR_RETURN(int64_t v, util::ParseInt64(num));
        tok.kind = TokenKind::kInteger;
        tok.int_value = v;
      }
      tok.text = std::move(num);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            s += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s += text[i++];
      }
      if (!closed) return error("unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators.
    auto two = i + 1 < n ? text.substr(i, 2) : std::string();
    if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
      tok.kind = TokenKind::kOperator;
      tok.text = two == "!=" ? "<>" : two;
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::string("=<>+-*/(),.;").find(c) != std::string::npos) {
      tok.kind = TokenKind::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return error(util::StringPrintf("unexpected character '%c'", c));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace query
}  // namespace drugtree
