// Planner: the query engine's front door. Parses, optimizes, physically
// plans, and executes statements, with every optimization independently
// toggleable (the E1/E2 ablation axes) and an optional semantic result
// cache in front of the whole pipeline.

#ifndef DRUGTREE_QUERY_PLANNER_H_
#define DRUGTREE_QUERY_PLANNER_H_

#include <memory>
#include <string>

#include "obs/cost_calibrator.h"
#include "query/catalog.h"
#include "query/executor.h"
#include "query/logical_plan.h"
#include "query/plan_cache.h"
#include "query/query_context.h"
#include "query/result_cache.h"
#include "query/rules.h"
#include "util/result.h"

namespace drugtree {
namespace query {

struct PlannerOptions {
  OptimizerOptions optimizer;
  /// Pick index access paths for pushed-down scan predicates.
  bool enable_index_selection = true;
  /// Prefer hash joins for equi-conditions (nested loops otherwise).
  bool enable_hash_join = true;
  /// Serve/install results in the semantic result cache.
  bool use_result_cache = false;
  /// Morsel-parallel worker count for CPU-heavy operators (seq-scan
  /// filtering, hash-join build). 1 = serial execution; results are
  /// identical at any setting.
  int parallelism = 1;
  /// Rows per execution batch. > 1 runs plans through the vectorized
  /// columnar pipeline (scan/filter/project/limit/hash-join probe); 1
  /// drives the legacy row-at-a-time volcano path. Results are bit-identical
  /// at any setting; this is the E2 vectorization ablation axis.
  size_t batch_size = 1024;

  /// Everything off: the E1/E2 "naive DrugTree" baseline.
  static PlannerOptions Naive() {
    PlannerOptions o;
    o.optimizer = OptimizerOptions::AllOff();
    o.enable_index_selection = false;
    o.enable_hash_join = false;
    o.use_result_cache = false;
    return o;
  }
  /// Everything on (result cache still opt-in).
  static PlannerOptions Optimized() { return PlannerOptions(); }
};

/// The outcome of running one statement, including plan introspection.
struct QueryOutcome {
  QueryResult result;
  std::string logical_plan;   // optimized logical plan (EXPLAIN text)
  std::string physical_plan;  // physical plan (EXPLAIN text)
  /// For EXPLAIN ANALYZE: the executed plan annotated with per-operator
  /// rows_out / Next() calls / cumulative time. Empty otherwise.
  std::string analyzed_plan;
  ExecStats stats;
  bool from_result_cache = false;
  /// True when the logical plan came from the plan cache (reused verbatim
  /// or re-bound to this statement's literals) instead of the optimizer.
  bool from_plan_cache = false;
};

class Planner {
 public:
  /// `catalog` is borrowed; the caches and the calibrator may be null (and
  /// are shared across planners when the serving layer passes the same
  /// instances to every slot). With a `plan_cache`, optimized logical plans
  /// are cached as parameterized templates keyed by the statement's
  /// structural fingerprint; with a `calibrator`, optimization prices plans
  /// with its latest calibrated coefficients and every analyzed execution
  /// feeds observations back.
  explicit Planner(Catalog* catalog, ResultCache* result_cache = nullptr,
                   PlanCache* plan_cache = nullptr,
                   obs::CostCalibrator* calibrator = nullptr)
      : catalog_(catalog),
        result_cache_(result_cache),
        plan_cache_(plan_cache),
        calibrator_(calibrator) {}

  /// Parses + optimizes + plans + executes one statement. A leading
  /// EXPLAIN prefix skips execution and returns only the plan text; a
  /// leading EXPLAIN ANALYZE executes with per-operator instrumentation
  /// and fills QueryOutcome::analyzed_plan (both bypass the result cache).
  /// A non-null `context` makes the run cancellable: kCancelled once its
  /// deadline passes or its flag is set (checked before planning and at
  /// every operator checkpoint during execution).
  util::Result<QueryOutcome> Run(const std::string& sql,
                                 const PlannerOptions& options,
                                 const QueryContext* context = nullptr);

  /// Builds the physical plan without executing (EXPLAIN).
  util::Result<PhysicalPtr> Plan(const std::string& sql,
                                 const PlannerOptions& options,
                                 ExecStats* stats);

 private:
  util::Result<PhysicalPtr> ToPhysical(const LogicalPtr& node,
                                       const PlannerOptions& options,
                                       ExecStats* stats);

  /// The parallel context for one planning pass; lazily creates (and, on a
  /// parallelism change, resizes) the planner-owned worker pool.
  ParallelContext MakeParallelContext(const PlannerOptions& options);

  Catalog* catalog_;
  ResultCache* result_cache_;
  PlanCache* plan_cache_;
  obs::CostCalibrator* calibrator_;
  std::unique_ptr<util::ThreadPool> pool_;
  int pool_workers_ = 0;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_PLANNER_H_
