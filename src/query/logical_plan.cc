#include "query/logical_plan.h"

#include <set>

#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Column;
using storage::Schema;
using storage::ValueType;

LogicalPtr LogicalNode::Scan(std::string table, std::string alias) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kScan;
  n->table = std::move(table);
  n->alias = std::move(alias);
  return n;
}

LogicalPtr LogicalNode::Filter(LogicalPtr child, ExprPtr predicate) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kFilter;
  n->children = {std::move(child)};
  n->predicate = std::move(predicate);
  return n;
}

LogicalPtr LogicalNode::Project(LogicalPtr child,
                                std::vector<OutputColumn> outputs) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kProject;
  n->children = {std::move(child)};
  n->outputs = std::move(outputs);
  return n;
}

LogicalPtr LogicalNode::Join(LogicalPtr left, LogicalPtr right,
                             ExprPtr condition) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kJoin;
  n->children = {std::move(left), std::move(right)};
  n->join_condition = std::move(condition);
  return n;
}

LogicalPtr LogicalNode::Aggregate(LogicalPtr child,
                                  std::vector<ExprPtr> group_by,
                                  std::vector<OutputColumn> aggregates) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kAggregate;
  n->children = {std::move(child)};
  n->group_by = std::move(group_by);
  n->outputs = std::move(aggregates);
  return n;
}

LogicalPtr LogicalNode::Sort(LogicalPtr child, std::vector<OrderKey> keys) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kSort;
  n->children = {std::move(child)};
  n->order_by = std::move(keys);
  return n;
}

LogicalPtr LogicalNode::Limit(LogicalPtr child, int64_t limit) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kLimit;
  n->children = {std::move(child)};
  n->limit = limit;
  return n;
}

LogicalPtr LogicalNode::Distinct(LogicalPtr child) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalKind::kDistinct;
  n->children = {std::move(child)};
  return n;
}

std::string LogicalNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case LogicalKind::kScan:
      out += "Scan " + table;
      if (alias != table) out += " AS " + alias;
      if (scan_predicate) out += " [pred: " + scan_predicate->ToString() + "]";
      break;
    case LogicalKind::kFilter:
      out += "Filter " + (predicate ? predicate->ToString() : "true");
      break;
    case LogicalKind::kProject: {
      out += "Project ";
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (i) out += ", ";
        out += outputs[i].expr->ToString() + " AS " + outputs[i].name;
      }
      break;
    }
    case LogicalKind::kJoin:
      out += "Join";
      if (join_condition) out += " ON " + join_condition->ToString();
      else out += " (cross)";
      break;
    case LogicalKind::kAggregate: {
      out += "Aggregate";
      if (!group_by.empty()) {
        out += " GROUP BY ";
        for (size_t i = 0; i < group_by.size(); ++i) {
          if (i) out += ", ";
          out += group_by[i]->ToString();
        }
      }
      out += " [";
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (i) out += ", ";
        out += outputs[i].expr->ToString();
      }
      out += "]";
      break;
    }
    case LogicalKind::kSort: {
      out += "Sort ";
      for (size_t i = 0; i < order_by.size(); ++i) {
        if (i) out += ", ";
        out += order_by[i].expr->ToString();
        if (!order_by[i].ascending) out += " DESC";
      }
      break;
    }
    case LogicalKind::kLimit:
      out += util::StringPrintf("Limit %lld", (long long)limit);
      break;
    case LogicalKind::kDistinct:
      out += "Distinct";
      break;
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

namespace {

// Infers a (loose) output type for an expression against a child schema; the
// engine is dynamically typed at execution, so this only labels schemas.
ValueType InferType(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.is_null() ? ValueType::kString : expr.literal.type();
    case ExprKind::kColumnRef: {
      auto idx = ResolveColumn(schema, expr.column);
      return idx.ok() ? schema.column(*idx).type : ValueType::kString;
    }
    case ExprKind::kBinary:
      switch (expr.bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return ValueType::kDouble;
        default:
          return ValueType::kBool;
      }
    case ExprKind::kUnary:
      return expr.un_op == UnaryOp::kNot ? ValueType::kBool
                                         : ValueType::kDouble;
    case ExprKind::kFunction:
      if (expr.function == "COUNT") return ValueType::kInt64;
      if (expr.function == "SUBTREE" || expr.function == "ANCESTOR_OF" ||
          expr.function == "IS_NULL") {
        return ValueType::kBool;
      }
      if (expr.function == "TREE_DEPTH") return ValueType::kInt64;
      if (!expr.children.empty()) return InferType(*expr.children[0], schema);
      return ValueType::kDouble;
  }
  return ValueType::kString;
}

}  // namespace

util::Status ComputeSchema(LogicalNode* node, const Catalog& catalog) {
  for (auto& c : node->children) {
    DRUGTREE_RETURN_IF_ERROR(ComputeSchema(c.get(), catalog));
  }
  switch (node->kind) {
    case LogicalKind::kScan: {
      DRUGTREE_ASSIGN_OR_RETURN(storage::Table * t,
                                catalog.Lookup(node->table));
      std::vector<Column> cols;
      for (const auto& c : t->schema().columns()) {
        cols.push_back({node->alias + "." + c.name, c.type, c.nullable});
      }
      DRUGTREE_ASSIGN_OR_RETURN(node->schema, Schema::Create(std::move(cols)));
      break;
    }
    case LogicalKind::kFilter:
    case LogicalKind::kSort:
    case LogicalKind::kLimit:
    case LogicalKind::kDistinct:
      node->schema = node->children[0]->schema;
      break;
    case LogicalKind::kJoin: {
      std::vector<Column> cols;
      for (const auto& c : node->children[0]->schema.columns()) cols.push_back(c);
      for (const auto& c : node->children[1]->schema.columns()) cols.push_back(c);
      DRUGTREE_ASSIGN_OR_RETURN(node->schema, Schema::Create(std::move(cols)));
      break;
    }
    case LogicalKind::kProject:
    case LogicalKind::kAggregate: {
      std::vector<Column> cols;
      const Schema& in = node->children[0]->schema;
      if (node->kind == LogicalKind::kAggregate) {
        for (const auto& g : node->group_by) {
          cols.push_back({g->ToString(), InferType(*g, in), true});
        }
      }
      for (const auto& o : node->outputs) {
        cols.push_back({o.name, InferType(*o.expr, in), true});
      }
      DRUGTREE_ASSIGN_OR_RETURN(node->schema, Schema::Create(std::move(cols)));
      break;
    }
  }
  return util::Status::OK();
}

util::Result<LogicalPtr> BuildLogicalPlan(const SelectStatement& stmt,
                                          const Catalog& catalog) {
  if (stmt.tables.empty()) {
    return util::Status::InvalidArgument("query has no tables");
  }
  // Unique aliases.
  std::set<std::string> aliases;
  for (const auto& t : stmt.tables) {
    if (!aliases.insert(t.alias).second) {
      return util::Status::InvalidArgument("duplicate table alias: " + t.alias);
    }
    DRUGTREE_RETURN_IF_ERROR(catalog.Lookup(t.table).status());
  }

  LogicalPtr plan = LogicalNode::Scan(stmt.tables[0].table,
                                      stmt.tables[0].alias);
  for (size_t i = 1; i < stmt.tables.size(); ++i) {
    plan = LogicalNode::Join(
        plan, LogicalNode::Scan(stmt.tables[i].table, stmt.tables[i].alias),
        nullptr);
  }
  if (stmt.where) {
    plan = LogicalNode::Filter(plan, stmt.where->Clone());
  }

  // Figure out aggregation.
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.select) {
    if (!item.star && item.expr->ContainsAggregate()) has_agg = true;
  }
  if (has_agg) {
    std::vector<ExprPtr> groups;
    for (const auto& g : stmt.group_by) groups.push_back(g->Clone());
    std::vector<OutputColumn> aggs;
    for (const auto& item : stmt.select) {
      if (item.star) {
        return util::Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
      if (item.expr->ContainsAggregate()) {
        if (!item.expr->IsAggregate()) {
          return util::Status::Unimplemented(
              "aggregates must be top-level select expressions");
        }
        aggs.push_back({item.expr->Clone(), item.alias});
      } else {
        // Must be (syntactically) one of the group keys.
        bool matches = false;
        for (const auto& g : stmt.group_by) {
          if (g->ToString() == item.expr->ToString()) {
            matches = true;
            break;
          }
        }
        if (!matches) {
          return util::Status::InvalidArgument(
              "non-aggregate select item not in GROUP BY: " +
              item.expr->ToString());
        }
      }
    }
    plan = LogicalNode::Aggregate(plan, std::move(groups), std::move(aggs));
    // Project to rename group keys + aggregates to the requested aliases in
    // the requested order.
    DRUGTREE_RETURN_IF_ERROR(ComputeSchema(plan.get(), catalog));
    std::vector<OutputColumn> projections;
    for (const auto& item : stmt.select) {
      if (item.expr->IsAggregate()) {
        projections.push_back({Expr::Column(item.alias), item.alias});
      } else {
        projections.push_back({Expr::Column(item.expr->ToString()), item.alias});
      }
    }
    plan = LogicalNode::Project(plan, std::move(projections));
  } else {
    // Plain projection; expand stars.
    DRUGTREE_RETURN_IF_ERROR(ComputeSchema(plan.get(), catalog));
    std::vector<OutputColumn> projections;
    for (const auto& item : stmt.select) {
      if (item.star) {
        for (const auto& c : plan->schema.columns()) {
          projections.push_back({Expr::Column(c.name), c.name});
        }
      } else {
        projections.push_back({item.expr->Clone(), item.alias});
      }
    }
    plan = LogicalNode::Project(plan, std::move(projections));
  }

  if (stmt.distinct) {
    plan = LogicalNode::Distinct(plan);
  }
  if (!stmt.order_by.empty()) {
    std::vector<OrderKey> keys;
    for (const auto& k : stmt.order_by) {
      keys.push_back({k.expr->Clone(), k.ascending});
    }
    plan = LogicalNode::Sort(plan, std::move(keys));
  }
  if (stmt.limit) {
    plan = LogicalNode::Limit(plan, *stmt.limit);
  }
  DRUGTREE_RETURN_IF_ERROR(ComputeSchema(plan.get(), catalog));
  return plan;
}

LogicalPtr CloneLogicalPlan(const LogicalPtr& plan) {
  if (!plan) return nullptr;
  auto out = std::make_shared<LogicalNode>(*plan);
  if (out->scan_predicate) out->scan_predicate = out->scan_predicate->Clone();
  if (out->predicate) out->predicate = out->predicate->Clone();
  if (out->join_condition) out->join_condition = out->join_condition->Clone();
  for (auto& o : out->outputs) o.expr = o.expr->Clone();
  for (auto& g : out->group_by) g = g->Clone();
  for (auto& k : out->order_by) k.expr = k.expr->Clone();
  for (auto& c : out->children) c = CloneLogicalPlan(c);
  return out;
}

}  // namespace query
}  // namespace drugtree
