#include "query/normalize.h"

#include <utility>

#include "util/string_util.h"

namespace drugtree {
namespace query {

namespace {

/// Assigns ordinals to every literal below `expr` (in place, preorder) and
/// collects the values.
void TagLiterals(Expr* expr, std::vector<storage::Value>* params) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kLiteral) {
    expr->param_index = static_cast<int>(params->size());
    params->push_back(expr->literal);
    return;
  }
  for (auto& c : expr->children) TagLiterals(c.get(), params);
}

/// Appends the Expr::ToString() rendering of `expr` to `out`, except that
/// tagged literals render as their positional placeholder ("?N", so the
/// fingerprint reads "p.pre < ?0"). Renders in one pass into one buffer —
/// this runs on every plan-cache hit, so it must not clone the tree the way
/// a placeholder-substituted copy would.
void AppendFingerprint(const Expr* expr, std::string* out) {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      if (expr->param_index >= 0) {
        *out += "?" + std::to_string(expr->param_index);
      } else if (expr->literal.type() == storage::ValueType::kString) {
        *out += "'" + expr->literal.ToString() + "'";
      } else {
        *out += expr->literal.ToString();
      }
      return;
    case ExprKind::kColumnRef:
      *out += expr->column;
      return;
    case ExprKind::kBinary:
      *out += "(";
      AppendFingerprint(expr->children[0].get(), out);
      *out += " ";
      *out += BinaryOpName(expr->bin_op);
      *out += " ";
      AppendFingerprint(expr->children[1].get(), out);
      *out += ")";
      return;
    case ExprKind::kUnary:
      *out += expr->un_op == UnaryOp::kNot ? "(NOT " : "(-";
      AppendFingerprint(expr->children[0].get(), out);
      *out += ")";
      return;
    case ExprKind::kFunction:
      *out += expr->function + "(";
      if (expr->function == "COUNT" && expr->children.empty()) *out += "*";
      for (size_t i = 0; i < expr->children.size(); ++i) {
        if (i) *out += ", ";
        AppendFingerprint(expr->children[i].get(), out);
      }
      *out += ")";
      return;
  }
  *out += "?";
}

/// SelectStatement::ToString() with placeholder literals — the mirror must
/// stay exact so a fingerprint of a statement with no literals equals its
/// canonical text.
std::string RenderFingerprint(const SelectStatement& stmt) {
  std::string out = stmt.distinct ? "SELECT DISTINCT " : "SELECT ";
  for (size_t i = 0; i < stmt.select.size(); ++i) {
    if (i) out += ", ";
    if (stmt.select[i].star) {
      out += "*";
    } else {
      AppendFingerprint(stmt.select[i].expr.get(), &out);
      if (!stmt.select[i].alias.empty()) out += " AS " + stmt.select[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    if (i) out += ", ";
    out += stmt.tables[i].table;
    if (stmt.tables[i].alias != stmt.tables[i].table) {
      out += " " + stmt.tables[i].alias;
    }
  }
  if (stmt.where) {
    out += " WHERE ";
    AppendFingerprint(stmt.where.get(), &out);
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i) out += ", ";
      AppendFingerprint(stmt.group_by[i].get(), &out);
    }
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i) out += ", ";
      AppendFingerprint(stmt.order_by[i].expr.get(), &out);
      if (!stmt.order_by[i].ascending) out += " DESC";
    }
  }
  if (stmt.limit) {
    out += util::StringPrintf(" LIMIT %lld", (long long)*stmt.limit);
  }
  return out;
}

}  // namespace

NormalizedStatement NormalizeStatement(SelectStatement* stmt,
                                       bool want_canonical) {
  NormalizedStatement out;
  // Tag in ToString order so placeholder numbering is reproducible from the
  // canonical text alone.
  for (auto& item : stmt->select) {
    if (!item.star) TagLiterals(item.expr.get(), &out.params);
  }
  TagLiterals(stmt->where.get(), &out.params);
  for (auto& g : stmt->group_by) TagLiterals(g.get(), &out.params);
  for (auto& k : stmt->order_by) TagLiterals(k.expr.get(), &out.params);
  if (want_canonical) out.canonical = stmt->ToString();
  out.fingerprint = RenderFingerprint(*stmt);
  return out;
}

}  // namespace query
}  // namespace drugtree
