#include "query/catalog.h"

namespace drugtree {
namespace query {

util::Status Catalog::Register(storage::Table* table) {
  if (table == nullptr) {
    return util::Status::InvalidArgument("cannot register null table");
  }
  auto [it, inserted] = tables_.emplace(table->name(), table);
  (void)it;
  if (!inserted) {
    return util::Status::AlreadyExists("table already registered: " +
                                       table->name());
  }
  return util::Status::OK();
}

util::Result<storage::Table*> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return util::Status::NotFound("no such table: " + name);
  }
  return it->second;
}

util::Status Catalog::BindTree(const std::string& table, TreeBinding binding) {
  DRUGTREE_ASSIGN_OR_RETURN(storage::Table * t, Lookup(table));
  if (!t->schema().Has(binding.node_col) || !t->schema().Has(binding.pre_col)) {
    return util::Status::InvalidArgument(
        "tree binding references missing columns on " + table);
  }
  if (!binding.post_col.empty() && !t->schema().Has(binding.post_col)) {
    return util::Status::InvalidArgument(
        "tree binding post column missing on " + table);
  }
  tree_bindings_[table] = std::move(binding);
  return util::Status::OK();
}

const TreeBinding* Catalog::GetTreeBinding(const std::string& table) const {
  auto it = tree_bindings_.find(table);
  return it == tree_bindings_.end() ? nullptr : &it->second;
}

}  // namespace query
}  // namespace drugtree
