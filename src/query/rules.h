// The rule-based logical optimizer: constant folding, tree-predicate
// rewriting (SUBTREE/ANCESTOR_OF -> pre-order interval comparisons),
// predicate pushdown, and cost-based join reordering. Each rule can be
// toggled independently — experiment E2's ablation axis.

#ifndef DRUGTREE_QUERY_RULES_H_
#define DRUGTREE_QUERY_RULES_H_

#include <map>
#include <string>

#include "obs/cost_calibrator.h"
#include "query/catalog.h"
#include "query/expr.h"
#include "query/logical_plan.h"
#include "util/result.h"

namespace drugtree {
namespace query {

struct OptimizerOptions {
  bool enable_constant_folding = true;
  bool enable_tree_rewrite = true;
  bool enable_pushdown = true;
  bool enable_join_reorder = true;
  /// Borrowed calibrated cost coefficients for the CostModel / join
  /// ordering. Null = the built-in defaults (bit-identical to the
  /// pre-calibration planner). The planner stamps a fresh snapshot per run.
  const obs::CalibratedCosts* costs = nullptr;

  static OptimizerOptions AllOff() {
    return {false, false, false, false, nullptr};
  }
  static OptimizerOptions AllOn() { return {}; }
};

/// Folds literal-only subexpressions into literals. Never fails: on any
/// evaluation error the original subtree is kept.
ExprPtr FoldConstants(const ExprPtr& expr, const Catalog& catalog);

/// Rewrites SUBTREE(col, lit) / ANCESTOR_OF(col, lit) calls into pre-order
/// interval comparisons wherever the referenced table has a TreeBinding and
/// the node argument resolves. `alias_to_table` maps query aliases to
/// catalog table names. Unrewritable calls are kept (the executor can still
/// evaluate them per row).
util::Result<ExprPtr> RewriteTreePredicates(
    const ExprPtr& expr, const Catalog& catalog,
    const std::map<std::string, std::string>& alias_to_table);

/// Runs the full logical optimization pipeline and returns the rewritten
/// plan (schemas recomputed). The input plan is not modified.
util::Result<LogicalPtr> OptimizeLogicalPlan(const LogicalPtr& plan,
                                             const Catalog& catalog,
                                             const OptimizerOptions& options);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_RULES_H_
