#include "query/result_cache.h"

#include "util/string_util.h"

namespace drugtree {
namespace query {

std::string ResultCache::MakeKey(const std::string& canonical_query,
                                 uint64_t epoch) {
  return util::StringPrintf("e%llu:", (unsigned long long)epoch) +
         canonical_query;
}

}  // namespace query
}  // namespace drugtree
