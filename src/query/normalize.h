// Statement normalization: the one place literals are factored out of a
// parsed statement. Every cache key in the engine derives from it — the
// semantic result cache keys on the canonical text, the plan cache keys on
// the literal-free structural fingerprint, and parameter re-binding uses
// the extracted literal vector — so equivalent statements can never
// disagree between caches.

#ifndef DRUGTREE_QUERY_NORMALIZE_H_
#define DRUGTREE_QUERY_NORMALIZE_H_

#include <string>
#include <vector>

#include "query/parser.h"
#include "storage/value.h"

namespace drugtree {
namespace query {

/// The normalized view of one SELECT statement.
struct NormalizedStatement {
  /// Canonical rendering with literal values in place — the result-cache
  /// key text (identical to SelectStatement::ToString()). Empty when the
  /// caller asked to skip it.
  std::string canonical;
  /// Structural fingerprint: the same rendering with every literal replaced
  /// by its positional placeholder ("?0", "?1", ...). Statements differing
  /// only in literal values share a fingerprint — the plan-cache key.
  /// LIMIT is not an Expr and stays verbatim.
  std::string fingerprint;
  /// The literal values in placeholder order.
  std::vector<storage::Value> params;
};

/// Normalizes `stmt` in place: tags every literal expression node with its
/// positional parameter ordinal (Expr::param_index) in a fixed traversal
/// order (select items, WHERE, GROUP BY, ORDER BY — the ToString order),
/// and returns the canonical text, the fingerprint, and the extracted
/// parameter vector. Tags survive Clone(), so they flow from the statement
/// through logical planning into the optimized plan; optimizer-synthesized
/// literals stay untagged.
///
/// `want_canonical` = false skips the canonical rendering (it is only
/// needed for result-cache keys; the plan-cache hit path runs hot without
/// it).
NormalizedStatement NormalizeStatement(SelectStatement* stmt,
                                       bool want_canonical = true);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_NORMALIZE_H_
