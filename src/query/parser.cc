#include "query/parser.h"

#include "query/lexer.h"
#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Value;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<SelectStatement> Parse() {
    SelectStatement stmt;
    DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    stmt.distinct = ConsumeKeyword("DISTINCT");
    // Select list.
    for (;;) {
      DRUGTREE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.select.push_back(std::move(item));
      if (!ConsumeOperator(",")) break;
    }
    DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    // Table refs with joins.
    DRUGTREE_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt.tables.push_back(std::move(first));
    std::vector<ExprPtr> join_conditions;
    for (;;) {
      if (ConsumeOperator(",")) {
        DRUGTREE_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt.tables.push_back(std::move(t));
        continue;
      }
      if (PeekKeyword("INNER") || PeekKeyword("JOIN")) {
        ConsumeKeyword("INNER");
        DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        DRUGTREE_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt.tables.push_back(std::move(t));
        DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("ON"));
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        join_conditions.push_back(std::move(cond));
        continue;
      }
      break;
    }
    // WHERE.
    if (ConsumeKeyword("WHERE")) {
      DRUGTREE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    // Fold JOIN ... ON conditions into the WHERE conjunction.
    for (auto& cond : join_conditions) {
      stmt.where = stmt.where
                       ? Expr::Binary(BinaryOp::kAnd, stmt.where, cond)
                       : cond;
    }
    // GROUP BY.
    if (ConsumeKeyword("GROUP")) {
      DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!ConsumeOperator(",")) break;
      }
    }
    // ORDER BY.
    if (ConsumeKeyword("ORDER")) {
      DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        OrderKey key;
        DRUGTREE_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          key.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
        if (!ConsumeOperator(",")) break;
      }
    }
    // LIMIT.
    if (ConsumeKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.kind != TokenKind::kInteger) {
        return Error("LIMIT expects an integer");
      }
      if (t.int_value < 0) return Error("LIMIT must be non-negative");
      stmt.limit = t.int_value;
      ++pos_;
    }
    ConsumeOperator(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  util::Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (PeekOperator("*")) {
      ++pos_;
      item.star = true;
      return item;
    }
    DRUGTREE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKeyword("AS")) {
      const Token& t = Peek();
      if (t.kind != TokenKind::kIdentifier) {
        return Error("AS expects an identifier");
      }
      item.alias = t.text;
      ++pos_;
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !PeekKeyword("FROM")) {
      item.alias = Peek().text;
      ++pos_;
    } else {
      item.alias = item.expr->ToString();
    }
    return item;
  }

  util::Result<TableRef> ParseTableRef() {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdentifier) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.table = t.text;
    ref.alias = t.text;
    ++pos_;
    if (ConsumeKeyword("AS")) {
      const Token& a = Peek();
      if (a.kind != TokenKind::kIdentifier) {
        return Error("AS expects an identifier");
      }
      ref.alias = a.text;
      ++pos_;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ref.alias = Peek().text;
      ++pos_;
    }
    return ref;
  }

  // Expression precedence climbing.
  util::Result<ExprPtr> ParseExpr() { return ParseOr(); }

  util::Result<ExprPtr> ParseOr() {
    DRUGTREE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, left, right);
    }
    return left;
  }

  util::Result<ExprPtr> ParseAnd() {
    DRUGTREE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  util::Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      DRUGTREE_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Unary(UnaryOp::kNot, e);
    }
    return ParseComparison();
  }

  util::Result<ExprPtr> ParseComparison() {
    DRUGTREE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // BETWEEN lo AND hi desugars to (left >= lo AND left <= hi); the AND
    // here belongs to BETWEEN, not to the logical conjunction.
    if (ConsumeKeyword("BETWEEN")) {
      DRUGTREE_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DRUGTREE_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return Expr::Binary(
          BinaryOp::kAnd, Expr::Binary(BinaryOp::kGe, left->Clone(), lo),
          Expr::Binary(BinaryOp::kLe, left, hi));
    }
    // IS [NOT] NULL postfix.
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      DRUGTREE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      // IS NULL must be true for NULLs, which '=' cannot express under
      // three-valued logic, so it becomes a dedicated function.
      ExprPtr test = Expr::Function("IS_NULL", {left});
      return negated ? Expr::Unary(UnaryOp::kNot, test) : test;
    }
    static const struct {
      const char* text;
      BinaryOp op;
    } kOps[] = {{"=", BinaryOp::kEq}, {"<>", BinaryOp::kNe},
                {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& o : kOps) {
      if (PeekOperator(o.text)) {
        ++pos_;
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Expr::Binary(o.op, left, right);
      }
    }
    return left;
  }

  util::Result<ExprPtr> ParseAdditive() {
    DRUGTREE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      if (PeekOperator("+")) {
        ++pos_;
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Binary(BinaryOp::kAdd, left, right);
      } else if (PeekOperator("-")) {
        ++pos_;
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Binary(BinaryOp::kSub, left, right);
      } else {
        return left;
      }
    }
  }

  util::Result<ExprPtr> ParseMultiplicative() {
    DRUGTREE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      if (PeekOperator("*")) {
        ++pos_;
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = Expr::Binary(BinaryOp::kMul, left, right);
      } else if (PeekOperator("/")) {
        ++pos_;
        DRUGTREE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = Expr::Binary(BinaryOp::kDiv, left, right);
      } else {
        return left;
      }
    }
  }

  util::Result<ExprPtr> ParseUnary() {
    if (PeekOperator("-")) {
      ++pos_;
      DRUGTREE_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, e);
    }
    return ParsePrimary();
  }

  util::Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        ++pos_;
        return Expr::Literal(Value::Int64(t.int_value));
      case TokenKind::kFloat:
        ++pos_;
        return Expr::Literal(Value::Double(t.float_value));
      case TokenKind::kString:
        ++pos_;
        return Expr::Literal(Value::String(t.text));
      case TokenKind::kKeyword:
        if (t.text == "TRUE") {
          ++pos_;
          return Expr::Literal(Value::Bool(true));
        }
        if (t.text == "FALSE") {
          ++pos_;
          return Expr::Literal(Value::Bool(false));
        }
        if (t.text == "NULL") {
          ++pos_;
          return Expr::Literal(Value::Null());
        }
        return Error("unexpected keyword " + t.text);
      case TokenKind::kIdentifier: {
        std::string name = t.text;
        ++pos_;
        if (PeekOperator("(")) {
          ++pos_;
          std::vector<ExprPtr> args;
          if (PeekOperator("*")) {
            // COUNT(*)
            ++pos_;
          } else if (!PeekOperator(")")) {
            for (;;) {
              DRUGTREE_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              args.push_back(std::move(a));
              if (!ConsumeOperator(",")) break;
            }
          }
          if (!ConsumeOperator(")")) return Error("expected ')'");
          return Expr::Function(name, std::move(args));
        }
        return Expr::Column(name);
      }
      case TokenKind::kOperator:
        if (t.text == "(") {
          ++pos_;
          DRUGTREE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          if (!ConsumeOperator(")")) return Error("expected ')'");
          return e;
        }
        return Error("unexpected operator " + t.text);
      case TokenKind::kEnd:
        return Error("unexpected end of query");
    }
    return Error("unexpected token");
  }

  const Token& Peek() const { return tokens_[pos_]; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  bool PeekOperator(const std::string& op) const {
    return Peek().kind == TokenKind::kOperator && Peek().text == op;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeOperator(const std::string& op) {
    if (PeekOperator(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  util::Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) {
      return util::Status::ParseError(util::StringPrintf(
          "query position %zu: expected %s", Peek().position, kw.c_str()));
    }
    return util::Status::OK();
  }
  util::Status Error(const std::string& msg) const {
    return util::Status::ParseError(util::StringPrintf(
        "query position %zu: %s", Peek().position, msg.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string SelectStatement::ToString() const {
  std::string out = distinct ? "SELECT DISTINCT " : "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i) out += ", ";
    out += select[i].star ? "*" : select[i].expr->ToString();
    if (!select[i].star && !select[i].alias.empty()) {
      out += " AS " + select[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i) out += ", ";
    out += tables[i].table;
    if (tables[i].alias != tables[i].table) out += " " + tables[i].alias;
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit) out += util::StringPrintf(" LIMIT %lld", (long long)*limit);
  return out;
}

util::Result<SelectStatement> ParseQuery(const std::string& text) {
  DRUGTREE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).Parse();
}

util::Result<Statement> ParseStatement(const std::string& text) {
  DRUGTREE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Statement stmt;
  // Peel the optional EXPLAIN [ANALYZE] prefix off the token stream so the
  // SELECT parser proper never sees it.
  size_t skip = 0;
  auto is_kw = [&](size_t i, const char* kw) {
    return i < tokens.size() && tokens[i].kind == TokenKind::kKeyword &&
           tokens[i].text == kw;
  };
  if (is_kw(0, "EXPLAIN")) {
    skip = 1;
    stmt.explain = ExplainMode::kPlan;
    if (is_kw(1, "ANALYZE")) {
      skip = 2;
      stmt.explain = ExplainMode::kAnalyze;
    }
  }
  if (skip > 0) tokens.erase(tokens.begin(), tokens.begin() + skip);
  DRUGTREE_ASSIGN_OR_RETURN(stmt.select, Parser(std::move(tokens)).Parse());
  return stmt;
}

}  // namespace query
}  // namespace drugtree
