// Logical query plans and the AST -> plan builder.

#ifndef DRUGTREE_QUERY_LOGICAL_PLAN_H_
#define DRUGTREE_QUERY_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/catalog.h"
#include "query/expr.h"
#include "query/parser.h"
#include "storage/schema.h"
#include "util/result.h"

namespace drugtree {
namespace query {

enum class LogicalKind { kScan, kFilter, kProject, kJoin, kAggregate, kSort,
                         kLimit, kDistinct };

struct LogicalNode;
using LogicalPtr = std::shared_ptr<LogicalNode>;

/// Output column of a Project / Aggregate.
struct OutputColumn {
  ExprPtr expr;
  std::string name;
};

/// One logical operator. Like Expr, a tagged struct for easy rewriting.
/// `schema` (qualified column names, "alias.column") is maintained by
/// ComputeSchema after every structural change.
struct LogicalNode {
  LogicalKind kind;
  std::vector<LogicalPtr> children;
  storage::Schema schema;

  // kScan
  std::string table;
  std::string alias;
  ExprPtr scan_predicate;  // pushed-down conjunction, may be null

  // kFilter
  ExprPtr predicate;

  // kProject / kAggregate output
  std::vector<OutputColumn> outputs;

  // kJoin
  ExprPtr join_condition;  // may be null (cross product)

  // kAggregate
  std::vector<ExprPtr> group_by;

  // kSort
  std::vector<OrderKey> order_by;

  // kLimit
  int64_t limit = 0;

  static LogicalPtr Scan(std::string table, std::string alias);
  static LogicalPtr Filter(LogicalPtr child, ExprPtr predicate);
  static LogicalPtr Project(LogicalPtr child, std::vector<OutputColumn> outputs);
  static LogicalPtr Join(LogicalPtr left, LogicalPtr right, ExprPtr condition);
  static LogicalPtr Aggregate(LogicalPtr child, std::vector<ExprPtr> group_by,
                              std::vector<OutputColumn> aggregates);
  static LogicalPtr Sort(LogicalPtr child, std::vector<OrderKey> keys);
  static LogicalPtr Limit(LogicalPtr child, int64_t n);
  static LogicalPtr Distinct(LogicalPtr child);

  /// Indented multi-line plan rendering (EXPLAIN output).
  std::string ToString(int indent = 0) const;
};

/// Deep copy of a plan: every node and every expression is cloned (schemas
/// are value-copied), so the result can be rewritten — e.g. re-bound to new
/// parameter values by the plan cache — without touching the original.
LogicalPtr CloneLogicalPlan(const LogicalPtr& plan);

/// Recomputes the node's (and descendants') output schemas against the
/// catalog. Must be called after structural rewrites.
util::Status ComputeSchema(LogicalNode* node, const Catalog& catalog);

/// Builds the canonical logical plan for a parsed statement:
///   Limit(Sort(Project(Aggregate?(Filter(CrossJoin(Scans...))))))
/// No optimization is applied here.
util::Result<LogicalPtr> BuildLogicalPlan(const SelectStatement& stmt,
                                          const Catalog& catalog);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_LOGICAL_PLAN_H_
