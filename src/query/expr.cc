#include "query/expr.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->function = util::ToUpper(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& c : e->children) c = c->Clone();
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(bin_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnaryOp::kNot ? "(NOT " + children[0]->ToString() + ")"
                                    : "(-" + children[0]->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = function + "(";
      if (function == "COUNT" && children.empty()) out += "*";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool Expr::IsAggregate() const {
  if (kind != ExprKind::kFunction) return false;
  return function == "COUNT" || function == "SUM" || function == "AVG" ||
         function == "MIN" || function == "MAX";
}

bool Expr::ContainsAggregate() const {
  if (IsAggregate()) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), column) == out->end()) {
      out->push_back(column);
    }
  }
  for (const auto& c : children) c->CollectColumns(out);
}

util::Result<size_t> ResolveColumn(const Schema& schema,
                                   const std::string& name) {
  // Exact match first.
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (schema.column(i).name == name) return i;
  }
  // Suffix match ".name" for bare column names.
  std::string suffix = "." + name;
  int found = -1;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (util::EndsWith(schema.column(i).name, suffix)) {
      if (found >= 0) {
        return util::Status::InvalidArgument("ambiguous column: " + name);
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    return util::Status::NotFound("unknown column: " + name + " (schema: " +
                                  schema.ToString() + ")");
  }
  return static_cast<size_t>(found);
}

util::Status BindExpr(Expr* expr, const Schema& schema) {
  if (expr->kind == ExprKind::kColumnRef) {
    DRUGTREE_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(schema, expr->column));
    expr->bound_index = static_cast<int>(idx);
  }
  for (auto& c : expr->children) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(c.get(), schema));
  }
  return util::Status::OK();
}

namespace {

util::Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  bool res;
  switch (op) {
    case BinaryOp::kEq: res = c == 0; break;
    case BinaryOp::kNe: res = c != 0; break;
    case BinaryOp::kLt: res = c < 0; break;
    case BinaryOp::kLe: res = c <= 0; break;
    case BinaryOp::kGt: res = c > 0; break;
    case BinaryOp::kGe: res = c >= 0; break;
    default:
      return util::Status::Internal("not a comparison");
  }
  return Value::Bool(res);
}

util::Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Integer arithmetic when both sides are Int64 (except division).
  if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64 &&
      op != BinaryOp::kDiv) {
    int64_t a = l.AsInt64(), b = r.AsInt64();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int64(a + b);
      case BinaryOp::kSub: return Value::Int64(a - b);
      case BinaryOp::kMul: return Value::Int64(a * b);
      default: break;
    }
  }
  DRUGTREE_ASSIGN_OR_RETURN(double a, l.ToNumeric());
  DRUGTREE_ASSIGN_OR_RETURN(double b, r.ToNumeric());
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return util::Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    default:
      return util::Status::Internal("not arithmetic");
  }
}

util::Result<Value> EvalUnary(UnaryOp op, const Value& v) {
  if (op == UnaryOp::kNot) {
    if (v.is_null()) return Value::Null();
    if (v.type() != ValueType::kBool) {
      return util::Status::InvalidArgument("NOT of non-boolean");
    }
    return Value::Bool(!v.AsBool());
  }
  if (v.is_null()) return Value::Null();
  if (v.type() == ValueType::kInt64) return Value::Int64(-v.AsInt64());
  DRUGTREE_ASSIGN_OR_RETURN(double d, v.ToNumeric());
  return Value::Double(-d);
}

// Kleene three-valued AND/OR over {false, true, null}.
util::Result<Value> EvalLogical(BinaryOp op, const Value& l, const Value& r) {
  auto truth = [](const Value& v) -> util::Result<int> {
    if (v.is_null()) return 2;  // unknown
    if (v.type() != ValueType::kBool) {
      return util::Status::InvalidArgument(
          "logical operand is not boolean: " + v.ToString());
    }
    return v.AsBool() ? 1 : 0;
  };
  DRUGTREE_ASSIGN_OR_RETURN(int a, truth(l));
  DRUGTREE_ASSIGN_OR_RETURN(int b, truth(r));
  if (op == BinaryOp::kAnd) {
    if (a == 0 || b == 0) return Value::Bool(false);
    if (a == 2 || b == 2) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (a == 1 || b == 1) return Value::Bool(true);
  if (a == 2 || b == 2) return Value::Null();
  return Value::Bool(false);
}

util::Result<phylo::NodeId> ResolveTreeNode(const EvalContext& ctx,
                                            const Value& v) {
  if (ctx.tree == nullptr || ctx.tree_index == nullptr) {
    return util::Status::InvalidArgument(
        "tree function used without a phylogeny in context");
  }
  if (v.type() == ValueType::kInt64) {
    auto id = static_cast<phylo::NodeId>(v.AsInt64());
    if (!ctx.tree->Contains(id)) {
      return util::Status::NotFound(
          util::StringPrintf("no tree node %d", id));
    }
    return id;
  }
  if (v.type() == ValueType::kString) {
    phylo::NodeId id = ctx.tree->FindByName(v.AsString());
    if (id == phylo::kInvalidNode) {
      return util::Status::NotFound("no tree node named " + v.AsString());
    }
    return id;
  }
  return util::Status::InvalidArgument("tree node must be an id or a name");
}

// Applies a scalar function to already-evaluated arguments. Shared by the
// row evaluator (args from one row) and the batch evaluator (args gathered
// per row from child columns).
util::Result<Value> ApplyFunction(const Expr& expr,
                                  const std::vector<Value>& args,
                                  const EvalContext& ctx) {
  const std::string& f = expr.function;
  if (f == "SUBTREE" || f == "ANCESTOR_OF") {
    if (args.size() != 2) {
      return util::Status::InvalidArgument(f + " takes (node_column, node)");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId row_node,
                              ResolveTreeNode(ctx, args[0]));
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId ref_node,
                              ResolveTreeNode(ctx, args[1]));
    bool res = f == "SUBTREE"
                   ? ctx.tree_index->IsAncestor(ref_node, row_node)
                   : ctx.tree_index->IsAncestor(row_node, ref_node);
    return Value::Bool(res);
  }
  if (f == "TREE_DEPTH") {
    if (args.size() != 1) {
      return util::Status::InvalidArgument("TREE_DEPTH takes (node_column)");
    }
    if (args[0].is_null()) return Value::Null();
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId node,
                              ResolveTreeNode(ctx, args[0]));
    return Value::Int64(ctx.tree_index->Depth(node));
  }
  if (f == "TREE_DIST") {
    if (args.size() != 2) {
      return util::Status::InvalidArgument("TREE_DIST takes (node, node)");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId a, ResolveTreeNode(ctx, args[0]));
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId b, ResolveTreeNode(ctx, args[1]));
    return Value::Double(ctx.tree_index->PathLength(a, b));
  }
  if (f == "IS_NULL") {
    if (args.size() != 1) {
      return util::Status::InvalidArgument("IS_NULL takes one argument");
    }
    return Value::Bool(args[0].is_null());
  }
  if (f == "ABS") {
    if (args.size() != 1) {
      return util::Status::InvalidArgument("ABS takes one argument");
    }
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == ValueType::kInt64) {
      return Value::Int64(std::abs(args[0].AsInt64()));
    }
    DRUGTREE_ASSIGN_OR_RETURN(double d, args[0].ToNumeric());
    return Value::Double(std::abs(d));
  }
  return util::Status::Unimplemented("unknown function: " + f);
}

util::Result<Value> EvalFunction(const Expr& expr, const Row& row,
                                 const EvalContext& ctx) {
  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const auto& c : expr.children) {
    DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, row, ctx));
    args.push_back(std::move(v));
  }
  return ApplyFunction(expr, args, ctx);
}

}  // namespace

util::Result<Value> EvalExpr(const Expr& expr, const Row& row,
                             const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.bound_index < 0 ||
          static_cast<size_t>(expr.bound_index) >= row.size()) {
        return util::Status::Internal("unbound column ref: " + expr.column);
      }
      return row[static_cast<size_t>(expr.bound_index)];
    }
    case ExprKind::kBinary: {
      switch (expr.bin_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          DRUGTREE_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], row, ctx));
          DRUGTREE_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], row, ctx));
          return EvalLogical(expr.bin_op, l, r);
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          DRUGTREE_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], row, ctx));
          DRUGTREE_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], row, ctx));
          return EvalArithmetic(expr.bin_op, l, r);
        }
        default: {
          DRUGTREE_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], row, ctx));
          DRUGTREE_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], row, ctx));
          return EvalComparison(expr.bin_op, l, r);
        }
      }
    }
    case ExprKind::kUnary: {
      DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row, ctx));
      return EvalUnary(expr.un_op, v);
    }
    case ExprKind::kFunction:
      if (expr.IsAggregate()) {
        return util::Status::Internal(
            "aggregate evaluated as scalar: " + expr.function);
      }
      return EvalFunction(expr, row, ctx);
  }
  return util::Status::Internal("unknown expr kind");
}

util::Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                                 const EvalContext& ctx) {
  DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row, ctx));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return util::Status::InvalidArgument("predicate is not boolean: " +
                                         expr.ToString());
  }
  return v.AsBool();
}

// ------------------------------------------------------------------------
// Vectorized (batch) evaluation.
//
// Expressions evaluate bottom-up into BatchCol results: either a borrowed
// batch column (physical indexing), a computed dense column (logical
// indexing, one slot per selected row), or a constant. Binary operators take
// typed fast paths when both operands are homogeneously typed; everything
// else drops to a per-row loop over the child results using the exact same
// scalar kernels (EvalComparison/EvalArithmetic/EvalLogical/ApplyFunction)
// as the row engine, so values, three-valued logic, and errors agree
// cell-for-cell.

namespace {

using storage::ColumnVector;
using storage::RowBatch;

struct BatchCol {
  const ColumnVector* col = nullptr;  // null => constant
  const Value* constant = nullptr;
  bool physical = false;  // col rows are physical batch rows (apply sel)
  ColumnVector owned;     // storage when this node computed a column
};

// Physical index into a BatchCol's column for logical row i.
inline size_t ColIndex(const BatchCol& c, const RowBatch& batch, size_t i) {
  return c.physical ? batch.PhysicalIndex(i) : i;
}

inline Value BatchColValue(const BatchCol& c, const RowBatch& batch,
                           size_t i) {
  if (c.constant != nullptr) return *c.constant;
  return c.col->GetValue(ColIndex(c, batch, i));
}

// Operand classification for fast-path dispatch.
enum class SideKind {
  kIntCol, kDoubleCol, kStringCol, kBoolCol,
  kIntConst, kDoubleConst, kStringConst, kBoolConst, kNullConst,
  kOther,  // mixed column, all-null column, or exotic constant
};

SideKind Classify(const BatchCol& c) {
  if (c.constant != nullptr) {
    switch (c.constant->type()) {
      case ValueType::kInt64: return SideKind::kIntConst;
      case ValueType::kDouble: return SideKind::kDoubleConst;
      case ValueType::kString: return SideKind::kStringConst;
      case ValueType::kBool: return SideKind::kBoolConst;
      case ValueType::kNull: return SideKind::kNullConst;
    }
    return SideKind::kOther;
  }
  if (c.col->mixed()) return SideKind::kOther;
  switch (c.col->type()) {
    case ValueType::kInt64: return SideKind::kIntCol;
    case ValueType::kDouble: return SideKind::kDoubleCol;
    case ValueType::kString: return SideKind::kStringCol;
    case ValueType::kBool: return SideKind::kBoolCol;
    case ValueType::kNull: return SideKind::kOther;  // all-null column
  }
  return SideKind::kOther;
}

bool IsNumericSide(SideKind k) {
  return k == SideKind::kIntCol || k == SideKind::kDoubleCol ||
         k == SideKind::kIntConst || k == SideKind::kDoubleConst;
}

bool IsIntSide(SideKind k) {
  return k == SideKind::kIntCol || k == SideKind::kIntConst;
}

// One numeric operand viewed uniformly: NullAt / IntAt / DoubleAt.
struct NumSide {
  bool is_const = false;
  bool is_int = false;
  int64_t ci = 0;
  double cd = 0.0;
  const ColumnVector* col = nullptr;
  bool physical = false;

  static NumSide Make(const BatchCol& c, SideKind k) {
    NumSide s;
    s.is_int = IsIntSide(k);
    if (c.constant != nullptr) {
      s.is_const = true;
      if (s.is_int) {
        s.ci = c.constant->AsInt64();
        s.cd = static_cast<double>(s.ci);
      } else {
        s.cd = c.constant->AsDouble();
      }
    } else {
      s.col = c.col;
      s.physical = c.physical;
    }
    return s;
  }
  bool NullAt(size_t p) const { return !is_const && col->IsNull(p); }
  int64_t IntAt(size_t p) const { return is_const ? ci : col->Int64At(p); }
  double DoubleAt(size_t p) const {
    if (is_const) return cd;
    return is_int ? static_cast<double>(col->Int64At(p)) : col->DoubleAt(p);
  }
};

bool CompareToBool(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

// Fast comparison over two numeric sides. Mirrors Value::Compare's numeric
// rules: pure Int64/Int64 compares integrally, anything else as double.
void CompareNumericBatch(BinaryOp op, const NumSide& l, const NumSide& r,
                         bool both_int, const RowBatch& batch, size_t n,
                         ColumnVector* out) {
  for (size_t i = 0; i < n; ++i) {
    size_t pl = l.physical ? batch.PhysicalIndex(i) : i;
    size_t pr = r.physical ? batch.PhysicalIndex(i) : i;
    if (l.NullAt(pl) || r.NullAt(pr)) {
      out->AppendNull();
      continue;
    }
    int c;
    if (both_int) {
      int64_t a = l.IntAt(pl), b = r.IntAt(pr);
      c = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      double a = l.DoubleAt(pl), b = r.DoubleAt(pr);
      c = a < b ? -1 : (a > b ? 1 : 0);
    }
    out->AppendBool(CompareToBool(op, c));
  }
}

// Fast comparison over string sides (column/column or column/constant).
void CompareStringBatch(BinaryOp op, const BatchCol& l, const BatchCol& r,
                        const RowBatch& batch, size_t n, ColumnVector* out) {
  for (size_t i = 0; i < n; ++i) {
    const std::string* a;
    if (l.constant != nullptr) {
      a = &l.constant->AsString();
    } else {
      size_t p = ColIndex(l, batch, i);
      if (l.col->IsNull(p)) { out->AppendNull(); continue; }
      a = &l.col->StringAt(p);
    }
    const std::string* b;
    if (r.constant != nullptr) {
      b = &r.constant->AsString();
    } else {
      size_t p = ColIndex(r, batch, i);
      if (r.col->IsNull(p)) { out->AppendNull(); continue; }
      b = &r.col->StringAt(p);
    }
    int cmp = a->compare(*b);
    out->AppendBool(CompareToBool(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)));
  }
}

// Fast arithmetic over numeric sides; replicates EvalArithmetic exactly
// (Int64 arithmetic when both sides are Int64 and op != Div, double
// otherwise, division-by-zero error).
util::Status ArithmeticNumericBatch(BinaryOp op, const NumSide& l,
                                    const NumSide& r, bool both_int,
                                    const RowBatch& batch, size_t n,
                                    ColumnVector* out) {
  const bool int_result = both_int && op != BinaryOp::kDiv;
  for (size_t i = 0; i < n; ++i) {
    size_t pl = l.physical ? batch.PhysicalIndex(i) : i;
    size_t pr = r.physical ? batch.PhysicalIndex(i) : i;
    if (l.NullAt(pl) || r.NullAt(pr)) {
      out->AppendNull();
      continue;
    }
    if (int_result) {
      int64_t a = l.IntAt(pl), b = r.IntAt(pr);
      int64_t v = 0;
      switch (op) {
        case BinaryOp::kAdd: v = a + b; break;
        case BinaryOp::kSub: v = a - b; break;
        case BinaryOp::kMul: v = a * b; break;
        default: break;
      }
      out->AppendInt64(v);
      continue;
    }
    double a = l.DoubleAt(pl), b = r.DoubleAt(pr);
    double v = 0.0;
    switch (op) {
      case BinaryOp::kAdd: v = a + b; break;
      case BinaryOp::kSub: v = a - b; break;
      case BinaryOp::kMul: v = a * b; break;
      case BinaryOp::kDiv:
        if (b == 0.0) return util::Status::InvalidArgument("division by zero");
        v = a / b;
        break;
      default: break;
    }
    out->AppendDouble(v);
  }
  return util::Status::OK();
}

// Kleene truth value of one logical operand at a row: 0/1/2 (2 = null).
inline int TruthAt(const BatchCol& c, int const_truth, const RowBatch& batch,
                   size_t i) {
  if (c.constant != nullptr) return const_truth;
  size_t p = ColIndex(c, batch, i);
  if (c.col->IsNull(p)) return 2;
  return c.col->BoolAt(p) ? 1 : 0;
}

util::Status EvalNodeBatch(const Expr& expr, const RowBatch& batch,
                           const EvalContext& ctx, BatchCol* out);

// Per-row fallback for a binary node over evaluated children.
util::Status BinaryRowLoop(const Expr& expr, const BatchCol& l,
                           const BatchCol& r, const RowBatch& batch, size_t n,
                           ColumnVector* out) {
  auto eval_one = [&expr](const Value& a,
                          const Value& b) -> util::Result<Value> {
    switch (expr.bin_op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        return EvalLogical(expr.bin_op, a, b);
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        return EvalArithmetic(expr.bin_op, a, b);
      default:
        return EvalComparison(expr.bin_op, a, b);
    }
  };
  for (size_t i = 0; i < n; ++i) {
    DRUGTREE_ASSIGN_OR_RETURN(
        Value v,
        eval_one(BatchColValue(l, batch, i), BatchColValue(r, batch, i)));
    out->Append(std::move(v));
  }
  return util::Status::OK();
}

util::Status EvalBinaryBatch(const Expr& expr, const RowBatch& batch,
                             const EvalContext& ctx, BatchCol* out) {
  BatchCol l, r;
  DRUGTREE_RETURN_IF_ERROR(EvalNodeBatch(*expr.children[0], batch, ctx, &l));
  DRUGTREE_RETURN_IF_ERROR(EvalNodeBatch(*expr.children[1], batch, ctx, &r));
  const size_t n = batch.size();
  out->owned.Clear();
  out->owned.Reserve(n);
  out->col = &out->owned;
  SideKind lk = Classify(l), rk = Classify(r);
  switch (expr.bin_op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      // Fast path: both sides are bool columns or bool/null constants.
      auto logical_ok = [](SideKind k) {
        return k == SideKind::kBoolCol || k == SideKind::kBoolConst ||
               k == SideKind::kNullConst;
      };
      if (logical_ok(lk) && logical_ok(rk)) {
        auto const_truth = [](const BatchCol& c) {
          if (c.constant == nullptr) return -1;
          if (c.constant->is_null()) return 2;
          return c.constant->AsBool() ? 1 : 0;
        };
        int lc = const_truth(l), rc = const_truth(r);
        const bool is_and = expr.bin_op == BinaryOp::kAnd;
        for (size_t i = 0; i < n; ++i) {
          int a = TruthAt(l, lc, batch, i);
          int b = TruthAt(r, rc, batch, i);
          int t;
          if (is_and) {
            t = (a == 0 || b == 0) ? 0 : ((a == 2 || b == 2) ? 2 : 1);
          } else {
            t = (a == 1 || b == 1) ? 1 : ((a == 2 || b == 2) ? 2 : 0);
          }
          if (t == 2) {
            out->owned.AppendNull();
          } else {
            out->owned.AppendBool(t == 1);
          }
        }
        return util::Status::OK();
      }
      return BinaryRowLoop(expr, l, r, batch, n, &out->owned);
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (IsNumericSide(lk) && IsNumericSide(rk)) {
        NumSide ls = NumSide::Make(l, lk), rs = NumSide::Make(r, rk);
        return ArithmeticNumericBatch(expr.bin_op, ls, rs,
                                      IsIntSide(lk) && IsIntSide(rk), batch, n,
                                      &out->owned);
      }
      return BinaryRowLoop(expr, l, r, batch, n, &out->owned);
    }
    default: {  // comparisons
      if (IsNumericSide(lk) && IsNumericSide(rk)) {
        NumSide ls = NumSide::Make(l, lk), rs = NumSide::Make(r, rk);
        CompareNumericBatch(expr.bin_op, ls, rs,
                            IsIntSide(lk) && IsIntSide(rk), batch, n,
                            &out->owned);
        return util::Status::OK();
      }
      auto string_ok = [](SideKind k) {
        return k == SideKind::kStringCol || k == SideKind::kStringConst;
      };
      if (string_ok(lk) && string_ok(rk)) {
        CompareStringBatch(expr.bin_op, l, r, batch, n, &out->owned);
        return util::Status::OK();
      }
      return BinaryRowLoop(expr, l, r, batch, n, &out->owned);
    }
  }
}

util::Status EvalNodeBatch(const Expr& expr, const RowBatch& batch,
                           const EvalContext& ctx, BatchCol* out) {
  const size_t n = batch.size();
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->constant = &expr.literal;
      return util::Status::OK();
    case ExprKind::kColumnRef: {
      if (expr.bound_index < 0 ||
          static_cast<size_t>(expr.bound_index) >= batch.num_columns()) {
        return util::Status::Internal("unbound column ref: " + expr.column);
      }
      out->col = &batch.column(static_cast<size_t>(expr.bound_index));
      out->physical = true;
      return util::Status::OK();
    }
    case ExprKind::kBinary:
      return EvalBinaryBatch(expr, batch, ctx, out);
    case ExprKind::kUnary: {
      BatchCol c;
      DRUGTREE_RETURN_IF_ERROR(EvalNodeBatch(*expr.children[0], batch, ctx,
                                             &c));
      out->owned.Clear();
      out->owned.Reserve(n);
      out->col = &out->owned;
      for (size_t i = 0; i < n; ++i) {
        DRUGTREE_ASSIGN_OR_RETURN(
            Value v, EvalUnary(expr.un_op, BatchColValue(c, batch, i)));
        out->owned.Append(std::move(v));
      }
      return util::Status::OK();
    }
    case ExprKind::kFunction: {
      if (expr.IsAggregate()) {
        return util::Status::Internal(
            "aggregate evaluated as scalar: " + expr.function);
      }
      std::vector<BatchCol> children(expr.children.size());
      for (size_t c = 0; c < expr.children.size(); ++c) {
        DRUGTREE_RETURN_IF_ERROR(
            EvalNodeBatch(*expr.children[c], batch, ctx, &children[c]));
      }
      out->owned.Clear();
      out->owned.Reserve(n);
      out->col = &out->owned;
      std::vector<Value> args(expr.children.size());
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < children.size(); ++c) {
          args[c] = BatchColValue(children[c], batch, i);
        }
        DRUGTREE_ASSIGN_OR_RETURN(Value v, ApplyFunction(expr, args, ctx));
        out->owned.Append(std::move(v));
      }
      return util::Status::OK();
    }
  }
  return util::Status::Internal("unknown expr kind");
}

}  // namespace

util::Status EvalExprBatch(const Expr& expr, const RowBatch& batch,
                           const EvalContext& ctx, ColumnVector* out) {
  out->Clear();
  const size_t n = batch.size();
  BatchCol c;
  DRUGTREE_RETURN_IF_ERROR(EvalNodeBatch(expr, batch, ctx, &c));
  if (c.constant != nullptr) {
    out->Reserve(n);
    for (size_t i = 0; i < n; ++i) out->Append(*c.constant);
    return util::Status::OK();
  }
  if (c.col == &c.owned && !c.physical) {
    *out = std::move(c.owned);  // computed dense column, already aligned
    return util::Status::OK();
  }
  if (!c.physical) {
    *out = *c.col;  // already aligned to logical rows
    return util::Status::OK();
  }
  if (!batch.has_selection()) {
    if (c.col->size() == n) {
      *out = *c.col;  // full-width borrow: straight column copy
      return util::Status::OK();
    }
    out->Reserve(n);
    for (size_t i = 0; i < n; ++i) out->Append(c.col->GetValue(i));
    return util::Status::OK();
  }
  // Selection installed: typed bulk gather of the selected physical rows.
  out->GatherFrom(*c.col, batch.selection().data(), n);
  return util::Status::OK();
}

util::Status EvalPredicateBatch(const Expr& expr, const RowBatch& batch,
                                const EvalContext& ctx,
                                std::vector<uint32_t>* sel_out) {
  sel_out->clear();
  const size_t n = batch.size();
  if (n == 0) return util::Status::OK();
  BatchCol c;
  DRUGTREE_RETURN_IF_ERROR(EvalNodeBatch(expr, batch, ctx, &c));
  if (c.constant != nullptr) {
    if (c.constant->is_null()) return util::Status::OK();
    if (c.constant->type() != ValueType::kBool) {
      return util::Status::InvalidArgument("predicate is not boolean: " +
                                           expr.ToString());
    }
    if (!c.constant->AsBool()) return util::Status::OK();
    sel_out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      sel_out->push_back(static_cast<uint32_t>(batch.PhysicalIndex(i)));
    }
    return util::Status::OK();
  }
  const ColumnVector& col = *c.col;
  if (!col.mixed() && col.type() == ValueType::kBool) {
    sel_out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      size_t p = ColIndex(c, batch, i);
      if (!col.IsNull(p) && col.BoolAt(p)) {
        sel_out->push_back(static_cast<uint32_t>(batch.PhysicalIndex(i)));
      }
    }
    return util::Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    Value v = col.GetValue(ColIndex(c, batch, i));
    if (v.is_null()) continue;
    if (v.type() != ValueType::kBool) {
      return util::Status::InvalidArgument("predicate is not boolean: " +
                                           expr.ToString());
    }
    if (v.AsBool()) {
      sel_out->push_back(static_cast<uint32_t>(batch.PhysicalIndex(i)));
    }
  }
  return util::Status::OK();
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind == ExprKind::kBinary && expr->bin_op == BinaryOp::kAnd) {
    auto l = SplitConjuncts(expr->children[0]);
    auto r = SplitConjuncts(expr->children[1]);
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(expr->Clone());
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const auto& c : conjuncts) {
    out = out ? Expr::Binary(BinaryOp::kAnd, out, c->Clone()) : c->Clone();
  }
  return out;
}

}  // namespace query
}  // namespace drugtree
