#include "query/expr.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->function = util::ToUpper(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& c : e->children) c = c->Clone();
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(bin_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnaryOp::kNot ? "(NOT " + children[0]->ToString() + ")"
                                    : "(-" + children[0]->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = function + "(";
      if (function == "COUNT" && children.empty()) out += "*";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool Expr::IsAggregate() const {
  if (kind != ExprKind::kFunction) return false;
  return function == "COUNT" || function == "SUM" || function == "AVG" ||
         function == "MIN" || function == "MAX";
}

bool Expr::ContainsAggregate() const {
  if (IsAggregate()) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), column) == out->end()) {
      out->push_back(column);
    }
  }
  for (const auto& c : children) c->CollectColumns(out);
}

util::Result<size_t> ResolveColumn(const Schema& schema,
                                   const std::string& name) {
  // Exact match first.
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (schema.column(i).name == name) return i;
  }
  // Suffix match ".name" for bare column names.
  std::string suffix = "." + name;
  int found = -1;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (util::EndsWith(schema.column(i).name, suffix)) {
      if (found >= 0) {
        return util::Status::InvalidArgument("ambiguous column: " + name);
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    return util::Status::NotFound("unknown column: " + name + " (schema: " +
                                  schema.ToString() + ")");
  }
  return static_cast<size_t>(found);
}

util::Status BindExpr(Expr* expr, const Schema& schema) {
  if (expr->kind == ExprKind::kColumnRef) {
    DRUGTREE_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(schema, expr->column));
    expr->bound_index = static_cast<int>(idx);
  }
  for (auto& c : expr->children) {
    DRUGTREE_RETURN_IF_ERROR(BindExpr(c.get(), schema));
  }
  return util::Status::OK();
}

namespace {

util::Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  bool res;
  switch (op) {
    case BinaryOp::kEq: res = c == 0; break;
    case BinaryOp::kNe: res = c != 0; break;
    case BinaryOp::kLt: res = c < 0; break;
    case BinaryOp::kLe: res = c <= 0; break;
    case BinaryOp::kGt: res = c > 0; break;
    case BinaryOp::kGe: res = c >= 0; break;
    default:
      return util::Status::Internal("not a comparison");
  }
  return Value::Bool(res);
}

util::Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Integer arithmetic when both sides are Int64 (except division).
  if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64 &&
      op != BinaryOp::kDiv) {
    int64_t a = l.AsInt64(), b = r.AsInt64();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int64(a + b);
      case BinaryOp::kSub: return Value::Int64(a - b);
      case BinaryOp::kMul: return Value::Int64(a * b);
      default: break;
    }
  }
  DRUGTREE_ASSIGN_OR_RETURN(double a, l.ToNumeric());
  DRUGTREE_ASSIGN_OR_RETURN(double b, r.ToNumeric());
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return util::Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    default:
      return util::Status::Internal("not arithmetic");
  }
}

// Kleene three-valued AND/OR over {false, true, null}.
util::Result<Value> EvalLogical(BinaryOp op, const Value& l, const Value& r) {
  auto truth = [](const Value& v) -> util::Result<int> {
    if (v.is_null()) return 2;  // unknown
    if (v.type() != ValueType::kBool) {
      return util::Status::InvalidArgument(
          "logical operand is not boolean: " + v.ToString());
    }
    return v.AsBool() ? 1 : 0;
  };
  DRUGTREE_ASSIGN_OR_RETURN(int a, truth(l));
  DRUGTREE_ASSIGN_OR_RETURN(int b, truth(r));
  if (op == BinaryOp::kAnd) {
    if (a == 0 || b == 0) return Value::Bool(false);
    if (a == 2 || b == 2) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (a == 1 || b == 1) return Value::Bool(true);
  if (a == 2 || b == 2) return Value::Null();
  return Value::Bool(false);
}

util::Result<phylo::NodeId> ResolveTreeNode(const EvalContext& ctx,
                                            const Value& v) {
  if (ctx.tree == nullptr || ctx.tree_index == nullptr) {
    return util::Status::InvalidArgument(
        "tree function used without a phylogeny in context");
  }
  if (v.type() == ValueType::kInt64) {
    auto id = static_cast<phylo::NodeId>(v.AsInt64());
    if (!ctx.tree->Contains(id)) {
      return util::Status::NotFound(
          util::StringPrintf("no tree node %d", id));
    }
    return id;
  }
  if (v.type() == ValueType::kString) {
    phylo::NodeId id = ctx.tree->FindByName(v.AsString());
    if (id == phylo::kInvalidNode) {
      return util::Status::NotFound("no tree node named " + v.AsString());
    }
    return id;
  }
  return util::Status::InvalidArgument("tree node must be an id or a name");
}

util::Result<Value> EvalFunction(const Expr& expr, const Row& row,
                                 const EvalContext& ctx) {
  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const auto& c : expr.children) {
    DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, row, ctx));
    args.push_back(std::move(v));
  }
  const std::string& f = expr.function;
  if (f == "SUBTREE" || f == "ANCESTOR_OF") {
    if (args.size() != 2) {
      return util::Status::InvalidArgument(f + " takes (node_column, node)");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId row_node,
                              ResolveTreeNode(ctx, args[0]));
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId ref_node,
                              ResolveTreeNode(ctx, args[1]));
    bool res = f == "SUBTREE"
                   ? ctx.tree_index->IsAncestor(ref_node, row_node)
                   : ctx.tree_index->IsAncestor(row_node, ref_node);
    return Value::Bool(res);
  }
  if (f == "TREE_DEPTH") {
    if (args.size() != 1) {
      return util::Status::InvalidArgument("TREE_DEPTH takes (node_column)");
    }
    if (args[0].is_null()) return Value::Null();
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId node,
                              ResolveTreeNode(ctx, args[0]));
    return Value::Int64(ctx.tree_index->Depth(node));
  }
  if (f == "TREE_DIST") {
    if (args.size() != 2) {
      return util::Status::InvalidArgument("TREE_DIST takes (node, node)");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId a, ResolveTreeNode(ctx, args[0]));
    DRUGTREE_ASSIGN_OR_RETURN(phylo::NodeId b, ResolveTreeNode(ctx, args[1]));
    return Value::Double(ctx.tree_index->PathLength(a, b));
  }
  if (f == "IS_NULL") {
    if (args.size() != 1) {
      return util::Status::InvalidArgument("IS_NULL takes one argument");
    }
    return Value::Bool(args[0].is_null());
  }
  if (f == "ABS") {
    if (args.size() != 1) {
      return util::Status::InvalidArgument("ABS takes one argument");
    }
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == ValueType::kInt64) {
      return Value::Int64(std::abs(args[0].AsInt64()));
    }
    DRUGTREE_ASSIGN_OR_RETURN(double d, args[0].ToNumeric());
    return Value::Double(std::abs(d));
  }
  return util::Status::Unimplemented("unknown function: " + f);
}

}  // namespace

util::Result<Value> EvalExpr(const Expr& expr, const Row& row,
                             const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.bound_index < 0 ||
          static_cast<size_t>(expr.bound_index) >= row.size()) {
        return util::Status::Internal("unbound column ref: " + expr.column);
      }
      return row[static_cast<size_t>(expr.bound_index)];
    }
    case ExprKind::kBinary: {
      switch (expr.bin_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          DRUGTREE_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], row, ctx));
          DRUGTREE_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], row, ctx));
          return EvalLogical(expr.bin_op, l, r);
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          DRUGTREE_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], row, ctx));
          DRUGTREE_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], row, ctx));
          return EvalArithmetic(expr.bin_op, l, r);
        }
        default: {
          DRUGTREE_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], row, ctx));
          DRUGTREE_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], row, ctx));
          return EvalComparison(expr.bin_op, l, r);
        }
      }
    }
    case ExprKind::kUnary: {
      DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row, ctx));
      if (expr.un_op == UnaryOp::kNot) {
        if (v.is_null()) return Value::Null();
        if (v.type() != ValueType::kBool) {
          return util::Status::InvalidArgument("NOT of non-boolean");
        }
        return Value::Bool(!v.AsBool());
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt64) return Value::Int64(-v.AsInt64());
      DRUGTREE_ASSIGN_OR_RETURN(double d, v.ToNumeric());
      return Value::Double(-d);
    }
    case ExprKind::kFunction:
      if (expr.IsAggregate()) {
        return util::Status::Internal(
            "aggregate evaluated as scalar: " + expr.function);
      }
      return EvalFunction(expr, row, ctx);
  }
  return util::Status::Internal("unknown expr kind");
}

util::Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                                 const EvalContext& ctx) {
  DRUGTREE_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row, ctx));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBool) {
    return util::Status::InvalidArgument("predicate is not boolean: " +
                                         expr.ToString());
  }
  return v.AsBool();
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind == ExprKind::kBinary && expr->bin_op == BinaryOp::kAnd) {
    auto l = SplitConjuncts(expr->children[0]);
    auto r = SplitConjuncts(expr->children[1]);
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(expr->Clone());
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const auto& c : conjuncts) {
    out = out ? Expr::Binary(BinaryOp::kAnd, out, c->Clone()) : c->Clone();
  }
  return out;
}

}  // namespace query
}  // namespace drugtree
