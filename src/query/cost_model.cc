#include "query/cost_model.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::ColumnStats;
using storage::Value;

const ColumnStats* CostModel::StatsFor(const std::string& qualified) const {
  size_t dot = qualified.find('.');
  if (dot == std::string::npos) return nullptr;
  std::string alias = qualified.substr(0, dot);
  std::string col = qualified.substr(dot + 1);
  auto it = alias_to_table_.find(alias);
  if (it == alias_to_table_.end()) return nullptr;
  auto table = catalog_->Lookup(it->second);
  if (!table.ok()) return nullptr;
  const storage::TableStats* stats = (*table)->stats();
  if (stats == nullptr) return nullptr;
  auto idx = (*table)->schema().IndexOf(col);
  if (!idx.ok()) return nullptr;
  return &stats->column(*idx);
}

double CostModel::TableRows(const std::string& alias) const {
  auto it = alias_to_table_.find(alias);
  if (it == alias_to_table_.end()) return 1000.0;
  auto table = catalog_->Lookup(it->second);
  if (!table.ok()) return 1000.0;
  return std::max<double>(1.0, static_cast<double>((*table)->NumRows()));
}

double CostModel::ConjunctSelectivity(const Expr& conjunct) const {
  if (conjunct.kind == ExprKind::kBinary) {
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    BinaryOp op = conjunct.bin_op;
    const Expr* l = conjunct.children[0].get();
    const Expr* r = conjunct.children[1].get();
    auto flip = [](BinaryOp o) {
      switch (o) {
        case BinaryOp::kLt: return BinaryOp::kGt;
        case BinaryOp::kLe: return BinaryOp::kGe;
        case BinaryOp::kGt: return BinaryOp::kLt;
        case BinaryOp::kGe: return BinaryOp::kLe;
        default: return o;
      }
    };
    if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kLiteral) {
      col = l;
      lit = r;
    } else if (r->kind == ExprKind::kColumnRef &&
               l->kind == ExprKind::kLiteral) {
      col = r;
      lit = l;
      op = flip(op);
    }
    if (col != nullptr) {
      const ColumnStats* stats = StatsFor(col->column);
      if (stats != nullptr) {
        switch (op) {
          case BinaryOp::kEq:
            return stats->EqualitySelectivity(lit->literal);
          case BinaryOp::kNe:
            return std::clamp(
                1.0 - stats->EqualitySelectivity(lit->literal), 0.0, 1.0);
          case BinaryOp::kLt:
          case BinaryOp::kLe:
            return stats->RangeSelectivity(Value::Null(), true, lit->literal,
                                           op == BinaryOp::kLe);
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            return stats->RangeSelectivity(lit->literal, op == BinaryOp::kGe,
                                           Value::Null(), true);
          default:
            break;
        }
      }
      // No stats: coefficient defaults.
      switch (op) {
        case BinaryOp::kEq: return costs_.eq_default_selectivity;
        case BinaryOp::kNe: return costs_.ne_default_selectivity;
        default: return costs_.range_default_selectivity;
      }
    }
    if (conjunct.bin_op == BinaryOp::kAnd) {
      return ConjunctSelectivity(*l) * ConjunctSelectivity(*r);
    }
    if (conjunct.bin_op == BinaryOp::kOr) {
      double a = ConjunctSelectivity(*l), b = ConjunctSelectivity(*r);
      return std::clamp(a + b - a * b, 0.0, 1.0);
    }
  }
  if (conjunct.kind == ExprKind::kFunction) {
    // Tree predicates before rewriting: the interval-index priors.
    if (conjunct.function == "SUBTREE") return costs_.subtree_selectivity;
    if (conjunct.function == "ANCESTOR_OF") {
      return costs_.ancestor_selectivity;
    }
    if (conjunct.function == "IS_NULL") return costs_.is_null_selectivity;
  }
  if (conjunct.kind == ExprKind::kUnary &&
      conjunct.un_op == UnaryOp::kNot) {
    return std::clamp(1.0 - ConjunctSelectivity(*conjunct.children[0]), 0.0,
                      1.0);
  }
  return 0.5;
}

double CostModel::EstimateScanRows(const std::string& alias,
                                   const ExprPtr& pred) const {
  double rows = TableRows(alias);
  if (pred) {
    for (const auto& c : SplitConjuncts(pred)) {
      rows *= ConjunctSelectivity(*c);
    }
  }
  return std::max(1.0, rows);
}

double CostModel::ScanCost(const std::string& alias) const {
  double per_row = costs_.seq_scan_row;
  auto it = alias_to_table_.find(alias);
  if (it != alias_to_table_.end()) {
    auto table = catalog_->Lookup(it->second);
    if (table.ok() && (*table)->encoded() != nullptr) {
      per_row *= costs_.encoded_scan_discount;
    }
  }
  return per_row * TableRows(alias);
}

double CostModel::JoinSelectivity(const std::string& left_col,
                                  const std::string& right_col) const {
  const ColumnStats* l = StatsFor(left_col);
  const ColumnStats* r = StatsFor(right_col);
  double ndv = 0;
  if (l != nullptr) ndv = std::max(ndv, static_cast<double>(l->num_distinct()));
  if (r != nullptr) ndv = std::max(ndv, static_cast<double>(r->num_distinct()));
  if (ndv <= 0) return 0.01;
  return 1.0 / ndv;
}

}  // namespace query
}  // namespace drugtree
