#include "query/plan_cache.h"

#include <set>

#include "util/string_util.h"

namespace drugtree {
namespace query {
namespace {

void CollectOrdinals(const Expr* expr, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kLiteral && expr->param_index >= 0) {
    out->insert(expr->param_index);
  }
  for (const auto& c : expr->children) CollectOrdinals(c.get(), out);
}

void CollectOrdinals(const LogicalPtr& node, std::set<int>* out) {
  if (node == nullptr) return;
  CollectOrdinals(node->scan_predicate.get(), out);
  CollectOrdinals(node->predicate.get(), out);
  CollectOrdinals(node->join_condition.get(), out);
  for (const auto& o : node->outputs) CollectOrdinals(o.expr.get(), out);
  for (const auto& g : node->group_by) CollectOrdinals(g.get(), out);
  for (const auto& k : node->order_by) CollectOrdinals(k.expr.get(), out);
  for (const auto& c : node->children) CollectOrdinals(c, out);
}

/// True iff every ordinal 0..n-1 survived optimization verbatim. A missing
/// ordinal means a rewrite consumed that literal while planning (folded it,
/// baked it into interval bounds, or dropped its conjunct), so the template
/// only reproduces correct results for its own parameter values.
bool ComputeRebindable(const LogicalPtr& plan, size_t num_params) {
  std::set<int> present;
  CollectOrdinals(plan, &present);
  if (present.size() != num_params) return false;
  for (size_t i = 0; i < num_params; ++i) {
    if (present.count(static_cast<int>(i)) == 0) return false;
  }
  return true;
}

void SubstituteParams(Expr* expr, const std::vector<storage::Value>& params) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kLiteral && expr->param_index >= 0 &&
      static_cast<size_t>(expr->param_index) < params.size()) {
    expr->literal = params[static_cast<size_t>(expr->param_index)];
  }
  for (const auto& c : expr->children) SubstituteParams(c.get(), params);
}

void SubstituteParams(const LogicalPtr& node,
                      const std::vector<storage::Value>& params) {
  if (node == nullptr) return;
  SubstituteParams(node->scan_predicate.get(), params);
  SubstituteParams(node->predicate.get(), params);
  SubstituteParams(node->join_condition.get(), params);
  for (const auto& o : node->outputs) SubstituteParams(o.expr.get(), params);
  for (const auto& g : node->group_by) SubstituteParams(g.get(), params);
  for (const auto& k : node->order_by) SubstituteParams(k.expr.get(), params);
  for (const auto& c : node->children) SubstituteParams(c, params);
}

bool SameValue(const storage::Value& a, const storage::Value& b) {
  // Stricter than Value::operator== (which equates Int64 42 and Double
  // 42.0): a cached plan may have specialized on the literal's type, so
  // only byte-for-byte-equivalent parameters count as "identical".
  if (a.type() != b.type()) return false;
  if (a.is_null()) return true;
  return a.Compare(b) == 0;
}

}  // namespace

PlanCache::VersionSignature PlanCache::CaptureVersions(
    const Catalog& catalog, const SelectStatement& stmt,
    uint64_t cost_version) {
  VersionSignature sig;
  sig.catalog_epoch = catalog.epoch();
  sig.cost_version = cost_version;
  sig.tables.reserve(stmt.tables.size());
  for (const TableRef& ref : stmt.tables) {
    auto table = catalog.Lookup(ref.table);
    sig.tables.emplace_back(ref.table,
                            table.ok() ? (*table)->plan_version() : 0);
  }
  return sig;
}

namespace {

bool SameParams(const std::vector<storage::Value>& a,
                const std::vector<storage::Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameValue(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

PlanCache::Lookup PlanCache::Get(const std::string& fingerprint,
                                 const VersionSignature& current,
                                 const std::vector<storage::Value>& params) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    return {};
  }
  Entry& entry = it->second;
  if (!(entry.versions == current)) {
    lru_.erase(entry.lru_it);
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return {};
  }
  // Exact parameter vector: reuse that variant's plan verbatim.
  for (auto v = entry.variants.begin(); v != entry.variants.end(); ++v) {
    if (!SameParams(v->params, params)) continue;
    entry.variants.splice(entry.variants.begin(), entry.variants, v);
    TouchLocked(entry, fingerprint);
    ++stats_.hits;
    return {entry.variants.front().plan, false};
  }
  // No exact variant: re-bind any re-bindable one (they are structural
  // clones of each other, so the first with matching arity + literal types
  // is as good as any), and memoize the bound clone so the next execution
  // with these literals skips the clone + substitution too.
  for (const Template& tmpl : entry.variants) {
    bool can_rebind = tmpl.rebindable && tmpl.params.size() == params.size();
    for (size_t i = 0; can_rebind && i < params.size(); ++i) {
      can_rebind = tmpl.params[i].type() == params[i].type();
    }
    if (!can_rebind) continue;
    LogicalPtr bound = CloneLogicalPlan(tmpl.plan);
    SubstituteParams(bound, params);
    entry.variants.push_front(Template{bound, params, /*rebindable=*/true});
    TrimVariantsLocked(entry);
    TouchLocked(entry, fingerprint);
    ++stats_.hits;
    ++stats_.rebinds;
    return {std::move(bound), true};
  }
  // Structural match only: every resident variant consumed a literal at
  // plan time (or the types changed). Reusing one could return wrong
  // results, so re-plan.
  ++stats_.misses;
  return {};
}

void PlanCache::Install(const std::string& fingerprint, LogicalPtr plan,
                        std::vector<storage::Value> params,
                        VersionSignature versions) {
  Template tmpl;
  tmpl.rebindable = ComputeRebindable(plan, params.size());
  tmpl.plan = std::move(plan);
  tmpl.params = std::move(params);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    if (!(entry.versions == versions)) {
      // The entry went stale between this planner's Get and Install (or a
      // concurrent slot raced a catalog bump): start the variant list over
      // under the fresh signature.
      entry.variants.clear();
      entry.versions = std::move(versions);
    }
    entry.variants.push_front(std::move(tmpl));
    TrimVariantsLocked(entry);
    TouchLocked(entry, fingerprint);
  } else {
    lru_.push_front(fingerprint);
    Entry entry;
    entry.versions = std::move(versions);
    entry.variants.push_front(std::move(tmpl));
    entry.lru_it = lru_.begin();
    entries_.emplace(fingerprint, std::move(entry));
    while (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  ++stats_.installs;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string PlanCache::StatszJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t variants = 0;
  for (const auto& kv : entries_) variants += kv.second.variants.size();
  return util::StringPrintf(
      "{\"entries\":%zu,\"variants\":%zu,\"capacity\":%zu,\"hits\":%lld,"
      "\"rebinds\":%lld,\"misses\":%lld,\"invalidations\":%lld,"
      "\"installs\":%lld,\"variant_evictions\":%lld}",
      entries_.size(), variants, capacity_, (long long)stats_.hits,
      (long long)stats_.rebinds, (long long)stats_.misses,
      (long long)stats_.invalidations, (long long)stats_.installs,
      (long long)stats_.variant_evictions);
}

void PlanCache::TouchLocked(Entry& entry, const std::string& fingerprint) {
  lru_.erase(entry.lru_it);
  lru_.push_front(fingerprint);
  entry.lru_it = lru_.begin();
}

void PlanCache::TrimVariantsLocked(Entry& entry) {
  while (entry.variants.size() > kMaxVariantsPerEntry) {
    entry.variants.pop_back();
    ++stats_.variant_evictions;
  }
}

}  // namespace query
}  // namespace drugtree
