#include "query/planner.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "util/string_util.h"

namespace drugtree {
namespace query {

using storage::Table;
using storage::Value;
using storage::ValueType;

namespace {

/// True iff every column the expression references resolves in `schema`.
bool RefersOnly(const Expr& e, const storage::Schema& schema) {
  std::vector<std::string> cols;
  e.CollectColumns(&cols);
  for (const auto& c : cols) {
    if (!ResolveColumn(schema, c).ok()) return false;
  }
  return true;
}

/// Matches `col op literal` (either side); returns the canonical form.
struct ColLiteral {
  std::string column;   // qualified
  BinaryOp op;
  Value literal;
};

bool MatchColLiteral(const Expr& e, ColLiteral* out) {
  if (e.kind != ExprKind::kBinary) return false;
  switch (e.bin_op) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral) {
    out->column = l.column;
    out->op = e.bin_op;
    out->literal = r.literal;
    return true;
  }
  if (r.kind == ExprKind::kColumnRef && l.kind == ExprKind::kLiteral) {
    out->column = r.column;
    out->literal = l.literal;
    switch (e.bin_op) {
      case BinaryOp::kEq: out->op = BinaryOp::kEq; break;
      case BinaryOp::kLt: out->op = BinaryOp::kGt; break;
      case BinaryOp::kLe: out->op = BinaryOp::kGe; break;
      case BinaryOp::kGt: out->op = BinaryOp::kLt; break;
      case BinaryOp::kGe: out->op = BinaryOp::kLe; break;
      default: return false;
    }
    return true;
  }
  return false;
}

/// Strips the "alias." prefix.
std::string UnqualifiedName(const std::string& qualified) {
  size_t dot = qualified.find('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

}  // namespace

ParallelContext Planner::MakeParallelContext(const PlannerOptions& options) {
  if (options.parallelism <= 1) return {};
  // The ParallelFor caller participates in the work loop, so a pool of
  // parallelism - 1 threads yields `parallelism` workers in total.
  int workers = options.parallelism - 1;
  if (pool_ == nullptr || pool_workers_ != workers) {
    pool_ = std::make_unique<util::ThreadPool>(workers);
    pool_workers_ = workers;
  }
  ParallelContext par;
  par.pool = pool_.get();
  par.parallelism = options.parallelism;
  return par;
}

util::Result<PhysicalPtr> Planner::ToPhysical(const LogicalPtr& node,
                                              const PlannerOptions& options,
                                              ExecStats* stats) {
  EvalContext ctx{catalog_->tree(), catalog_->tree_index()};
  ParallelContext par = MakeParallelContext(options);
  switch (node->kind) {
    case LogicalKind::kScan: {
      DRUGTREE_ASSIGN_OR_RETURN(Table * table, catalog_->Lookup(node->table));
      if (!options.enable_index_selection || !node->scan_predicate) {
        return PhysicalPtr(std::make_unique<SeqScanOp>(
            table, node->alias,
            node->scan_predicate ? node->scan_predicate->Clone() : nullptr,
            ctx, stats, par));
      }
      // Index selection: find the best access path among the conjuncts.
      auto conjuncts = SplitConjuncts(node->scan_predicate);
      // Candidate 1: equality on an indexed column.
      int best_eq = -1;
      // Candidate 2: range bounds on an indexed (B+-tree) column; collect
      // all range conjuncts for the same column.
      std::string best_range_col;
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        ColLiteral cl;
        if (!MatchColLiteral(*conjuncts[i], &cl)) continue;
        std::string col = UnqualifiedName(cl.column);
        if (cl.op == BinaryOp::kEq && table->HasIndex(col)) {
          best_eq = static_cast<int>(i);
          break;  // equality is always the best choice
        }
        if (cl.op != BinaryOp::kEq && table->GetBTreeIndex(col) != nullptr &&
            best_range_col.empty()) {
          best_range_col = col;
        }
      }
      if (best_eq >= 0) {
        ColLiteral cl;
        MatchColLiteral(*conjuncts[static_cast<size_t>(best_eq)], &cl);
        IndexScanOp::Bounds bounds;
        bounds.is_point = true;
        bounds.equal = cl.literal;
        std::vector<ExprPtr> residual;
        for (size_t i = 0; i < conjuncts.size(); ++i) {
          if (static_cast<int>(i) != best_eq) residual.push_back(conjuncts[i]);
        }
        return PhysicalPtr(std::make_unique<IndexScanOp>(
            table, node->alias, UnqualifiedName(cl.column), bounds,
            CombineConjuncts(residual), ctx, stats));
      }
      if (!best_range_col.empty()) {
        IndexScanOp::Bounds bounds;
        std::vector<ExprPtr> residual;
        for (auto& c : conjuncts) {
          ColLiteral cl;
          if (MatchColLiteral(*c, &cl) &&
              UnqualifiedName(cl.column) == best_range_col &&
              cl.op != BinaryOp::kEq) {
            switch (cl.op) {
              case BinaryOp::kLt:
              case BinaryOp::kLe:
                if (bounds.hi.is_null() || cl.literal.Compare(bounds.hi) < 0) {
                  bounds.hi = cl.literal;
                  bounds.hi_inclusive = cl.op == BinaryOp::kLe;
                }
                continue;
              case BinaryOp::kGt:
              case BinaryOp::kGe:
                if (bounds.lo.is_null() || cl.literal.Compare(bounds.lo) > 0) {
                  bounds.lo = cl.literal;
                  bounds.lo_inclusive = cl.op == BinaryOp::kGe;
                }
                continue;
              default:
                break;
            }
          }
          residual.push_back(c);
        }
        return PhysicalPtr(std::make_unique<IndexScanOp>(
            table, node->alias, best_range_col, bounds,
            CombineConjuncts(residual), ctx, stats));
      }
      return PhysicalPtr(std::make_unique<SeqScanOp>(
          table, node->alias, node->scan_predicate->Clone(), ctx, stats, par));
    }
    case LogicalKind::kFilter: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr child,
                                ToPhysical(node->children[0], options, stats));
      return PhysicalPtr(std::make_unique<FilterOp>(
          std::move(child), node->predicate->Clone(), ctx, stats));
    }
    case LogicalKind::kProject: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr child,
                                ToPhysical(node->children[0], options, stats));
      std::vector<OutputColumn> outputs;
      for (const auto& o : node->outputs) {
        outputs.push_back({o.expr->Clone(), o.name});
      }
      return PhysicalPtr(std::make_unique<ProjectOp>(std::move(child),
                                                     std::move(outputs), ctx));
    }
    case LogicalKind::kJoin: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr left,
                                ToPhysical(node->children[0], options, stats));
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr right,
                                ToPhysical(node->children[1], options, stats));
      // Split the condition into equi pairs and residual.
      std::vector<std::pair<ExprPtr, ExprPtr>> key_pairs;
      std::vector<ExprPtr> residual;
      if (node->join_condition && options.enable_hash_join) {
        const storage::Schema& ls = node->children[0]->schema;
        const storage::Schema& rs = node->children[1]->schema;
        for (auto& c : SplitConjuncts(node->join_condition)) {
          bool matched = false;
          if (c->kind == ExprKind::kBinary && c->bin_op == BinaryOp::kEq) {
            ExprPtr a = c->children[0];
            ExprPtr b = c->children[1];
            if (RefersOnly(*a, ls) && RefersOnly(*b, rs)) {
              key_pairs.emplace_back(a->Clone(), b->Clone());
              matched = true;
            } else if (RefersOnly(*b, ls) && RefersOnly(*a, rs)) {
              key_pairs.emplace_back(b->Clone(), a->Clone());
              matched = true;
            }
          }
          if (!matched) residual.push_back(c);
        }
      } else if (node->join_condition) {
        residual.push_back(node->join_condition->Clone());
      }
      if (!key_pairs.empty()) {
        return PhysicalPtr(std::make_unique<HashJoinOp>(
            std::move(left), std::move(right), std::move(key_pairs),
            CombineConjuncts(residual), ctx, stats, par));
      }
      return PhysicalPtr(std::make_unique<NestedLoopJoinOp>(
          std::move(left), std::move(right), CombineConjuncts(residual), ctx,
          stats));
    }
    case LogicalKind::kAggregate: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr child,
                                ToPhysical(node->children[0], options, stats));
      std::vector<ExprPtr> groups;
      for (const auto& g : node->group_by) groups.push_back(g->Clone());
      std::vector<OutputColumn> aggs;
      for (const auto& a : node->outputs) {
        aggs.push_back({a.expr->Clone(), a.name});
      }
      return PhysicalPtr(std::make_unique<HashAggregateOp>(
          std::move(child), std::move(groups), std::move(aggs), node->schema,
          ctx));
    }
    case LogicalKind::kSort: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr child,
                                ToPhysical(node->children[0], options, stats));
      std::vector<OrderKey> keys;
      for (const auto& k : node->order_by) {
        keys.push_back({k.expr->Clone(), k.ascending});
      }
      return PhysicalPtr(
          std::make_unique<SortOp>(std::move(child), std::move(keys), ctx));
    }
    case LogicalKind::kLimit: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr child,
                                ToPhysical(node->children[0], options, stats));
      return PhysicalPtr(std::make_unique<LimitOp>(std::move(child),
                                                   node->limit));
    }
    case LogicalKind::kDistinct: {
      DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr child,
                                ToPhysical(node->children[0], options, stats));
      return PhysicalPtr(std::make_unique<DistinctOp>(std::move(child)));
    }
  }
  return util::Status::Internal("unknown logical node kind");
}

util::Result<PhysicalPtr> Planner::Plan(const std::string& sql,
                                        const PlannerOptions& options,
                                        ExecStats* stats) {
  DRUGTREE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseQuery(sql));
  DRUGTREE_ASSIGN_OR_RETURN(LogicalPtr logical,
                            BuildLogicalPlan(stmt, *catalog_));
  DRUGTREE_ASSIGN_OR_RETURN(
      LogicalPtr optimized,
      OptimizeLogicalPlan(logical, *catalog_, options.optimizer));
  return ToPhysical(optimized, options, stats);
}

util::Result<QueryOutcome> Planner::Run(const std::string& sql,
                                        const PlannerOptions& options,
                                        const QueryContext* context) {
  if (context != nullptr) {
    DRUGTREE_RETURN_IF_ERROR(context->Check());
  }
  obs::TraceContext* trace = obs::TraceContext::Current();
  DRUGTREE_ASSIGN_OR_RETURN(Statement stmt, [&] {
    obs::TracePhaseScope plan_phase(obs::TracePhase::kPlan);
    DT_SPAN("query.parse");
    return ParseStatement(sql);
  }());
  // EXPLAIN [ANALYZE] always runs the full pipeline: a cached result would
  // have no plan to show.
  std::string cache_key;
  const bool use_cache = options.use_result_cache &&
                         result_cache_ != nullptr &&
                         stmt.explain == ExplainMode::kNone;
  // Literal normalization: tags every literal in the statement with its
  // positional ordinal (in place), and yields the canonical text (result
  // cache key — skipped when unused, it is pure rendering cost on the
  // plan-cache hit path) plus the structural fingerprint (plan cache key).
  // Both keys derive from one traversal, so equivalent statements agree by
  // construction.
  NormalizedStatement norm = [&] {
    obs::TracePhaseScope plan_phase(obs::TracePhase::kPlan);
    return NormalizeStatement(&stmt.select, /*want_canonical=*/use_cache);
  }();
  if (use_cache) {
    cache_key = ResultCache::MakeKey(norm.canonical, catalog_->epoch());
    if (auto cached = result_cache_->Get(cache_key)) {
      if (trace != nullptr) trace->BumpCounter("result_cache_hit");
      QueryOutcome outcome;
      outcome.result = std::move(*cached);
      outcome.from_result_cache = true;
      return outcome;
    }
    if (trace != nullptr) trace->BumpCounter("result_cache_miss");
  }
  // Optimization prices plans with the calibrator's current coefficient
  // snapshot (defaults when no calibrator is attached). The snapshot's
  // version is part of the plan-cache signature, so a recalibration
  // invalidates plans priced under the old coefficients.
  obs::CalibratedCosts costs;
  OptimizerOptions optimizer = options.optimizer;
  if (calibrator_ != nullptr) {
    costs = calibrator_->snapshot();
    optimizer.costs = &costs;
  }
  QueryOutcome outcome;
  PlanCache::VersionSignature versions;
  LogicalPtr optimized;
  if (plan_cache_ != nullptr) {
    obs::TracePhaseScope plan_phase(obs::TracePhase::kPlan);
    DT_SPAN("query.plan.cache");
    versions = PlanCache::CaptureVersions(*catalog_, stmt.select,
                                          costs.version);
    PlanCache::Lookup lookup =
        plan_cache_->Get(norm.fingerprint, versions, norm.params);
    if (lookup.plan != nullptr) {
      optimized = std::move(lookup.plan);
      outcome.from_plan_cache = true;
    }
    if (trace != nullptr) {
      trace->BumpCounter(outcome.from_plan_cache ? "plan_cache_hit"
                                                 : "plan_cache_miss");
    }
  }
  if (optimized == nullptr) {
    DRUGTREE_ASSIGN_OR_RETURN(optimized, [&] {
      obs::TracePhaseScope plan_phase(obs::TracePhase::kPlan);
      DT_SPAN("query.optimize");
      util::Result<LogicalPtr> logical =
          BuildLogicalPlan(stmt.select, *catalog_);
      if (!logical.ok()) return logical;
      return OptimizeLogicalPlan(*logical, *catalog_, optimizer);
    }());
    if (plan_cache_ != nullptr) {
      plan_cache_->Install(norm.fingerprint, optimized, norm.params, versions);
    }
  }
  outcome.logical_plan = optimized->ToString();
  DRUGTREE_ASSIGN_OR_RETURN(PhysicalPtr physical, [&] {
    obs::TracePhaseScope plan_phase(obs::TracePhase::kPlan);
    DT_SPAN("query.plan.physical");
    return ToPhysical(optimized, options, &outcome.stats);
  }());
  outcome.physical_plan = physical->ExplainString();
  if (outcome.from_plan_cache) {
    // Mirror the shard router's "route: ..." convention so EXPLAIN shows
    // when the optimizer was skipped.
    outcome.physical_plan = "plan: cached\n" + outcome.physical_plan;
  }
  if (stmt.explain == ExplainMode::kPlan) {
    // Plan-only: the plan texts are the result.
    return outcome;
  }
  // Per-operator analyze instrumentation: explicit EXPLAIN ANALYZE, or
  // opted in by the serving layer so slow-query forensics has the plan of
  // an offender without re-running it.
  const bool analyze =
      stmt.explain == ExplainMode::kAnalyze ||
      (context != nullptr && context->collect_analyze);
  if (analyze) {
    physical->EnableAnalyze(obs::Tracer::Default()->clock());
  }
  {
    obs::TracePhaseScope execute_phase(obs::TracePhase::kExecute);
    DRUGTREE_ASSIGN_OR_RETURN(
        outcome.result,
        ExecutePlan(physical.get(), context, options.batch_size));
  }
  if (analyze) {
    obs::ExplainNode analyzed = physical->AnalyzeTree();
    outcome.analyzed_plan = obs::RenderExplainTree(analyzed);
    if (trace != nullptr) trace->set_analyzed_plan(outcome.analyzed_plan);
    // Close the loop: fold the observed per-operator timings back into the
    // cost coefficients future optimizations will price plans with.
    if (calibrator_ != nullptr) calibrator_->Observe(analyzed);
  }
  if (use_cache) {
    result_cache_->Put(cache_key, outcome.result);
  }
  return outcome;
}

}  // namespace query
}  // namespace drugtree
