// Cost-based join-order enumeration.
//
// Input: the query's base relations (with post-pushdown cardinality
// estimates) and the binary join predicates between them. Output: a
// left-deep join order minimizing the estimated sum of intermediate result
// sizes. Exact dynamic programming over connected subsets up to
// kDpTableLimit relations, greedy (smallest-intermediate-first) beyond that.

#ifndef DRUGTREE_QUERY_JOIN_ORDER_H_
#define DRUGTREE_QUERY_JOIN_ORDER_H_

#include <string>
#include <vector>

#include "query/cost_model.h"
#include "query/expr.h"
#include "util/result.h"

namespace drugtree {
namespace query {

/// One base relation entering join ordering.
struct JoinRelation {
  std::string alias;
  double estimated_rows = 1.0;
};

/// A binary predicate connecting two relations (by index into the relation
/// list). `selectivity` was estimated by the cost model.
struct JoinEdge {
  size_t left_rel;
  size_t right_rel;
  ExprPtr condition;
  double selectivity = 0.01;
};

/// The chosen order: relation indices, left-deep; step i joins order[i] into
/// the accumulated left side. conditions[i-1] holds the predicates applied
/// at step i (possibly empty = cross product).
struct JoinOrderResult {
  std::vector<size_t> order;
  std::vector<std::vector<ExprPtr>> conditions;
  double estimated_cost = 0.0;
};

inline constexpr size_t kDpTableLimit = 12;

/// Chooses a join order. With `enable_reordering` false, keeps the textual
/// order (still attaching conditions at the right steps) — the E2 baseline.
/// `costs` prices each join step: connected steps pay hash_probe_row per
/// intermediate row, cross products pay cross_product_penalty. The default
/// coefficients reproduce the historical ordering exactly.
util::Result<JoinOrderResult> ChooseJoinOrder(
    const std::vector<JoinRelation>& relations,
    const std::vector<JoinEdge>& edges, bool enable_reordering,
    const obs::CalibratedCosts& costs = obs::CalibratedCosts());

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_JOIN_ORDER_H_
