// Semantic result cache for whole queries.
//
// Keys combine the canonicalized statement text with the catalog's data
// epoch, so any data change (BumpEpoch) invalidates prior entries without
// scanning the cache. This is the second "novel mechanism" layer: repeated
// interactive queries over the same overlay (the common case for a mobile
// analyst panning around a clade) skip the engine entirely.

#ifndef DRUGTREE_QUERY_RESULT_CACHE_H_
#define DRUGTREE_QUERY_RESULT_CACHE_H_

#include <mutex>
#include <optional>
#include <string>

#include "query/executor.h"
#include "storage/lru_cache.h"

namespace drugtree {
namespace query {

/// Thread-safe: Get/Put/Clear serialize on an internal mutex (Get mutates
/// LRU recency), so one cache can sit behind every worker of the serving
/// layer. stats() follows the registry snapshot contract — exact once
/// writers quiesce.
class ResultCache {
 public:
  explicit ResultCache(uint64_t capacity_bytes) : cache_(capacity_bytes) {
    cache_.EnableMetrics("query.result_cache");
  }

  /// Cache key for a statement under a data epoch.
  static std::string MakeKey(const std::string& canonical_query,
                             uint64_t epoch);

  std::optional<QueryResult> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.Get(key);
  }

  void Put(const std::string& key, QueryResult result) {
    uint64_t charge = result.ApproxBytes();
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Put(key, std::move(result), charge);
  }

  /// Mirrors the cache's resident bytes into a server-owned tracker node
  /// (see LruCache::AttachMemoryTracker). Call before concurrent use.
  void AttachMemoryTracker(obs::MemoryTracker* tracker) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.AttachMemoryTracker(tracker);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Clear();
  }
  const storage::CacheStats& stats() const { return cache_.stats(); }

 private:
  std::mutex mu_;
  storage::LruCache<std::string, QueryResult> cache_;
};

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_RESULT_CACHE_H_
