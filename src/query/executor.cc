#include "query/executor.h"

#include <algorithm>

#include "obs/resource_tracker.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace drugtree {
namespace query {

uint64_t QueryResult::ApproxBytes() const {
  uint64_t bytes = 64;
  for (const auto& c : columns) bytes += c.size();
  for (const auto& row : rows) {
    bytes += 16;
    for (const auto& v : row) {
      bytes += 16;
      if (v.type() == storage::ValueType::kString) bytes += v.AsString().size();
    }
  }
  return bytes;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size() && c < columns.size(); ++c) {
      cells[r].push_back(rows[r][c].ToString());
      widths[c] = std::max(widths[c], cells[r].back().size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& vals) {
    out += "|";
    for (size_t c = 0; c < columns.size(); ++c) {
      std::string v = c < vals.size() ? vals[c] : "";
      out += " " + v + std::string(widths[c] - v.size(), ' ') + " |";
    }
    out += "\n";
  };
  emit_row(columns);
  out += "|";
  for (size_t c = 0; c < columns.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& r : cells) emit_row(r);
  if (rows.size() > shown) {
    out += util::StringPrintf("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

util::Result<QueryResult> ExecutePlan(PhysicalOperator* root,
                                      const QueryContext* context,
                                      size_t batch_size) {
  DT_SPAN("query.execute");
  if (context != nullptr) root->SetQueryContext(context);
  if (batch_size > 1) root->SetBatchSize(batch_size);
  DRUGTREE_RETURN_IF_ERROR(root->Open());
  QueryResult result;
  for (const auto& c : root->schema().columns()) {
    result.columns.push_back(c.name);
  }
  // Result-buffer accounting: growth is charged against the query's tracker
  // as rows accumulate (so a runaway result aborts at the hard limit, and
  // its size lands in the peak watermark) and released on exit — the buffer
  // is handed to the caller, whose own tracker node takes over ownership.
  obs::MemoryTracker* tracker = context != nullptr ? context->memory : nullptr;
  struct Charged {
    obs::MemoryTracker* t;
    int64_t n = 0;
    ~Charged() {
      if (t != nullptr && n > 0) t->Release(n);
    }
  } charged{tracker};
  if (batch_size > 1) {
    storage::RowBatch batch;
    for (;;) {
      DRUGTREE_ASSIGN_OR_RETURN(bool more, root->NextBatch(&batch));
      if (!more) break;
      if (tracker != nullptr) {
        int64_t bytes = static_cast<int64_t>(batch.ApproxBytes());
        DRUGTREE_RETURN_IF_ERROR(tracker->TryCharge(bytes));
        charged.n += bytes;
      }
      batch.EmitRowsTo(&result.rows);
    }
    return result;
  }
  storage::Row row;
  int64_t pending = 0;
  for (;;) {
    DRUGTREE_ASSIGN_OR_RETURN(bool more, root->Next(&row));
    if (!more) break;
    if (tracker != nullptr) {
      pending += 32 + static_cast<int64_t>(row.size()) * 16;
      for (const auto& v : row) {
        if (v.type() == storage::ValueType::kString) {
          pending += static_cast<int64_t>(v.AsString().size());
        }
      }
      if (pending >= 64 * 1024) {
        DRUGTREE_RETURN_IF_ERROR(tracker->TryCharge(pending));
        charged.n += pending;
        pending = 0;
      }
    }
    result.rows.push_back(std::move(row));
  }
  if (tracker != nullptr && pending > 0) {
    DRUGTREE_RETURN_IF_ERROR(tracker->TryCharge(pending));
    charged.n += pending;
  }
  return result;
}

}  // namespace query
}  // namespace drugtree
