// Query results and the pull-to-completion executor.

#ifndef DRUGTREE_QUERY_EXECUTOR_H_
#define DRUGTREE_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "query/physical.h"
#include "util/result.h"

namespace drugtree {
namespace query {

/// A fully materialized query result.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<storage::Row> rows;

  /// Rough in-memory footprint, used as the result-cache charge.
  uint64_t ApproxBytes() const;

  /// ASCII table rendering (for examples and debugging).
  std::string ToString(size_t max_rows = 50) const;
};

/// Opens `root` and drains it into a QueryResult.
util::Result<QueryResult> ExecutePlan(PhysicalOperator* root);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_EXECUTOR_H_
