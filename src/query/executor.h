// Query results and the pull-to-completion executor.

#ifndef DRUGTREE_QUERY_EXECUTOR_H_
#define DRUGTREE_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "query/physical.h"
#include "query/query_context.h"
#include "util/result.h"

namespace drugtree {
namespace query {

/// A fully materialized query result.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<storage::Row> rows;

  /// Rough in-memory footprint, used as the result-cache charge.
  uint64_t ApproxBytes() const;

  /// ASCII table rendering (for examples and debugging).
  std::string ToString(size_t max_rows = 50) const;
};

/// Opens `root` and drains it into a QueryResult. A non-null `context`
/// attaches deadline/cancellation enforcement to the whole operator tree:
/// execution aborts with kCancelled at the next operator checkpoint once
/// the deadline passes or the cancel flag is set. `batch_size` > 1 drives
/// the plan through the vectorized NextBatch() pipeline (output is
/// row-for-row identical); 1 — the default, so existing callers are
/// untouched — drives the exact legacy row-at-a-time path.
util::Result<QueryResult> ExecutePlan(PhysicalOperator* root,
                                      const QueryContext* context = nullptr,
                                      size_t batch_size = 1);

}  // namespace query
}  // namespace drugtree

#endif  // DRUGTREE_QUERY_EXECUTOR_H_
