#include "obs/explain.h"

#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

void RenderNode(const ExplainNode& node, int depth, std::string* out) {
  *out += std::string(static_cast<size_t>(depth) * 2, ' ');
  *out += node.label;
  // bytes= only appears on operators that actually touched storage, so
  // non-scan nodes render exactly as before.
  std::string bytes =
      node.bytes_scanned > 0
          ? util::StringPrintf(" bytes=%lld",
                               static_cast<long long>(node.bytes_scanned))
          : std::string();
  *out += util::StringPrintf(
      " (rows=%lld next=%lld batches=%lld%s time=%.3fms)\n",
      static_cast<long long>(node.rows_out),
      static_cast<long long>(node.next_calls),
      static_cast<long long>(node.batches), bytes.c_str(),
      static_cast<double>(node.elapsed_micros) / 1000.0);
  for (const auto& child : node.children) RenderNode(child, depth + 1, out);
}

void NodeToJson(const ExplainNode& node, std::string* out) {
  std::string label;
  for (char c : node.label) {
    if (c == '"' || c == '\\') label += '\\';
    label += c;
  }
  *out += util::StringPrintf(
      "{\"label\":\"%s\",\"rows_out\":%lld,\"next_calls\":%lld,"
      "\"batches\":%lld,\"bytes_scanned\":%lld,\"elapsed_micros\":%lld",
      label.c_str(), static_cast<long long>(node.rows_out),
      static_cast<long long>(node.next_calls),
      static_cast<long long>(node.batches),
      static_cast<long long>(node.bytes_scanned),
      static_cast<long long>(node.elapsed_micros));
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ",";
      NodeToJson(node.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string RenderExplainTree(const ExplainNode& root) {
  std::string out;
  RenderNode(root, 0, &out);
  return out;
}

std::string ExplainTreeToJson(const ExplainNode& root) {
  std::string out;
  NodeToJson(root, &out);
  return out;
}

}  // namespace obs
}  // namespace drugtree
