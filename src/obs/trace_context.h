// Per-query request tracing: a TraceContext travels with one served request
// (or one mobile interaction) through every layer it touches — admission,
// queueing, dispatch, planning, operator execution, simulated-network fetches,
// and result serialization — and records a *phase timeline* stamped off
// util::Clock, so virtual-clock tests and benches get exact, deterministic
// attribution of where the request's time went.
//
// Propagation is thread-local: the layer that owns the request installs the
// context with ScopedTraceContext, and any instrumented code below it (the
// planner's phase scopes, SimulatedNetwork's blocked-time accounting, cache
// annotations) tags `TraceContext::Current()` without new plumbing through
// every call signature. A context handed across threads (submit thread ->
// worker) is internally mutex-guarded, so the handoff and concurrent
// annotations are race-free.
//
// Completed contexts are finalized into value-type TraceRecords and collected
// by obs::TraceStore (see trace_store.h) for slow-query forensics, Chrome
// trace export, and tail-latency attribution.

#ifndef DRUGTREE_OBS_TRACE_CONTEXT_H_
#define DRUGTREE_OBS_TRACE_CONTEXT_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/clock.h"

namespace drugtree {
namespace obs {

/// The named phases one request moves through. kFetchBlocked is special: it
/// is accumulated *inside* kExecute (time the executing request spent blocked
/// on the simulated link), so attribution reports subtract it from execute to
/// get on-CPU operator time.
enum class TracePhase : int {
  kAdmit = 0,        // Submit -> admitted (admission-control work)
  kQueueWait = 1,    // admitted -> dispatched onto a slot
  kPlan = 2,         // parse + optimize + physical planning
  kExecute = 3,      // operator-tree execution (includes fetch_blocked)
  kFetchBlocked = 4, // blocked on SimulatedNetwork completions
  kSerialize = 5,    // result packaging / response completion
  kRoute = 6,        // shard router: parse + routing decision
  kGather = 7,       // shard router: scatter hops + partial-result waits
};

inline constexpr int kNumTracePhases = 8;

const char* TracePhaseName(TracePhase phase);

/// One contiguous phase interval on the request's clock.
struct PhaseInterval {
  TracePhase phase = TracePhase::kAdmit;
  int64_t start_micros = 0;
  int64_t end_micros = 0;

  int64_t DurationMicros() const { return end_micros - start_micros; }
};

/// One simulated-network request attributed to this trace: which link
/// channel carried it and the [submit, ready) window it occupied. Rendered
/// as its own lane in the Chrome trace export.
struct FetchEvent {
  int channel = 0;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  uint64_t bytes = 0;
};

/// The finalized, value-type outcome of one traced request. Everything the
/// forensics pipeline needs survives here after the context is gone.
struct TraceRecord {
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  /// Attribution class, e.g. "interactive" / "analytic" / "mobile".
  std::string query_class;
  /// Export lane, e.g. "slot-2" (server slot) or "session-7".
  std::string lane;
  std::string sql;
  /// Terminal status: "ok", "cancelled", "shed", or an error string.
  std::string status;
  bool ok = false;
  /// Marked by the TraceStore when total latency crossed its threshold.
  bool slow = false;
  int64_t begin_micros = 0;
  int64_t end_micros = 0;
  std::array<int64_t, kNumTracePhases> phase_micros{};
  std::vector<PhaseInterval> intervals;
  std::vector<FetchEvent> fetches;
  std::map<std::string, int64_t> counters;  // cache hits, retries, ...
  /// Peak bytes held by the request's MemoryTracker over its lifetime
  /// (deterministic on a virtual-clock workload: charges are byte counts,
  /// not times). 0 when the server ran without resource accounting.
  int64_t peak_memory_bytes = 0;
  /// Thread CPU time consumed executing the request, in micros. Real time
  /// (CLOCK_THREAD_CPUTIME_ID), so forensics can tell a heavy query from a
  /// queued one — never asserted on in deterministic tests.
  int64_t cpu_micros = 0;
  /// EXPLAIN ANALYZE of the executed plan; only captured when the owner ran
  /// with analyze collection on (the slow-query forensics path).
  std::string analyzed_plan;
  /// Captured span tree (shared so records stay copyable); null unless the
  /// tracer was capturing while this context was installed.
  std::shared_ptr<Span> root_span;

  int64_t TotalMicros() const { return end_micros - begin_micros; }
  int64_t PhaseMicros(TracePhase phase) const {
    return phase_micros[static_cast<size_t>(phase)];
  }

  /// The full phase timeline, one interval per line — what the slow-query
  /// log dumps:
  ///   [trace 17 interactive slot-0] total=12.40ms status=ok
  ///     queue_wait   0us .. 10000us  (10000us)
  ///     ...
  std::string TimelineString() const;
};

class TraceContext {
 public:
  /// `clock` is borrowed and must outlive the context; it stamps every
  /// phase boundary (SimulatedClock -> deterministic timelines).
  TraceContext(uint64_t trace_id, const util::Clock* clock);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t trace_id() const { return trace_id_; }
  const util::Clock* clock() const { return clock_; }

  // Identity labels (set once by the owning layer, before concurrent use).
  void set_session_id(uint64_t id);
  void set_query_class(std::string query_class);
  void set_lane(std::string lane);
  void set_sql(std::string sql);

  /// Opens `phase` at the clock's current time. Phases may not overlap
  /// themselves but may nest logically (kFetchBlocked accrues inside
  /// kExecute via AddBlockedMicros, not Begin/End).
  void BeginPhase(TracePhase phase);

  /// Closes the most recent open interval of `phase` at the current time.
  /// A close without a matching open is ignored (defensive).
  void EndPhase(TracePhase phase);

  /// Records an explicit interval (used when the boundary stamps were taken
  /// elsewhere, e.g. admission's enqueue time under the server mutex).
  void AddPhaseInterval(TracePhase phase, int64_t start_micros,
                        int64_t end_micros);

  /// Attributes `micros` of blocked time ending now to `phase` — what the
  /// simulated network calls when it advances the clock to a completion.
  void AddBlockedMicros(TracePhase phase, int64_t micros);

  /// Records one simulated-network request occupying `channel` over
  /// [start, ready).
  void AddFetchEvent(int channel, int64_t start_micros, int64_t end_micros,
                     uint64_t bytes);

  /// Adds `delta` to the named per-trace counter (cache hits, retries, ...).
  void BumpCounter(const std::string& name, int64_t delta = 1);

  /// Stores the EXPLAIN ANALYZE text of the executed plan.
  void set_analyzed_plan(std::string analyzed_plan);

  /// Resource accounting stamped by the serving layer at completion.
  void set_peak_memory_bytes(int64_t bytes);
  void set_cpu_micros(int64_t micros);

  /// Adopts a completed root span tree (called by Tracer when a root span
  /// closes while this context is installed — the per-query fix for the
  /// process-global last-trace clobber).
  void AdoptRootSpan(std::unique_ptr<Span> root);

  /// Total micros attributed to `phase` so far.
  int64_t PhaseMicros(TracePhase phase) const;

  /// Closes any still-open intervals and freezes everything into a record.
  /// `status` is the terminal status string; `ok` marks success.
  TraceRecord Finish(std::string status, bool ok);

  // Thread-local propagation ---------------------------------------------

  /// The context installed on this thread (null when untraced).
  static TraceContext* Current();

 private:
  friend class ScopedTraceContext;

  const uint64_t trace_id_;
  const util::Clock* clock_;
  const int64_t begin_micros_;

  mutable std::mutex mu_;
  TraceRecord record_;  // labels + accumulated state, finalized by Finish
  std::array<int64_t, kNumTracePhases> open_start_{};  // -1 = not open
};

/// RAII installer: makes `context` the thread's current trace context for
/// the enclosing scope (restoring the previous one on exit, so nested
/// traced scopes compose).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext* context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext* prev_;
};

/// RAII phase scope on the *current* context: opens `phase` if a context is
/// installed, closes it on exit. Free when no context is installed (one
/// thread-local read).
class TracePhaseScope {
 public:
  explicit TracePhaseScope(TracePhase phase)
      : context_(TraceContext::Current()), phase_(phase) {
    if (context_ != nullptr) context_->BeginPhase(phase_);
  }
  ~TracePhaseScope() {
    if (context_ != nullptr) context_->EndPhase(phase_);
  }

  TracePhaseScope(const TracePhaseScope&) = delete;
  TracePhaseScope& operator=(const TracePhaseScope&) = delete;

 private:
  TraceContext* context_;
  TracePhase phase_;
};

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_TRACE_CONTEXT_H_
