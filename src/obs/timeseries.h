// Continuous telemetry, part 1: metric history.
//
// Every other observability surface (Statusz, registry snapshots, the
// TraceStore) is point-in-time; nothing in the process retains *history*,
// so nobody can compute a rate, watch a burn unfold, or gate a PR on a
// timeline. TimeSeriesStore is that history: a map of named series, each a
// fixed-capacity ring of (t_micros, value) points, cheap enough to keep on
// every server.
//
// MetricsSampler fills the store from the existing sources on the
// provided util::Clock:
//   * registry counters are *differenced into per-second rates*
//     ("<full_name>.rate" series; the first sample seeds, no bogus spike);
//   * registry gauges are recorded verbatim;
//   * registry histograms are sampled as ".p50" / ".p95" / ".p99" series;
//   * arbitrary probes (SloTracker burn rates, MemoryTracker pressure,
//     plan-cache hit rate) are registered as closures returning a double —
//     a NaN return means "no data yet" and skips the point.
//
// Labelled registry metrics fan out naturally: each label combination is
// its own FullName, hence its own series ("server.admission.queue_depth
// {class=interactive,shard=s2r0}"), so per-shard / per-class history falls
// out of the existing label scheme.
//
// Determinism: the sampler never owns a thread. SampleIfDue() is invoked
// from well-defined points (request completion, Drain, Statusz, explicit
// test ticks); on a SimulatedClock with a serialized workload, two runs
// produce bit-identical timelines — which is what lets perf_gate.sh diff
// timelines byte-for-byte against a recorded baseline.

#ifndef DRUGTREE_OBS_TIMESERIES_H_
#define DRUGTREE_OBS_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace drugtree {
namespace obs {

struct TimePoint {
  int64_t t_micros = 0;
  double value = 0.0;
};

/// Named series of fixed-capacity rings. Thread-safe (one mutex: writes are
/// sampler-cadence, not hot-path).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(size_t capacity_per_series = 240);

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Appends one point; evicts the series' oldest point at capacity.
  void Observe(const std::string& series, int64_t t_micros, double value);

  /// The retained points, oldest first. Empty when the series is unknown.
  std::vector<TimePoint> Points(const std::string& series) const;

  /// Every series name, sorted.
  std::vector<std::string> SeriesNames() const;

  /// Latest retained point; false when the series is absent or empty.
  bool Latest(const std::string& series, TimePoint* out) const;

  /// Mean over retained points with t in (now - window_micros, now]; false
  /// when no point falls inside the window.
  bool WindowAverage(const std::string& series, int64_t now_micros,
                     int64_t window_micros, double* out) const;

  size_t capacity_per_series() const { return capacity_; }
  size_t num_series() const;
  /// Total points ever observed (including evicted ones).
  int64_t total_points() const;

  /// JSON *array* of per-series summaries (embedded in Statusz "timeline"):
  /// [{"name":...,"points":N,"observed":M,"first_t":...,"last_t":...,
  ///   "last":...,"min":...,"max":...,"mean":...},...]
  std::string SummaryJson() const;

  /// Full dump: {"capacity":N,"series":[{"name":...,"observed":M,
  /// "points":[[t,v],...]},...]} — the perf_gate.sh diff artifact.
  std::string ToJson() const;

  void Clear();

 private:
  struct Ring {
    std::vector<TimePoint> points;  // capacity-bounded, next wraps
    size_t next = 0;
    int64_t observed = 0;
  };

  /// Chronological copy of a ring. Caller holds mu_.
  std::vector<TimePoint> OrderedLocked(const Ring& ring) const;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Ring> series_;
  int64_t total_points_ = 0;
};

struct SamplerOptions {
  /// Minimum micros between samples (SampleIfDue debounce).
  int64_t interval_micros = 250'000;
  /// Registry metric *name* prefixes to sample (matched against the bare
  /// name, before labels; every label combination of a matching name
  /// becomes its own series). Empty = sample nothing from the registry.
  std::vector<std::string> registry_prefixes;
};

/// Fills a TimeSeriesStore from the metric registry + registered probes.
/// Never owns a thread: callers decide when SampleIfDue()/SampleNow() run.
class MetricsSampler {
 public:
  /// All pointers are borrowed and must outlive the sampler.
  MetricsSampler(TimeSeriesStore* store, MetricRegistry* registry,
                 const util::Clock* clock, SamplerOptions options);

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Registers a scalar probe evaluated at every sample, in registration
  /// order. A NaN return skips the point (no data yet).
  void AddProbe(std::string series, std::function<double()> probe);

  /// Lock-free advisory check: would SampleIfDue() sample now? The serving
  /// hot path calls this before taking any telemetry lock, so an
  /// off-cadence tick costs one relaxed load and a clock read.
  bool Due() const;

  /// Samples when at least interval_micros elapsed since the last sample
  /// (always samples the first call). Returns whether a sample was taken.
  bool SampleIfDue();

  /// Unconditional sample (tests, Statusz with a stale timeline).
  void SampleNow();

  int64_t samples() const;
  int64_t last_sample_micros() const;  // -1 before the first sample

  const SamplerOptions& options() const { return options_; }

 private:
  /// Caller holds mu_.
  void SampleLocked(int64_t now_micros);

  TimeSeriesStore* const store_;
  MetricRegistry* const registry_;
  const util::Clock* const clock_;
  const SamplerOptions options_;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;
  std::map<std::string, int64_t> prev_counters_;  // FullName -> last value
  int64_t last_sample_micros_ = -1;
  int64_t samples_ = 0;
  // Mirror of last_sample_micros_ for the lock-free Due() fast path;
  // advisory only — SampleIfDue() re-decides under mu_.
  std::atomic<int64_t> last_sample_relaxed_{-1};
};

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_TIMESERIES_H_
