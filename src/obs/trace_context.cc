#include "obs/trace_context.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

thread_local TraceContext* tls_current = nullptr;

}  // namespace

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kAdmit: return "admit";
    case TracePhase::kQueueWait: return "queue_wait";
    case TracePhase::kPlan: return "plan";
    case TracePhase::kExecute: return "execute";
    case TracePhase::kFetchBlocked: return "fetch_blocked";
    case TracePhase::kSerialize: return "serialize";
    case TracePhase::kRoute: return "route";
    case TracePhase::kGather: return "gather";
  }
  return "unknown";
}

std::string TraceRecord::TimelineString() const {
  std::string out = util::StringPrintf(
      "[trace %llu %s %s session=%llu] total=%.3fms status=%s\n",
      (unsigned long long)trace_id, query_class.c_str(), lane.c_str(),
      (unsigned long long)session_id,
      static_cast<double>(TotalMicros()) / 1000.0, status.c_str());
  for (const auto& iv : intervals) {
    out += util::StringPrintf(
        "  %-13s %8lldus .. %8lldus  (%lldus)\n", TracePhaseName(iv.phase),
        (long long)(iv.start_micros - begin_micros),
        (long long)(iv.end_micros - begin_micros),
        (long long)iv.DurationMicros());
  }
  for (const auto& f : fetches) {
    out += util::StringPrintf(
        "  fetch ch%-2d    %8lldus .. %8lldus  (%llu bytes)\n", f.channel,
        (long long)(f.start_micros - begin_micros),
        (long long)(f.end_micros - begin_micros), (unsigned long long)f.bytes);
  }
  if (peak_memory_bytes > 0 || cpu_micros > 0) {
    out += util::StringPrintf("  resources     peak_mem=%lldB cpu=%lldus\n",
                              (long long)peak_memory_bytes,
                              (long long)cpu_micros);
  }
  for (const auto& [name, value] : counters) {
    out += util::StringPrintf("  #%s=%lld\n", name.c_str(), (long long)value);
  }
  if (!sql.empty()) out += "  sql: " + sql + "\n";
  return out;
}

TraceContext::TraceContext(uint64_t trace_id, const util::Clock* clock)
    : trace_id_(trace_id), clock_(clock), begin_micros_(clock->NowMicros()) {
  record_.trace_id = trace_id;
  record_.begin_micros = begin_micros_;
  open_start_.fill(-1);
}

void TraceContext::set_session_id(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.session_id = id;
}

void TraceContext::set_query_class(std::string query_class) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.query_class = std::move(query_class);
}

void TraceContext::set_lane(std::string lane) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.lane = std::move(lane);
}

void TraceContext::set_sql(std::string sql) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.sql = std::move(sql);
}

void TraceContext::BeginPhase(TracePhase phase) {
  std::lock_guard<std::mutex> lock(mu_);
  open_start_[static_cast<size_t>(phase)] = clock_->NowMicros();
}

void TraceContext::EndPhase(TracePhase phase) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t& start = open_start_[static_cast<size_t>(phase)];
  if (start < 0) return;  // unmatched close
  int64_t end = clock_->NowMicros();
  record_.intervals.push_back({phase, start, end});
  record_.phase_micros[static_cast<size_t>(phase)] += end - start;
  start = -1;
}

void TraceContext::AddPhaseInterval(TracePhase phase, int64_t start_micros,
                                    int64_t end_micros) {
  if (end_micros < start_micros) end_micros = start_micros;
  std::lock_guard<std::mutex> lock(mu_);
  record_.intervals.push_back({phase, start_micros, end_micros});
  record_.phase_micros[static_cast<size_t>(phase)] +=
      end_micros - start_micros;
}

void TraceContext::AddBlockedMicros(TracePhase phase, int64_t micros) {
  if (micros <= 0) return;
  int64_t end = clock_->NowMicros();
  AddPhaseInterval(phase, end - micros, end);
}

void TraceContext::AddFetchEvent(int channel, int64_t start_micros,
                                 int64_t end_micros, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.fetches.push_back({channel, start_micros, end_micros, bytes});
}

void TraceContext::BumpCounter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.counters[name] += delta;
}

void TraceContext::set_analyzed_plan(std::string analyzed_plan) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.analyzed_plan = std::move(analyzed_plan);
}

void TraceContext::set_peak_memory_bytes(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.peak_memory_bytes = bytes;
}

void TraceContext::set_cpu_micros(int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.cpu_micros = micros;
}

void TraceContext::AdoptRootSpan(std::unique_ptr<Span> root) {
  std::lock_guard<std::mutex> lock(mu_);
  record_.root_span = std::shared_ptr<Span>(std::move(root));
}

int64_t TraceContext::PhaseMicros(TracePhase phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_.phase_micros[static_cast<size_t>(phase)];
}

TraceRecord TraceContext::Finish(std::string status, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = clock_->NowMicros();
  for (int p = 0; p < kNumTracePhases; ++p) {
    if (open_start_[static_cast<size_t>(p)] >= 0) {
      record_.intervals.push_back({static_cast<TracePhase>(p),
                                   open_start_[static_cast<size_t>(p)], now});
      record_.phase_micros[static_cast<size_t>(p)] +=
          now - open_start_[static_cast<size_t>(p)];
      open_start_[static_cast<size_t>(p)] = -1;
    }
  }
  record_.end_micros = now;
  record_.status = std::move(status);
  record_.ok = ok;
  // Timeline order, not close order: intervals sorted by start time.
  std::stable_sort(record_.intervals.begin(), record_.intervals.end(),
                   [](const PhaseInterval& a, const PhaseInterval& b) {
                     return a.start_micros < b.start_micros;
                   });
  return std::move(record_);
}

TraceContext* TraceContext::Current() { return tls_current; }

ScopedTraceContext::ScopedTraceContext(TraceContext* context)
    : prev_(tls_current) {
  tls_current = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_current = prev_; }

}  // namespace obs
}  // namespace drugtree
