// Continuous telemetry, part 2: declarative alerting + health rollup.
//
// AlertEngine evaluates rules against a TimeSeriesStore on the provided
// util::Clock. Three rule kinds:
//
//   * kThreshold    — latest point vs a static threshold;
//   * kRateOfChange — slope between the last two points, per second
//                     (queue growth, plan-cache hit-rate collapse);
//   * kBurnRate     — SRE-style multi-window condition: the series' mean
//                     over BOTH a short and a long window must cross the
//                     threshold. The short window makes firing prompt, the
//                     long window suppresses one-sample blips.
//
// Each rule runs a firing state machine with for-duration debounce:
//
//   kInactive --cond--> kPending --cond held for_micros--> kFiring
//   kPending  --!cond-> kInactive            kFiring --!cond--> kInactive
//
// Transitions into and out of kFiring log at WARNING, are retained in a
// bounded history, surface in Statusz ("alerts" block), and render as
// Chrome-trace instant events (an "alerts" lane next to the phase lanes).
//
// HealthModel: per-subsystem health derived purely from active alerts —
// a firing kWarning rule marks its subsystem kDegraded, a firing kCritical
// rule marks it kCritical, overall = worst subsystem. The ShardRouter reads
// each replica's overall health when picking replicas, so a browned-out
// replica sheds load before it misses deadlines.
//
// Determinism: evaluation is pull-based (no thread); on a SimulatedClock
// with a serialized workload, firing / resolved timestamps are
// bit-identical across runs.

#ifndef DRUGTREE_OBS_ALERTS_H_
#define DRUGTREE_OBS_ALERTS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "obs/trace_store.h"
#include "util/clock.h"

namespace drugtree {
namespace obs {

enum class AlertKind { kThreshold, kRateOfChange, kBurnRate };
enum class AlertSeverity { kWarning, kCritical };
enum class AlertState { kInactive, kPending, kFiring };

const char* AlertKindName(AlertKind kind);
const char* AlertSeverityName(AlertSeverity severity);
const char* AlertStateName(AlertState state);

struct AlertRule {
  std::string name;       // unique within an engine
  std::string series;     // TimeSeriesStore series the rule watches
  std::string subsystem;  // health rollup bucket ("memory", "serving", ...)
  AlertKind kind = AlertKind::kThreshold;
  double threshold = 0.0;
  /// true: fire when value > threshold; false: fire when value < threshold.
  bool fire_above = true;
  /// Debounce: the condition must hold this long before kFiring (0 = fire
  /// on the first evaluation that sees the condition).
  int64_t for_micros = 0;
  /// kBurnRate windows; both means must cross the threshold.
  int64_t short_window_micros = 0;
  int64_t long_window_micros = 0;
  AlertSeverity severity = AlertSeverity::kWarning;
};

struct AlertTransition {
  std::string rule;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  int64_t at_micros = 0;
  double value = 0.0;  // the evaluated value driving the transition
};

struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kInactive;
  int64_t since_micros = 0;  // when the current state was entered
  double last_value = 0.0;
  bool has_value = false;  // the series produced an evaluable value
  int64_t fired = 0;       // cumulative kFiring entries
  int64_t resolved = 0;    // cumulative kFiring exits
};

class AlertEngine {
 public:
  /// `store` and `clock` are borrowed and must outlive the engine.
  AlertEngine(const TimeSeriesStore* store, const util::Clock* clock);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  void AddRule(AlertRule rule);

  /// Evaluates every rule at clock->NowMicros() and returns the transitions
  /// this pass produced. Entering / leaving kFiring logs at WARNING.
  std::vector<AlertTransition> Evaluate();

  std::vector<AlertStatus> Statuses() const;
  /// Bounded transition history, oldest first.
  std::vector<AlertTransition> History() const;
  int64_t firing_count() const;

  /// {"firing":N,"rules":[{"name":...,"kind":...,"series":...,
  ///  "subsystem":...,"severity":...,"state":...,"since_micros":...,
  ///  "last_value":...,"fired":N,"resolved":N},...],
  ///  "transitions":[{"rule":...,"to":...,"at_micros":...},...]}
  std::string ToJson() const;

  /// Chrome-trace instant events ("alert:<rule> firing" / "... resolved")
  /// on an "alerts" lane, one per kFiring entry/exit in the history.
  std::vector<TraceInstant> TraceInstants() const;

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    int64_t since_micros = 0;
    int64_t pending_since_micros = 0;
    double last_value = 0.0;
    bool has_value = false;
    int64_t fired = 0;
    int64_t resolved = 0;
  };

  static constexpr size_t kHistoryCapacity = 256;

  /// (value, has_value) for one rule at `now`. Caller holds mu_.
  bool EvaluateValueLocked(const AlertRule& rule, int64_t now,
                           double* value) const;
  void TransitionLocked(RuleState* rs, AlertState to, int64_t now,
                        std::vector<AlertTransition>* out);

  const TimeSeriesStore* const store_;
  const util::Clock* const clock_;

  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
  std::deque<AlertTransition> history_;
};

// Health rollup --------------------------------------------------------

enum class HealthState { kHealthy = 0, kDegraded = 1, kCritical = 2 };

const char* HealthStateName(HealthState state);

struct HealthSnapshot {
  std::map<std::string, HealthState> subsystems;
  HealthState overall = HealthState::kHealthy;

  /// {"overall":"healthy","subsystems":{"memory":"healthy",...}}
  std::string ToJson() const;
};

/// Derives per-subsystem health from active alerts: every baseline
/// subsystem starts kHealthy; each firing rule raises its subsystem to
/// kDegraded (kWarning) or kCritical (kCritical); overall = the worst.
HealthSnapshot DeriveHealth(const std::vector<AlertStatus>& statuses,
                            const std::vector<std::string>& baseline);

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_ALERTS_H_
