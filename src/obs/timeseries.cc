#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

/// Stable short rendering: integers print without a fraction, everything
/// else with 6 significant digits — byte-identical across runs of the same
/// binary, which is the perf-gate diff contract.
std::string FormatValue(double v) {
  return util::StringPrintf("%.6g", v);
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(size_t capacity_per_series)
    : capacity_(std::max<size_t>(2, capacity_per_series)) {}

void TimeSeriesStore::Observe(const std::string& series, int64_t t_micros,
                              double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Ring& ring = series_[series];
  if (ring.points.size() < capacity_) {
    ring.points.push_back({t_micros, value});
  } else {
    ring.points[ring.next] = {t_micros, value};
    ring.next = (ring.next + 1) % capacity_;
  }
  ++ring.observed;
  ++total_points_;
}

std::vector<TimePoint> TimeSeriesStore::OrderedLocked(const Ring& ring) const {
  std::vector<TimePoint> out;
  out.reserve(ring.points.size());
  if (ring.points.size() < capacity_) {
    out = ring.points;
    return out;
  }
  for (size_t i = 0; i < ring.points.size(); ++i) {
    out.push_back(ring.points[(ring.next + i) % capacity_]);
  }
  return out;
}

std::vector<TimePoint> TimeSeriesStore::Points(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return {};
  return OrderedLocked(it->second);
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    (void)ring;
    out.push_back(name);
  }
  return out;
}

bool TimeSeriesStore::Latest(const std::string& series, TimePoint* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end() || it->second.points.empty()) return false;
  const Ring& ring = it->second;
  size_t last = ring.points.size() < capacity_
                    ? ring.points.size() - 1
                    : (ring.next + capacity_ - 1) % capacity_;
  *out = ring.points[last];
  return true;
}

bool TimeSeriesStore::WindowAverage(const std::string& series,
                                    int64_t now_micros, int64_t window_micros,
                                    double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return false;
  double sum = 0.0;
  int64_t n = 0;
  for (const TimePoint& p : it->second.points) {
    if (p.t_micros > now_micros - window_micros && p.t_micros <= now_micros) {
      sum += p.value;
      ++n;
    }
  }
  if (n == 0) return false;
  *out = sum / static_cast<double>(n);
  return true;
}

size_t TimeSeriesStore::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

int64_t TimeSeriesStore::total_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_points_;
}

std::string TimeSeriesStore::SummaryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    std::vector<TimePoint> points = OrderedLocked(ring);
    if (points.empty()) continue;
    double mn = points.front().value, mx = points.front().value, sum = 0.0;
    for (const TimePoint& p : points) {
      mn = std::min(mn, p.value);
      mx = std::max(mx, p.value);
      sum += p.value;
    }
    if (!first_series) out += ",";
    first_series = false;
    out += util::StringPrintf(
        "{\"name\":\"%s\",\"points\":%zu,\"observed\":%lld,"
        "\"first_t\":%lld,\"last_t\":%lld,\"last\":%s,\"min\":%s,"
        "\"max\":%s,\"mean\":%s}",
        name.c_str(), points.size(), (long long)ring.observed,
        (long long)points.front().t_micros, (long long)points.back().t_micros,
        FormatValue(points.back().value).c_str(), FormatValue(mn).c_str(),
        FormatValue(mx).c_str(),
        FormatValue(sum / static_cast<double>(points.size())).c_str());
  }
  out += "]";
  return out;
}

std::string TimeSeriesStore::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = util::StringPrintf("{\"capacity\":%zu,\"series\":[",
                                       capacity_);
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    if (!first_series) out += ",";
    first_series = false;
    out += util::StringPrintf("{\"name\":\"%s\",\"observed\":%lld,\"points\":[",
                              name.c_str(), (long long)ring.observed);
    bool first_point = true;
    for (const TimePoint& p : OrderedLocked(ring)) {
      if (!first_point) out += ",";
      first_point = false;
      out += util::StringPrintf("[%lld,%s]", (long long)p.t_micros,
                                FormatValue(p.value).c_str());
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void TimeSeriesStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  total_points_ = 0;
}

MetricsSampler::MetricsSampler(TimeSeriesStore* store, MetricRegistry* registry,
                               const util::Clock* clock, SamplerOptions options)
    : store_(store),
      registry_(registry),
      clock_(clock),
      options_(std::move(options)) {}

void MetricsSampler::AddProbe(std::string series,
                              std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.emplace_back(std::move(series), std::move(probe));
}

bool MetricsSampler::Due() const {
  int64_t last = last_sample_relaxed_.load(std::memory_order_relaxed);
  return last < 0 || clock_->NowMicros() - last >= options_.interval_micros;
}

bool MetricsSampler::SampleIfDue() {
  if (!Due()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = clock_->NowMicros();
  if (last_sample_micros_ >= 0 &&
      now - last_sample_micros_ < options_.interval_micros) {
    return false;
  }
  SampleLocked(now);
  return true;
}

void MetricsSampler::SampleNow() {
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked(clock_->NowMicros());
}

void MetricsSampler::SampleLocked(int64_t now_micros) {
  for (const auto& [series, probe] : probes_) {
    double v = probe();
    if (std::isnan(v)) continue;
    store_->Observe(series, now_micros, v);
  }
  if (!options_.registry_prefixes.empty()) {
    double dt_seconds =
        last_sample_micros_ >= 0 && now_micros > last_sample_micros_
            ? static_cast<double>(now_micros - last_sample_micros_) / 1e6
            : 0.0;
    RegistrySnapshot snap = registry_->Snapshot();
    for (const MetricSnapshot& m : snap.metrics) {
      bool matched = false;
      for (const std::string& prefix : options_.registry_prefixes) {
        if (m.name.rfind(prefix, 0) == 0) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
      std::string full = m.FullName();
      switch (m.kind) {
        case MetricKind::kCounter: {
          auto it = prev_counters_.find(full);
          // First observation only seeds: a cumulative total differenced
          // against nothing would spike the rate series.
          if (it != prev_counters_.end() && dt_seconds > 0.0) {
            store_->Observe(full + ".rate", now_micros,
                            static_cast<double>(m.value - it->second) /
                                dt_seconds);
          }
          prev_counters_[full] = m.value;
          break;
        }
        case MetricKind::kGauge:
          store_->Observe(full, now_micros, static_cast<double>(m.value));
          break;
        case MetricKind::kHistogram:
          store_->Observe(full + ".p50", now_micros, m.hist.Percentile(50.0));
          store_->Observe(full + ".p95", now_micros, m.hist.Percentile(95.0));
          store_->Observe(full + ".p99", now_micros, m.hist.Percentile(99.0));
          break;
      }
    }
  }
  last_sample_micros_ = now_micros;
  last_sample_relaxed_.store(now_micros, std::memory_order_relaxed);
  ++samples_;
}

int64_t MetricsSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

int64_t MetricsSampler::last_sample_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sample_micros_;
}

}  // namespace obs
}  // namespace drugtree
