// EXPLAIN ANALYZE rendering. The query engine collects per-operator
// execution stats (rows_out, Next() calls, cumulative time) during a run and
// converts its operator tree into this module's neutral ExplainNode tree;
// obs renders it as an annotated plan (text or JSON) without depending on
// the query layer — so the dependency arrow stays query -> obs.

#ifndef DRUGTREE_OBS_EXPLAIN_H_
#define DRUGTREE_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace drugtree {
namespace obs {

/// One operator's annotated node in an EXPLAIN ANALYZE tree.
struct ExplainNode {
  std::string label;           // operator description, e.g. "HashJoin [...]"
  int64_t rows_out = 0;        // rows produced to the parent
  int64_t next_calls = 0;      // Next()/NextBatch() invocations (one per
                               // batch under vectorized execution)
  int64_t batches = 0;         // batches produced (0 on pure row paths)
  int64_t bytes_scanned = 0;   // bytes read from storage: encoded segment
                               // bytes on the encoded scan path, decoded
                               // batch bytes on the plain batch path
                               // (0 on row paths and non-scan operators)
  int64_t elapsed_micros = 0;  // cumulative time inside Open()+Next(),
                               // inclusive of children (Postgres-style)
  std::vector<ExplainNode> children;
};

/// Annotated plan tree:
///   Project [...] (rows=50 next=51 batches=1 time=0.41ms)
///     Sort [...] (rows=50 next=51 batches=0 time=0.39ms)
///       ...
std::string RenderExplainTree(const ExplainNode& root);

/// Nested-object JSON rendering of the same tree.
std::string ExplainTreeToJson(const ExplainNode& root);

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_EXPLAIN_H_
