// TraceStore: the bounded, lock-sharded ring buffer completed TraceRecords
// land in, plus the forensics pipeline that consumes it:
//
//   * slow-query log — records whose total latency crossed the configured
//     threshold are retained separately (full phase timeline + the
//     offender's EXPLAIN ANALYZE) and logged at WARNING;
//   * Chrome trace-event export — the whole store rendered as a
//     chrome://tracing / Perfetto-loadable JSON, one lane per server slot /
//     session and one lane per simulated-network channel;
//   * tail attribution — per query class, the p99 total latency and the
//     average share each phase contributed among the tail requests
//     ("p99 = 71% queue_wait / 22% fetch_blocked / ...").
//
// Sharding: records hash by trace id onto kShards independent rings, each
// with its own mutex, so concurrent server slots never contend on one lock.
// Capacity is fixed at construction; once a shard's ring is full the oldest
// record in that shard is overwritten (dropped() counts the overwrites).

#ifndef DRUGTREE_OBS_TRACE_STORE_H_
#define DRUGTREE_OBS_TRACE_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace_context.h"

namespace drugtree {
namespace obs {

/// Per-class tail-latency attribution over a set of trace records. Phase
/// shares are averages over the tail (records with total >= p99), computed
/// on execute time *net of* fetch-blocked time, with any unattributed
/// remainder (dispatch gaps) reported separately — so the shares sum to 1.
struct TailAttribution {
  std::string query_class;
  int64_t count = 0;       // records of this class
  int64_t tail_count = 0;  // records at or above the p99
  int64_t p50_micros = 0;
  int64_t p99_micros = 0;
  /// Average share of tail latency per phase (kExecute net of
  /// kFetchBlocked); indexed by TracePhase.
  std::array<double, kNumTracePhases> share{};
  /// Share of tail latency not covered by any recorded phase.
  double other_share = 0.0;

  /// "interactive p99=12.40ms (n=3/300): 71% queue_wait / 22% fetch_blocked
  ///  / 5% execute / 2% other"
  std::string ToString() const;
};

class TraceStore {
 public:
  /// `capacity` bounds retained records across all shards;
  /// `slow_threshold_micros` > 0 enables the slow-query log.
  explicit TraceStore(size_t capacity = 4096,
                      int64_t slow_threshold_micros = 0);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Threshold a completed request must reach (total micros) to be treated
  /// as a slow-query offender. 0 disables slow-query capture.
  void set_slow_threshold_micros(int64_t micros) {
    slow_threshold_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t slow_threshold_micros() const {
    return slow_threshold_micros_.load(std::memory_order_relaxed);
  }

  /// Files a completed record. Marks it slow (and retains it in the
  /// slow-query log, logging a WARNING with the full timeline) when its
  /// total crosses the threshold.
  void Record(TraceRecord record);

  /// Copies every retained record, sorted by begin time then trace id.
  std::vector<TraceRecord> Snapshot() const;

  /// The retained slow-query offenders, sorted by begin time then trace id
  /// (bounded; oldest-filed evicted beyond kSlowLogCapacity).
  std::vector<TraceRecord> SlowQueries() const;

  int64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  int64_t slow_count() const {
    return slow_count_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  static constexpr size_t kShards = 8;
  static constexpr size_t kSlowLogCapacity = 128;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<TraceRecord> ring;  // capacity-bounded, next_slot wraps
    size_t next_slot = 0;
  };

  size_t per_shard_capacity_;
  std::atomic<int64_t> slow_threshold_micros_;
  std::array<Shard, kShards> shards_;
  std::atomic<int64_t> total_recorded_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> slow_count_{0};

  mutable std::mutex slow_mu_;
  std::deque<TraceRecord> slow_log_;
};

/// A point-in-time marker rendered as a Chrome-trace instant event
/// ("ph":"i") on its own named lane — alert firings/resolutions, config
/// flips, anything without a duration. Lanes share the tid namespace with
/// record lanes, so "s0r0/alerts" sorts next to "s0r0/slot-0".
struct TraceInstant {
  std::string name;
  std::string lane;
  int64_t ts_micros = 0;
  /// Optional pre-rendered JSON object for "args" (empty = "{}").
  std::string args_json;
};

/// Renders trace records as a Chrome trace-event JSON object
/// ({"traceEvents":[...]}) loadable in chrome://tracing or Perfetto. Each
/// distinct record lane ("slot-0", "session-7") becomes one named thread
/// row of complete ("ph":"X") phase events; fetch events render on one
/// additional lane per network channel ("net-ch0", ...); `instants` render
/// as "ph":"i" markers on their own lanes.
std::string ExportChromeTrace(const std::vector<TraceRecord>& records,
                              const std::vector<TraceInstant>& instants);
std::string ExportChromeTrace(const std::vector<TraceRecord>& records);

/// Per-class tail attribution over `records` (classes sorted by name).
/// Classes with no completed records are omitted.
std::vector<TailAttribution> ComputeTailAttribution(
    const std::vector<TraceRecord>& records);

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_TRACE_STORE_H_
