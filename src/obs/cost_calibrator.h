// CostCalibrator: closes the observe -> plan loop. EXPLAIN ANALYZE capture
// produces neutral ExplainNode trees (per-operator rows/next/time); the
// calibrator folds them into the named cost-model coefficients via bounded
// EWMA updates. The planner consumes snapshots, so observed operator costs
// from production traffic steer join ordering and cardinality defaults.
//
// Lives in obs (not query) so the dependency arrow stays query -> obs: the
// query layer's CostModel reads a CalibratedCosts snapshot, and the serving
// layer owns the calibrator instance and feeds it analyzed plans.
//
// Determinism: updates only fold observations with non-zero elapsed time
// and non-zero rows, so on a virtual clock (every operator sees 0 elapsed
// micros) the coefficients never move off their defaults — plans, and
// therefore results, are bit-identical to the uncalibrated engine.

#ifndef DRUGTREE_OBS_COST_CALIBRATOR_H_
#define DRUGTREE_OBS_COST_CALIBRATOR_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/explain.h"

namespace drugtree {
namespace obs {

/// The planner's named cost coefficients. Per-row costs are expressed in
/// sequential-scan row units (scanning one plain row costs seq_scan_row =
/// 1.0 by definition); selectivity priors fill in where statistics are
/// missing. The defaults reproduce the historical hard-coded constants
/// exactly, so a default snapshot plans byte-identically to the old engine.
struct CalibratedCosts {
  // Per-row operator costs.
  double seq_scan_row = 1.0;
  double index_probe = 4.0;       // traversal overhead per probe
  double index_row = 1.5;         // fetch per matching row
  double hash_build_row = 1.5;
  double hash_probe_row = 1.0;
  double nested_loop_row = 0.6;
  /// Join-order step multiplier for cross products (no connecting edge).
  double cross_product_penalty = 10.0;
  /// Fraction of seq_scan_row an encoded (compressed columnar) scan pays
  /// per row — the encoded-vs-plain scan discount.
  double encoded_scan_discount = 0.6;

  // Selectivity priors (used when column statistics cannot answer).
  double subtree_selectivity = 0.2;     // interval-index SUBTREE clade
  double ancestor_selectivity = 0.01;   // ANCESTOR_OF root path
  double is_null_selectivity = 0.05;
  double eq_default_selectivity = 0.1;
  double ne_default_selectivity = 0.9;
  double range_default_selectivity = 0.33;

  /// Bumped on every effective calibration update; plan caches embed it in
  /// their version signatures so recalibration re-plans cached templates.
  uint64_t version = 0;
};

/// Folds analyzed plans into CalibratedCosts. Thread-safe: Observe may race
/// with snapshot() across serving slots.
///
/// Update rule, per operator kind k with a usable observation (rows_out > 0
/// and exclusive elapsed > 0):
///   ewma_k <- first observation seeds directly; later observations fold in
///             with weight kAlpha.
///   coefficient_k <- clamp(ewma_k / ewma_seqscan,
///                          default_k / kClampFactor,
///                          default_k * kClampFactor)
/// Coefficients only move once a plain sequential scan has been observed
/// (it defines the unit), and never leave the clamp band — a pathological
/// trace cannot push the planner into a degenerate cost space.
class CostCalibrator {
 public:
  static constexpr double kAlpha = 0.25;       // EWMA weight of a new sample
  static constexpr double kClampFactor = 4.0;  // band around the default

  CostCalibrator() = default;

  /// Folds one analyzed plan tree (every operator node) into the model.
  void Observe(const ExplainNode& root);

  /// Current coefficients (copy; defaults until calibration has data).
  CalibratedCosts snapshot() const;

  /// Operator observations folded so far (usable ones only).
  int64_t observations() const;
  /// Observe() calls that changed at least one coefficient.
  int64_t effective_updates() const;

  /// {"observations":..,"updates":..,"version":..,"coefficients":{...}}.
  std::string StatszJson() const;

 private:
  enum Kind : int {
    kSeqScan = 0,
    kEncodedScan,
    kIndexScan,
    kHashJoin,
    kNestedLoop,
    kNumKinds,
  };

  struct Ewma {
    double value = 0.0;
    bool seeded = false;
  };

  /// Classifies an operator label; -1 when the operator has no coefficient.
  static int Classify(const std::string& label);

  void WalkLocked(const ExplainNode& node);
  void RecomputeLocked();

  mutable std::mutex mu_;
  Ewma ewma_[kNumKinds];
  CalibratedCosts costs_;
  int64_t observations_ = 0;
  int64_t effective_updates_ = 0;
};

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_COST_CALIBRATOR_H_
