#include "obs/slo_tracker.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace drugtree {
namespace obs {

SloTracker::SloTracker(std::string name, const SloOptions& options,
                       const util::Clock* clock)
    : name_(std::move(name)),
      options_(options),
      clock_(clock),
      bucket_width_micros_(std::max<int64_t>(
          1, options.window_micros / std::max(1, options.num_buckets))),
      buckets_(static_cast<size_t>(std::max(1, options.num_buckets))) {
  auto* registry = MetricRegistry::Default();
  Labels labels = {{"class", name_}};
  burn_gauge_ = registry->GetGauge("server.slo.burn_rate_x1000", labels);
  compliance_gauge_ =
      registry->GetGauge("server.slo.compliance_x10000", labels);
}

void SloTracker::WindowSumsLocked(int64_t now, int64_t* good,
                                  int64_t* bad) const {
  int64_t current_epoch = now / bucket_width_micros_;
  int64_t oldest_live =
      current_epoch - static_cast<int64_t>(buckets_.size()) + 1;
  *good = 0;
  *bad = 0;
  for (const Bucket& b : buckets_) {
    if (b.epoch >= oldest_live && b.epoch <= current_epoch) {
      *good += b.good;
      *bad += b.bad;
    }
  }
}

void SloTracker::Record(int64_t latency_micros, bool ok) {
  bool good = ok && latency_micros <= options_.target_latency_micros;
  int64_t now = clock_->NowMicros();
  int64_t epoch = now / bucket_width_micros_;
  double burn = 0.0, compliance = 1.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Bucket& b = buckets_[static_cast<size_t>(
        epoch % static_cast<int64_t>(buckets_.size()))];
    if (b.epoch != epoch) {
      b.epoch = epoch;
      b.good = 0;
      b.bad = 0;
    }
    ++total_;
    if (good) {
      ++b.good;
      ++good_;
    } else {
      ++b.bad;
      ++bad_;
    }
    int64_t wgood = 0, wbad = 0;
    WindowSumsLocked(now, &wgood, &wbad);
    int64_t wtotal = wgood + wbad;
    if (wtotal > 0) {
      double bad_fraction =
          static_cast<double>(wbad) / static_cast<double>(wtotal);
      compliance = 1.0 - bad_fraction;
      double budget = std::max(1e-9, 1.0 - options_.objective);
      burn = bad_fraction / budget;
    }
  }
  burn_gauge_->Set(std::llround(burn * 1000.0));
  compliance_gauge_->Set(std::llround(compliance * 10000.0));
}

SloTracker::Snapshot SloTracker::GetSnapshot() const {
  Snapshot snap;
  int64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  WindowSumsLocked(now, &snap.window_good, &snap.window_bad);
  snap.window_total = snap.window_good + snap.window_bad;
  snap.total = total_;
  snap.good = good_;
  snap.bad = bad_;
  if (snap.window_total > 0) {
    double bad_fraction = static_cast<double>(snap.window_bad) /
                          static_cast<double>(snap.window_total);
    snap.compliance = 1.0 - bad_fraction;
    snap.burn_rate = bad_fraction / std::max(1e-9, 1.0 - options_.objective);
  }
  return snap;
}

std::string SloTracker::ToJson() const {
  Snapshot snap = GetSnapshot();
  return util::StringPrintf(
      "{\"name\":\"%s\",\"target_micros\":%lld,\"objective\":%.6g,"
      "\"window_total\":%lld,\"window_good\":%lld,\"window_bad\":%lld,"
      "\"compliance\":%.6g,\"burn_rate\":%.6g,"
      "\"total\":%lld,\"good\":%lld,\"bad\":%lld}",
      name_.c_str(), (long long)options_.target_latency_micros,
      options_.objective, (long long)snap.window_total,
      (long long)snap.window_good, (long long)snap.window_bad, snap.compliance,
      snap.burn_rate, (long long)snap.total, (long long)snap.good,
      (long long)snap.bad);
}

}  // namespace obs
}  // namespace drugtree
