#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/trace_context.h"
#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

/// Per-thread open-span state. Spans nest per thread; a span opened on a
/// worker thread starts its own root rather than racing the main thread's.
struct ThreadState {
  std::unique_ptr<Span> open_root;  // owns the root while it is open
  std::vector<Span*> stack;         // innermost open span last
};

ThreadState& Tls() {
  static thread_local ThreadState state;
  return state;
}

void RenderSpan(const Span& span, int depth, int64_t root_micros,
                std::string* out) {
  double share = root_micros > 0
                     ? 100.0 * static_cast<double>(span.DurationMicros()) /
                           static_cast<double>(root_micros)
                     : 100.0;
  *out += std::string(static_cast<size_t>(depth) * 2, ' ');
  *out += util::StringPrintf(
      "%s  %.3fms (self %.3fms, %.1f%%)\n", span.name.c_str(),
      static_cast<double>(span.DurationMicros()) / 1000.0,
      static_cast<double>(span.SelfMicros()) / 1000.0, share);
  for (const auto& child : span.children) {
    RenderSpan(*child, depth + 1, root_micros, out);
  }
}

void SpanToJson(const Span& span, std::string* out) {
  *out += util::StringPrintf(
      "{\"name\":\"%s\",\"start_micros\":%lld,\"duration_micros\":%lld,"
      "\"self_micros\":%lld",
      span.name.c_str(), static_cast<long long>(span.start_micros),
      static_cast<long long>(span.DurationMicros()),
      static_cast<long long>(span.SelfMicros()));
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) *out += ",";
      SpanToJson(*span.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

SpanSite::SpanSite(const char* name) : name_(name) {
  MetricRegistry* registry = MetricRegistry::Default();
  const std::string base = std::string("span.") + name;
  total_micros_ = registry->GetCounter(base + ".total_micros");
  count_ = registry->GetCounter(base + ".count");
}

int64_t Span::SelfMicros() const {
  int64_t self = DurationMicros();
  for (const auto& child : children) self -= child->DurationMicros();
  return std::max<int64_t>(0, self);
}

Tracer* Tracer::Default() {
  static Tracer* tracer = [] {
    Tracer* t = new Tracer();
    // Opt into trace-tree capture from the environment so overhead A/B runs
    // (tier1.sh's DRUGTREE_OBS_NOOP gate) can exercise the capture path in
    // unmodified bench binaries.
    const char* env = std::getenv("DRUGTREE_TRACE_CAPTURE");
    if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
      t->set_capture(true);
    }
    return t;
  }();
  return tracer;
}

void Tracer::set_clock(const util::Clock* clock) {
  clock_.store(clock, std::memory_order_relaxed);
}

const util::Clock* Tracer::clock() const {
  const util::Clock* c = clock_.load(std::memory_order_relaxed);
  return c != nullptr ? c : util::RealClock::Instance();
}

Span* Tracer::BeginSpan(const std::string& name) {
  if (!capturing()) return nullptr;
  ThreadState& tls = Tls();
  auto span = std::make_unique<Span>();
  span->name = name;
  span->start_micros = clock()->NowMicros();
  Span* raw = span.get();
  if (tls.stack.empty()) {
    tls.open_root = std::move(span);
  } else {
    tls.stack.back()->children.push_back(std::move(span));
  }
  tls.stack.push_back(raw);
  return raw;
}

void Tracer::EndSpan(Span* span) { CloseSpan(span, nullptr); }

void Tracer::EndSpan(Span* span, const SpanSite& site) {
  CloseSpan(span, &site);
}

void Tracer::CloseSpan(Span* span, const SpanSite* site) {
  if (span == nullptr) return;
  ThreadState& tls = Tls();
  span->end_micros = clock()->NowMicros();
  // RAII discipline means `span` is the innermost open span; tolerate (and
  // close) any deeper spans left open by early returns.
  while (!tls.stack.empty()) {
    Span* top = tls.stack.back();
    tls.stack.pop_back();
    if (top != span && top->end_micros == 0) top->end_micros = span->end_micros;
    if (top == span) break;
  }
  if (site != nullptr) {
    site->total_micros()->Add(span->DurationMicros());
    site->count()->Increment();
  } else {
    ExportSpanMetrics(*span);
  }
  if (tls.stack.empty() && tls.open_root != nullptr &&
      tls.open_root.get() == span) {
    // Per-query capture: a thread executing under a TraceContext hands its
    // completed root to that context, so concurrent server slots never
    // clobber each other. The process-global "last trace" keeps serving the
    // legacy single-threaded benches/tests on untraced threads.
    if (TraceContext* context = TraceContext::Current()) {
      context->AdoptRootSpan(std::move(tls.open_root));
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      last_trace_ = std::move(tls.open_root);
    }
  }
}

void Tracer::ExportSpanMetrics(const Span& span) {
  std::pair<Counter*, Counter*> counters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = span_metrics_.find(span.name);
    if (it == span_metrics_.end()) {
      MetricRegistry* registry = MetricRegistry::Default();
      it = span_metrics_
               .emplace(span.name,
                        std::make_pair(
                            registry->GetCounter("span." + span.name +
                                                 ".total_micros"),
                            registry->GetCounter("span." + span.name +
                                                 ".count")))
               .first;
    }
    counters = it->second;
  }
  counters.first->Add(span.DurationMicros());
  counters.second->Increment();
}

const Span* Tracer::last_trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_trace_.get();
}

std::string Tracer::RenderLastTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_trace_ == nullptr) return "(no trace)\n";
  std::string out;
  RenderSpan(*last_trace_, 0, last_trace_->DurationMicros(), &out);
  return out;
}

std::string Tracer::LastTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_trace_ == nullptr) return "null";
  std::string out;
  SpanToJson(*last_trace_, &out);
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  last_trace_.reset();
}

}  // namespace obs
}  // namespace drugtree
