// Scoped span tracing for per-query / per-interaction attribution.
//
// Spans are stamped off a util::Clock, so a benchmark driving a
// SimulatedClock gets *exact* attribution of simulated time (network waits,
// render budgets) while interactive runs measure wall time. Nested spans on
// one thread form a tree; a completed root span is retained as the "last
// trace" for rendering, and every span's duration is mirrored into the
// metrics registry as span.<name>.total_micros / span.<name>.count so bench
// snapshots carry per-phase totals without keeping the trees around.
//
// Usage — instrument a scope with the macro (compiled out entirely under
// -DDRUGTREE_OBS_NOOP for overhead A/B builds):
//
//   util::Result<QueryResult> ExecutePlan(PhysicalOperator* root) {
//     DT_SPAN("query.execute");
//     ...
//   }
//
//   obs::Tracer::Default()->set_clock(&simulated_clock);  // in benches
//   std::cout << obs::Tracer::Default()->RenderLastTrace();

#ifndef DRUGTREE_OBS_TRACE_H_
#define DRUGTREE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace drugtree {
namespace obs {

/// One timed scope. Children are the spans opened (and closed) while this
/// one was the innermost open span on its thread.
struct Span {
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  std::vector<std::unique_ptr<Span>> children;

  int64_t DurationMicros() const { return end_micros - start_micros; }

  /// Duration minus the children's durations (time attributable to this
  /// span's own work).
  int64_t SelfMicros() const;
};

/// Per-call-site span identity: the name plus its pre-resolved registry
/// counters. DT_SPAN declares one function-local static per site, so closing
/// a span bumps two counters directly instead of taking the tracer mutex and
/// hashing the name into the registry on every call.
class SpanSite {
 public:
  explicit SpanSite(const char* name);

  const char* name() const { return name_; }
  Counter* total_micros() const { return total_micros_; }
  Counter* count() const { return count_; }

 private:
  const char* name_;
  Counter* total_micros_;
  Counter* count_;
};

class Tracer {
 public:
  /// Shared process-wide instance (what DT_SPAN uses).
  static Tracer* Default();

  /// The clock spans are stamped off. Defaults to RealClock::Instance();
  /// simulated-clock benchmarks point it at their clock for exact
  /// attribution. Not owned.
  void set_clock(const util::Clock* clock);
  const util::Clock* clock() const;

  /// Runtime kill switch: when disabled, Begin/EndSpan are no-ops.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Trace-tree capture. Off by default: DT_SPAN still mirrors durations
  /// into the registry (two clock reads + two relaxed adds), but no span
  /// tree is built or retained. Turn on to get last_trace()/RenderLastTrace
  /// flames at the cost of one small allocation per span.
  void set_capture(bool capture) { capture_ = capture; }
  bool capturing() const {
    return capture_.load(std::memory_order_relaxed) &&
           enabled_.load(std::memory_order_relaxed);
  }

  /// Opens a span nested under the thread's innermost open span (or as a
  /// new root). Returns null when disabled or not capturing.
  Span* BeginSpan(const std::string& name);

  /// Closes a span opened by BeginSpan. A completed *root* span is adopted
  /// by the thread's installed obs::TraceContext when one is present
  /// (per-query capture — concurrent server slots each keep their own
  /// tree); otherwise it replaces the process-global retained last trace
  /// (the legacy single-threaded API). Every closed span feeds the metrics
  /// registry either way.
  void EndSpan(Span* span);

  /// Fast-path close for DT_SPAN: the site carries pre-resolved counters, so
  /// no tracer-mutex/name-hash work happens on the way out.
  void EndSpan(Span* span, const SpanSite& site);

  /// The most recently completed root span tree (null before any trace).
  /// Valid until the next root span completes or Clear() is called.
  const Span* last_trace() const;

  /// Indented text flame of the last trace: micros, self-micros, and the
  /// share of the root.
  std::string RenderLastTrace() const;

  /// JSON rendering of the last trace (nested objects).
  std::string LastTraceJson() const;

  /// Drops the retained trace (metrics already exported are untouched).
  void Clear();

 private:
  void CloseSpan(Span* span, const SpanSite* site);
  void ExportSpanMetrics(const Span& span);

  std::atomic<const util::Clock*> clock_{nullptr};  // null -> RealClock
  std::atomic<bool> enabled_{true};
  std::atomic<bool> capture_{false};

  mutable std::mutex mu_;
  std::unique_ptr<Span> last_trace_;
  // (total_micros, count) counter pair per span name, resolved once.
  std::unordered_map<std::string, std::pair<Counter*, Counter*>> span_metrics_;
};

/// RAII wrapper: opens on construction, closes on scope exit.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name)
      : tracer_(tracer),
        span_(tracer != nullptr ? tracer->BeginSpan(name) : nullptr) {}

  /// DT_SPAN's constructor: uses the call site's cached counters. When the
  /// tracer is not capturing trees, this is the allocation-free fast path —
  /// just a start stamp here and two counter bumps on scope exit.
  ScopedSpan(Tracer* tracer, const SpanSite& site)
      : tracer_(tracer), site_(&site) {
    if (tracer == nullptr || !tracer->enabled()) return;
    if (tracer->capturing()) {
      span_ = tracer->BeginSpan(site.name());
    } else {
      start_micros_ = tracer->clock()->NowMicros();
    }
  }

  ~ScopedSpan() {
    if (span_ != nullptr) {
      if (site_ != nullptr) {
        tracer_->EndSpan(span_, *site_);
      } else {
        tracer_->EndSpan(span_);
      }
      return;
    }
    if (start_micros_ >= 0 && site_ != nullptr) {
      site_->total_micros()->Add(tracer_->clock()->NowMicros() -
                                 start_micros_);
      site_->count()->Increment();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const SpanSite* site_ = nullptr;
  Span* span_ = nullptr;
  int64_t start_micros_ = -1;
};

}  // namespace obs
}  // namespace drugtree

#if defined(DRUGTREE_OBS_NOOP)
// Overhead-measurement build: spans vanish entirely.
#define DT_SPAN(name) \
  do {                \
  } while (0)
#else
#define DT_SPAN_CONCAT2(a, b) a##b
#define DT_SPAN_CONCAT(a, b) DT_SPAN_CONCAT2(a, b)
#define DT_SPAN(name)                                                        \
  static const ::drugtree::obs::SpanSite DT_SPAN_CONCAT(_dt_span_site_,      \
                                                        __LINE__){(name)};   \
  ::drugtree::obs::ScopedSpan DT_SPAN_CONCAT(_dt_span_, __LINE__)(           \
      ::drugtree::obs::Tracer::Default(),                                    \
      DT_SPAN_CONCAT(_dt_span_site_, __LINE__))
#endif

#endif  // DRUGTREE_OBS_TRACE_H_
