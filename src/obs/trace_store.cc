#include "obs/trace_store.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Exact percentile over a sorted sample (nearest-rank).
int64_t SortedPercentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based rank -> index
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

std::string TailAttribution::ToString() const {
  std::string out = util::StringPrintf(
      "%s p99=%.3fms p50=%.3fms (tail %lld of %lld):", query_class.c_str(),
      static_cast<double>(p99_micros) / 1000.0,
      static_cast<double>(p50_micros) / 1000.0, (long long)tail_count,
      (long long)count);
  bool first = true;
  for (int p = 0; p < kNumTracePhases; ++p) {
    double pct = share[static_cast<size_t>(p)] * 100.0;
    if (pct < 0.05) continue;
    out += util::StringPrintf("%s %.0f%% %s", first ? "" : " /", pct,
                              TracePhaseName(static_cast<TracePhase>(p)));
    first = false;
  }
  if (other_share * 100.0 >= 0.05) {
    out += util::StringPrintf("%s %.0f%% other", first ? "" : " /",
                              other_share * 100.0);
  }
  if (first && other_share * 100.0 < 0.05) out += " (no attributed time)";
  return out;
}

TraceStore::TraceStore(size_t capacity, int64_t slow_threshold_micros)
    // Ceiling split so total retained capacity is never below the request
    // (truncating division silently shrank e.g. capacity=12 to 8 records).
    : per_shard_capacity_(std::max<size_t>(1, (capacity + kShards - 1) / kShards)),
      slow_threshold_micros_(slow_threshold_micros) {}

void TraceStore::Record(TraceRecord record) {
  int64_t threshold = slow_threshold_micros();
  if (threshold > 0 && record.TotalMicros() >= threshold) {
    record.slow = true;
    slow_count_.fetch_add(1, std::memory_order_relaxed);
    DT_LOG(WARNING) << "slow query (" << record.TotalMicros() << "us >= "
                    << threshold << "us threshold)\n"
                    << record.TimelineString()
                    << (record.analyzed_plan.empty()
                            ? std::string()
                            : "  plan:\n" + record.analyzed_plan);
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.push_back(record);
    if (slow_log_.size() > kSlowLogCapacity) slow_log_.pop_front();
  }
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[record.trace_id % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < per_shard_capacity_) {
    shard.ring.push_back(std::move(record));
    return;
  }
  shard.ring[shard.next_slot] = std::move(record);
  shard.next_slot = (shard.next_slot + 1) % per_shard_capacity_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceRecord> TraceStore::Snapshot() const {
  std::vector<TraceRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.ring.begin(), shard.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.begin_micros != b.begin_micros) {
                return a.begin_micros < b.begin_micros;
              }
              return a.trace_id < b.trace_id;
            });
  return out;
}

std::vector<TraceRecord> TraceStore::SlowQueries() const {
  std::vector<TraceRecord> out;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    out.assign(slow_log_.begin(), slow_log_.end());
  }
  // Concurrent slots race to file their records; sort on the (deterministic)
  // virtual-clock stamps so consumers see a stable order.
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.begin_micros != b.begin_micros) {
                return a.begin_micros < b.begin_micros;
              }
              return a.trace_id < b.trace_id;
            });
  return out;
}

void TraceStore::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring.clear();
    shard.next_slot = 0;
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_log_.clear();
  total_recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  slow_count_.store(0, std::memory_order_relaxed);
}

std::string ExportChromeTrace(const std::vector<TraceRecord>& records) {
  return ExportChromeTrace(records, {});
}

std::string ExportChromeTrace(const std::vector<TraceRecord>& records,
                              const std::vector<TraceInstant>& instants) {
  // Stable lane -> tid assignment: record + instant lanes first (sorted),
  // then network channel lanes above 1000.
  std::map<std::string, int> lane_tids;
  std::map<int, int> channel_tids;
  for (const auto& r : records) {
    std::string lane = r.lane.empty() ? std::string("unlaned") : r.lane;
    lane_tids.emplace(lane, 0);
    for (const auto& f : r.fetches) channel_tids.emplace(f.channel, 0);
  }
  for (const auto& inst : instants) {
    lane_tids.emplace(inst.lane.empty() ? std::string("unlaned") : inst.lane,
                      0);
  }
  int next_tid = 1;
  for (auto& [lane, tid] : lane_tids) tid = next_tid++;
  next_tid = 1001;
  for (auto& [channel, tid] : channel_tids) tid = next_tid++;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",";
    out += "\n" + event;
    first = false;
  };
  // Lane names as thread_name metadata events.
  for (const auto& [lane, tid] : lane_tids) {
    emit(util::StringPrintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        tid, JsonEscape(lane).c_str()));
  }
  for (const auto& [channel, tid] : channel_tids) {
    emit(util::StringPrintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"net-ch%d\"}}",
        tid, channel));
  }
  for (const auto& r : records) {
    std::string lane = r.lane.empty() ? std::string("unlaned") : r.lane;
    int tid = lane_tids[lane];
    for (const auto& iv : r.intervals) {
      emit(util::StringPrintf(
          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
          "\"ts\":%lld,\"dur\":%lld,\"args\":{\"trace_id\":%llu,"
          "\"class\":\"%s\",\"session\":%llu,\"status\":\"%s\","
          "\"sql\":\"%s\"}}",
          TracePhaseName(iv.phase), tid, (long long)iv.start_micros,
          (long long)iv.DurationMicros(), (unsigned long long)r.trace_id,
          JsonEscape(r.query_class).c_str(), (unsigned long long)r.session_id,
          JsonEscape(r.status).c_str(), JsonEscape(r.sql).c_str()));
    }
    for (const auto& f : r.fetches) {
      emit(util::StringPrintf(
          "{\"name\":\"fetch\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
          "\"ts\":%lld,\"dur\":%lld,\"args\":{\"trace_id\":%llu,"
          "\"bytes\":%llu}}",
          channel_tids[f.channel], (long long)f.start_micros,
          (long long)(f.end_micros - f.start_micros),
          (unsigned long long)r.trace_id, (unsigned long long)f.bytes));
    }
  }
  for (const auto& inst : instants) {
    std::string lane = inst.lane.empty() ? std::string("unlaned") : inst.lane;
    emit(util::StringPrintf(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,"
        "\"ts\":%lld,\"args\":%s}",
        JsonEscape(inst.name).c_str(), lane_tids[lane],
        (long long)inst.ts_micros,
        inst.args_json.empty() ? "{}" : inst.args_json.c_str()));
  }
  out += "\n]}";
  return out;
}

std::vector<TailAttribution> ComputeTailAttribution(
    const std::vector<TraceRecord>& records) {
  std::map<std::string, std::vector<const TraceRecord*>> by_class;
  for (const auto& r : records) {
    if (r.TotalMicros() <= 0 && r.intervals.empty()) continue;
    by_class[r.query_class.empty() ? "unclassified" : r.query_class]
        .push_back(&r);
  }
  std::vector<TailAttribution> out;
  for (auto& [cls, recs] : by_class) {
    TailAttribution attr;
    attr.query_class = cls;
    attr.count = static_cast<int64_t>(recs.size());
    std::vector<int64_t> totals;
    totals.reserve(recs.size());
    for (const TraceRecord* r : recs) totals.push_back(r->TotalMicros());
    std::sort(totals.begin(), totals.end());
    attr.p50_micros = SortedPercentile(totals, 50.0);
    attr.p99_micros = SortedPercentile(totals, 99.0);
    // Tail = everything at or above the p99 total; average each record's
    // phase fractions so one huge outlier does not dominate the shares.
    double acc[kNumTracePhases] = {};
    double acc_other = 0.0;
    for (const TraceRecord* r : recs) {
      int64_t total = r->TotalMicros();
      if (total < attr.p99_micros || total <= 0) continue;
      ++attr.tail_count;
      int64_t attributed = 0;
      for (int p = 0; p < kNumTracePhases; ++p) {
        int64_t micros = r->phase_micros[static_cast<size_t>(p)];
        // fetch_blocked accrues inside execute: report execute net of it.
        if (static_cast<TracePhase>(p) == TracePhase::kExecute) {
          micros = std::max<int64_t>(
              0, micros - r->PhaseMicros(TracePhase::kFetchBlocked));
        }
        attributed += micros;
        acc[p] += static_cast<double>(micros) / static_cast<double>(total);
      }
      acc_other += static_cast<double>(std::max<int64_t>(0, total - attributed)) /
                   static_cast<double>(total);
    }
    if (attr.tail_count > 0) {
      for (int p = 0; p < kNumTracePhases; ++p) {
        attr.share[static_cast<size_t>(p)] =
            acc[p] / static_cast<double>(attr.tail_count);
      }
      attr.other_share = acc_other / static_cast<double>(attr.tail_count);
    }
    out.push_back(std::move(attr));
  }
  return out;
}

}  // namespace obs
}  // namespace drugtree
