#include "obs/cost_calibrator.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

double Clamp(double v, double fallback) {
  const double lo = fallback / CostCalibrator::kClampFactor;
  const double hi = fallback * CostCalibrator::kClampFactor;
  return std::clamp(v, lo, hi);
}

}  // namespace

int CostCalibrator::Classify(const std::string& label) {
  if (StartsWith(label, "SeqScan")) {
    return label.find(" [encoded: ") != std::string::npos ? kEncodedScan
                                                          : kSeqScan;
  }
  if (StartsWith(label, "IndexScan")) return kIndexScan;
  if (StartsWith(label, "HashJoin")) return kHashJoin;
  if (StartsWith(label, "NestedLoopJoin")) return kNestedLoop;
  return -1;
}

void CostCalibrator::WalkLocked(const ExplainNode& node) {
  int64_t child_micros = 0;
  for (const ExplainNode& c : node.children) {
    child_micros += c.elapsed_micros;
    WalkLocked(c);
  }
  int kind = Classify(node.label);
  if (kind < 0) return;
  // Exclusive time: ExplainNode elapsed is inclusive of children
  // (Postgres-style), so subtract them out to attribute the operator alone.
  int64_t exclusive = node.elapsed_micros - child_micros;
  if (exclusive <= 0 || node.rows_out <= 0) return;  // virtual clock / empty
  double per_row = static_cast<double>(exclusive) /
                   static_cast<double>(node.rows_out);
  Ewma& e = ewma_[kind];
  if (!e.seeded) {
    e.value = per_row;
    e.seeded = true;
  } else {
    e.value = (1.0 - kAlpha) * e.value + kAlpha * per_row;
  }
  ++observations_;
}

void CostCalibrator::RecomputeLocked() {
  // The plain sequential scan defines the unit; until one has been
  // observed every coefficient stays at its default.
  if (!ewma_[kSeqScan].seeded || ewma_[kSeqScan].value <= 0.0) return;
  const double unit = ewma_[kSeqScan].value;
  const CalibratedCosts defaults;
  CalibratedCosts next = costs_;
  if (ewma_[kIndexScan].seeded) {
    next.index_row = Clamp(ewma_[kIndexScan].value / unit, defaults.index_row);
  }
  if (ewma_[kHashJoin].seeded) {
    next.hash_probe_row =
        Clamp(ewma_[kHashJoin].value / unit, defaults.hash_probe_row);
    // Build cost has no separate observation (build happens inside the same
    // operator's Open); scale it with the probe-side drift.
    next.hash_build_row =
        Clamp(defaults.hash_build_row *
                  (next.hash_probe_row / defaults.hash_probe_row),
              defaults.hash_build_row);
  }
  if (ewma_[kNestedLoop].seeded) {
    next.nested_loop_row =
        Clamp(ewma_[kNestedLoop].value / unit, defaults.nested_loop_row);
  }
  if (ewma_[kEncodedScan].seeded) {
    next.encoded_scan_discount = Clamp(ewma_[kEncodedScan].value / unit,
                                       defaults.encoded_scan_discount);
  }
  const bool changed = next.index_row != costs_.index_row ||
                       next.hash_probe_row != costs_.hash_probe_row ||
                       next.hash_build_row != costs_.hash_build_row ||
                       next.nested_loop_row != costs_.nested_loop_row ||
                       next.encoded_scan_discount !=
                           costs_.encoded_scan_discount;
  if (changed) {
    next.version = costs_.version + 1;
    costs_ = next;
    ++effective_updates_;
  }
}

void CostCalibrator::Observe(const ExplainNode& root) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t before = observations_;
  WalkLocked(root);
  if (observations_ != before) RecomputeLocked();
}

CalibratedCosts CostCalibrator::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return costs_;
}

int64_t CostCalibrator::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

int64_t CostCalibrator::effective_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return effective_updates_;
}

std::string CostCalibrator::StatszJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return util::StringPrintf(
      "{\"observations\":%lld,\"updates\":%lld,\"version\":%llu,"
      "\"coefficients\":{\"seq_scan_row\":%.4f,\"index_probe\":%.4f,"
      "\"index_row\":%.4f,\"hash_build_row\":%.4f,\"hash_probe_row\":%.4f,"
      "\"nested_loop_row\":%.4f,\"encoded_scan_discount\":%.4f,"
      "\"subtree_selectivity\":%.4f}}",
      (long long)observations_, (long long)effective_updates_,
      (unsigned long long)costs_.version, costs_.seq_scan_row,
      costs_.index_probe, costs_.index_row, costs_.hash_build_row,
      costs_.hash_probe_row, costs_.nested_loop_row,
      costs_.encoded_scan_discount, costs_.subtree_selectivity);
}

}  // namespace obs
}  // namespace drugtree
