// Hierarchical memory accounting. A MemoryTracker is one node in a tree
// (server -> query class -> session -> query -> operator); charging a node
// propagates the bytes up every ancestor, so the server root always knows
// total resident demand while each level keeps its own usage, peak
// watermark, and optional limits:
//
//   * hard limit — TryCharge() refuses the charge (kResourceExhausted) and
//     rolls the partial propagation back, so a query that would blow its
//     budget aborts cleanly instead of OOMing the process;
//   * soft limit — advisory watermark; OverSoftLimit() is what the serving
//     layer's memory-pressure admission checks before accepting analytic
//     work.
//
// The charge/release fast path is lock-free: one relaxed fetch_add per
// tree level plus a CAS-max for the peak. The only mutex guards the child
// list, which changes when sessions appear — never per charge.
//
// Ownership: registered children (GetOrCreateChild) are owned by the parent
// and live as long as it does — the long-lived spine of the tree. Transient
// nodes (one per executing query) are constructed directly with a parent
// pointer, never registered, and release any outstanding usage from their
// ancestors on destruction, so an aborted query cannot leak charges.

#ifndef DRUGTREE_OBS_RESOURCE_TRACKER_H_
#define DRUGTREE_OBS_RESOURCE_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace drugtree {
namespace obs {

class MemoryTracker {
 public:
  /// `parent` is borrowed and must outlive this node (charges propagate
  /// into it). Limits are bytes; 0 disables the respective limit.
  explicit MemoryTracker(std::string name, MemoryTracker* parent = nullptr,
                         int64_t soft_limit_bytes = 0,
                         int64_t hard_limit_bytes = 0);

  /// Destroys registered children first (they release their usage back into
  /// this node), then releases whatever is still outstanding from the
  /// ancestors — a dying node never leaves phantom bytes above it.
  ~MemoryTracker();

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Charges `bytes` to this node and every ancestor. If any node on the
  /// path would exceed its hard limit the whole charge is rolled back and
  /// kResourceExhausted (naming the offending tracker) is returned. Peaks
  /// are updated on every successful level.
  util::Status TryCharge(int64_t bytes);

  /// Charges unconditionally (no hard-limit check). For accounting paths
  /// that bound themselves — caches with their own eviction — where the
  /// tracker observes, not polices.
  void Charge(int64_t bytes);

  /// Releases `bytes` from this node and every ancestor.
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t soft_limit_bytes() const { return soft_limit_; }
  int64_t hard_limit_bytes() const { return hard_limit_; }
  const std::string& name() const { return name_; }
  MemoryTracker* parent() const { return parent_; }

  /// True once usage is at or above the soft limit (false when unset).
  bool OverSoftLimit() const {
    return soft_limit_ > 0 && used() >= soft_limit_;
  }

  /// Returns the registered child with `name`, creating (and owning) it on
  /// first use. Thread-safe; creation is rare (one per session), lookups
  /// are a short linear scan under the child mutex — never on the charge
  /// path.
  MemoryTracker* GetOrCreateChild(const std::string& name,
                                  int64_t soft_limit_bytes = 0,
                                  int64_t hard_limit_bytes = 0);

  /// Recursive JSON snapshot of the subtree:
  ///   {"name":"server","used":...,"peak":...,"soft_limit":...,
  ///    "hard_limit":...,"children":[...]}
  std::string ToJson() const;

 private:
  void UpdatePeak(int64_t candidate);

  const std::string name_;
  MemoryTracker* const parent_;
  const int64_t soft_limit_;
  const int64_t hard_limit_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};

  mutable std::mutex children_mu_;
  std::vector<std::unique_ptr<MemoryTracker>> children_;
};

/// RAII charge against a tracker (unconditional), released on scope exit.
/// Used for transient buffers — mediator fetch/decode payloads — where the
/// bytes exist only for the enclosing scope. A null tracker is a no-op.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Charge(bytes_);
  }
  ~ScopedMemoryCharge() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
  }

  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID). 0 where the clock is unavailable. This is
/// real CPU time, not virtual time: traces record it for heaviness
/// forensics, never for deterministic assertions.
int64_t ThreadCpuMicros();

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_RESOURCE_TRACKER_H_
