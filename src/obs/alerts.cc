#include "obs/alerts.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace obs {

const char* AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kThreshold: return "threshold";
    case AlertKind::kRateOfChange: return "rate_of_change";
    case AlertKind::kBurnRate: return "burn_rate";
  }
  return "unknown";
}

const char* AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "unknown";
}

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "unknown";
}

AlertEngine::AlertEngine(const TimeSeriesStore* store,
                         const util::Clock* clock)
    : store_(store), clock_(clock) {}

void AlertEngine::AddRule(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  RuleState rs;
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
}

bool AlertEngine::EvaluateValueLocked(const AlertRule& rule, int64_t now,
                                      double* value) const {
  switch (rule.kind) {
    case AlertKind::kThreshold: {
      TimePoint latest;
      if (!store_->Latest(rule.series, &latest)) return false;
      *value = latest.value;
      return true;
    }
    case AlertKind::kRateOfChange: {
      std::vector<TimePoint> points = store_->Points(rule.series);
      if (points.size() < 2) return false;
      const TimePoint& a = points[points.size() - 2];
      const TimePoint& b = points.back();
      if (b.t_micros <= a.t_micros) return false;
      *value = (b.value - a.value) /
               (static_cast<double>(b.t_micros - a.t_micros) / 1e6);
      return true;
    }
    case AlertKind::kBurnRate: {
      double short_avg = 0.0, long_avg = 0.0;
      if (!store_->WindowAverage(rule.series, now, rule.short_window_micros,
                                 &short_avg) ||
          !store_->WindowAverage(rule.series, now, rule.long_window_micros,
                                 &long_avg)) {
        return false;
      }
      // Both windows must cross: report the short (prompt) one, but gate on
      // the worse-behaved of the two so a blip in either cannot fire alone.
      *value = rule.fire_above ? std::min(short_avg, long_avg)
                               : std::max(short_avg, long_avg);
      return true;
    }
  }
  return false;
}

void AlertEngine::TransitionLocked(RuleState* rs, AlertState to, int64_t now,
                                   std::vector<AlertTransition>* out) {
  AlertTransition t;
  t.rule = rs->rule.name;
  t.from = rs->state;
  t.to = to;
  t.at_micros = now;
  t.value = rs->last_value;
  if (to == AlertState::kFiring) {
    ++rs->fired;
    DT_LOG(WARNING) << "alert FIRING: " << rs->rule.name << " ("
                    << AlertKindName(rs->rule.kind) << " on "
                    << rs->rule.series << ", value " << rs->last_value
                    << " vs threshold " << rs->rule.threshold << ", subsystem "
                    << rs->rule.subsystem << ", severity "
                    << AlertSeverityName(rs->rule.severity) << ") at t="
                    << now << "us";
  } else if (rs->state == AlertState::kFiring) {
    ++rs->resolved;
    DT_LOG(WARNING) << "alert resolved: " << rs->rule.name << " (value "
                    << rs->last_value << ") at t=" << now << "us";
  }
  rs->state = to;
  rs->since_micros = now;
  history_.push_back(std::move(t));
  if (history_.size() > kHistoryCapacity) history_.pop_front();
  if (out != nullptr) out->push_back(history_.back());
}

std::vector<AlertTransition> AlertEngine::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = clock_->NowMicros();
  std::vector<AlertTransition> out;
  for (RuleState& rs : rules_) {
    double value = 0.0;
    rs.has_value = EvaluateValueLocked(rs.rule, now, &value);
    if (rs.has_value) rs.last_value = value;
    // An unevaluable series (no data yet / window rolled empty) reads as
    // condition-false: alerts resolve when their signal disappears.
    bool cond = rs.has_value &&
                (rs.rule.fire_above ? value > rs.rule.threshold
                                    : value < rs.rule.threshold);
    switch (rs.state) {
      case AlertState::kInactive:
        if (cond) {
          if (rs.rule.for_micros <= 0) {
            TransitionLocked(&rs, AlertState::kFiring, now, &out);
          } else {
            rs.pending_since_micros = now;
            TransitionLocked(&rs, AlertState::kPending, now, &out);
          }
        }
        break;
      case AlertState::kPending:
        if (!cond) {
          TransitionLocked(&rs, AlertState::kInactive, now, &out);
        } else if (now - rs.pending_since_micros >= rs.rule.for_micros) {
          TransitionLocked(&rs, AlertState::kFiring, now, &out);
        }
        break;
      case AlertState::kFiring:
        if (!cond) TransitionLocked(&rs, AlertState::kInactive, now, &out);
        break;
    }
  }
  return out;
}

std::vector<AlertStatus> AlertEngine::Statuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    AlertStatus s;
    s.rule = rs.rule;
    s.state = rs.state;
    s.since_micros = rs.since_micros;
    s.last_value = rs.last_value;
    s.has_value = rs.has_value;
    s.fired = rs.fired;
    s.resolved = rs.resolved;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<AlertTransition> AlertEngine::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AlertTransition>(history_.begin(), history_.end());
}

int64_t AlertEngine::firing_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const RuleState& rs : rules_) {
    if (rs.state == AlertState::kFiring) ++n;
  }
  return n;
}

std::string AlertEngine::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t firing = 0;
  for (const RuleState& rs : rules_) {
    if (rs.state == AlertState::kFiring) ++firing;
  }
  std::string out = util::StringPrintf("{\"firing\":%lld,\"rules\":[",
                                       (long long)firing);
  bool first = true;
  for (const RuleState& rs : rules_) {
    if (!first) out += ",";
    first = false;
    out += util::StringPrintf(
        "{\"name\":\"%s\",\"kind\":\"%s\",\"series\":\"%s\","
        "\"subsystem\":\"%s\",\"severity\":\"%s\",\"state\":\"%s\","
        "\"since_micros\":%lld,\"last_value\":%.6g,\"fired\":%lld,"
        "\"resolved\":%lld}",
        rs.rule.name.c_str(), AlertKindName(rs.rule.kind),
        rs.rule.series.c_str(), rs.rule.subsystem.c_str(),
        AlertSeverityName(rs.rule.severity), AlertStateName(rs.state),
        (long long)rs.since_micros, rs.last_value, (long long)rs.fired,
        (long long)rs.resolved);
  }
  out += "],\"transitions\":[";
  first = true;
  for (const AlertTransition& t : history_) {
    if (!first) out += ",";
    first = false;
    out += util::StringPrintf(
        "{\"rule\":\"%s\",\"from\":\"%s\",\"to\":\"%s\",\"at_micros\":%lld,"
        "\"value\":%.6g}",
        t.rule.c_str(), AlertStateName(t.from), AlertStateName(t.to),
        (long long)t.at_micros, t.value);
  }
  out += "]}";
  return out;
}

std::vector<TraceInstant> AlertEngine::TraceInstants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceInstant> out;
  for (const AlertTransition& t : history_) {
    bool entering = t.to == AlertState::kFiring;
    bool leaving = t.from == AlertState::kFiring &&
                   t.to == AlertState::kInactive;
    if (!entering && !leaving) continue;
    TraceInstant inst;
    inst.name = util::StringPrintf("alert:%s %s", t.rule.c_str(),
                                   entering ? "firing" : "resolved");
    inst.lane = "alerts";
    inst.ts_micros = t.at_micros;
    inst.args_json = util::StringPrintf("{\"value\":%.6g}", t.value);
    out.push_back(std::move(inst));
  }
  return out;
}

// Health rollup --------------------------------------------------------

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kCritical: return "critical";
  }
  return "unknown";
}

std::string HealthSnapshot::ToJson() const {
  std::string out = util::StringPrintf("{\"overall\":\"%s\",\"subsystems\":{",
                                       HealthStateName(overall));
  bool first = true;
  for (const auto& [name, state] : subsystems) {
    if (!first) out += ",";
    first = false;
    out += util::StringPrintf("\"%s\":\"%s\"", name.c_str(),
                              HealthStateName(state));
  }
  out += "}}";
  return out;
}

HealthSnapshot DeriveHealth(const std::vector<AlertStatus>& statuses,
                            const std::vector<std::string>& baseline) {
  HealthSnapshot out;
  for (const std::string& name : baseline) {
    out.subsystems.emplace(name, HealthState::kHealthy);
  }
  for (const AlertStatus& s : statuses) {
    std::string subsystem =
        s.rule.subsystem.empty() ? "unassigned" : s.rule.subsystem;
    HealthState& h =
        out.subsystems.emplace(subsystem, HealthState::kHealthy).first->second;
    if (s.state != AlertState::kFiring) continue;
    HealthState raised = s.rule.severity == AlertSeverity::kCritical
                             ? HealthState::kCritical
                             : HealthState::kDegraded;
    h = std::max(h, raised);
  }
  for (const auto& [name, state] : out.subsystems) {
    (void)name;
    out.overall = std::max(out.overall, state);
  }
  return out;
}

}  // namespace obs
}  // namespace drugtree
