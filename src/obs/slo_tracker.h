// Per-class SLO tracking: "objective% of <class> requests complete within
// target latency". Each terminal request outcome is recorded as good (ok
// and within target) or bad (slow, failed, cancelled, or shed); the tracker
// keeps both cumulative totals and a rolling window of time buckets on the
// provided util::Clock, so a SimulatedClock yields bit-identical windows
// across runs.
//
// The headline derived gauge is the error-budget burn rate:
//
//   burn = bad_fraction / (1 - objective)
//
// burn == 1 means the class is consuming its error budget exactly as fast
// as the objective allows; burn > 1 means the budget will be exhausted
// before the window rolls over. Record() publishes the burn rate and
// compliance to the process metric registry ("server.slo.*{class=}") so
// dashboards and Statusz() read the same numbers.

#ifndef DRUGTREE_OBS_SLO_TRACKER_H_
#define DRUGTREE_OBS_SLO_TRACKER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace drugtree {
namespace obs {

struct SloOptions {
  /// A request is "good" when it succeeds within this many micros.
  int64_t target_latency_micros = 50'000;
  /// Fraction of requests that must be good (0 < objective < 1).
  double objective = 0.99;
  /// Rolling window the burn rate is computed over.
  int64_t window_micros = 60'000'000;
  /// Buckets the window is divided into (granularity of expiry).
  int num_buckets = 60;
};

class SloTracker {
 public:
  struct Snapshot {
    int64_t window_total = 0;
    int64_t window_good = 0;
    int64_t window_bad = 0;
    int64_t total = 0;  // cumulative since construction
    int64_t good = 0;
    int64_t bad = 0;
    /// Window good fraction; 1.0 while the window is empty (no news is
    /// good news for an idle class).
    double compliance = 1.0;
    /// Window bad fraction / (1 - objective); 0 while empty.
    double burn_rate = 0.0;
  };

  /// `clock` is borrowed and stamps bucket boundaries; `name` labels the
  /// published metrics (the query-class name).
  SloTracker(std::string name, const SloOptions& options,
             const util::Clock* clock);

  /// Records one terminal request outcome. `ok` is the request's success;
  /// a request only counts as good when it succeeded AND met the latency
  /// target (sheds/failures pass ok=false and any latency).
  void Record(int64_t latency_micros, bool ok);

  Snapshot GetSnapshot() const;

  /// {"name":...,"target_micros":...,"objective":...,"window_total":...,
  ///  "window_good":...,"window_bad":...,"compliance":...,"burn_rate":...,
  ///  "total":...,"good":...,"bad":...}
  std::string ToJson() const;

  const std::string& name() const { return name_; }
  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  // bucket_width-sized epoch this bucket holds
    int64_t good = 0;
    int64_t bad = 0;
  };

  /// Computes window sums at `now`, expiring stale buckets. Caller holds mu_.
  void WindowSumsLocked(int64_t now, int64_t* good, int64_t* bad) const;

  const std::string name_;
  const SloOptions options_;
  const util::Clock* clock_;
  const int64_t bucket_width_micros_;

  mutable std::mutex mu_;
  mutable std::vector<Bucket> buckets_;
  int64_t total_ = 0;
  int64_t good_ = 0;
  int64_t bad_ = 0;

  Gauge* burn_gauge_ = nullptr;        // burn rate x1000
  Gauge* compliance_gauge_ = nullptr;  // compliance x10000
};

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_SLO_TRACKER_H_
