#include "obs/resource_tracker.h"

#include <ctime>

#include "util/string_util.h"

namespace drugtree {
namespace obs {

MemoryTracker::MemoryTracker(std::string name, MemoryTracker* parent,
                             int64_t soft_limit_bytes, int64_t hard_limit_bytes)
    : name_(std::move(name)),
      parent_(parent),
      soft_limit_(soft_limit_bytes),
      hard_limit_(hard_limit_bytes) {}

MemoryTracker::~MemoryTracker() {
  // Children first: each child's destructor releases its outstanding usage
  // back into this node, so the remainder below is genuinely ours.
  {
    std::lock_guard<std::mutex> lock(children_mu_);
    children_.clear();
  }
  int64_t remaining = used_.load(std::memory_order_relaxed);
  if (remaining != 0 && parent_ != nullptr) parent_->Release(remaining);
}

void MemoryTracker::UpdatePeak(int64_t candidate) {
  int64_t observed = peak_.load(std::memory_order_relaxed);
  while (candidate > observed &&
         !peak_.compare_exchange_weak(observed, candidate,
                                      std::memory_order_relaxed)) {
  }
}

util::Status MemoryTracker::TryCharge(int64_t bytes) {
  if (bytes <= 0) return util::Status::OK();
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    int64_t now =
        node->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (node->hard_limit_ > 0 && now > node->hard_limit_) {
      // Roll back this node and every level already charged below it.
      for (MemoryTracker* p = this;; p = p->parent_) {
        p->used_.fetch_sub(bytes, std::memory_order_relaxed);
        if (p == node) break;
      }
      return util::Status::ResourceExhausted(util::StringPrintf(
          "memory limit exceeded on tracker '%s': %lld + %lld > %lld bytes",
          node->name_.c_str(), (long long)(now - bytes), (long long)bytes,
          (long long)node->hard_limit_));
    }
    node->UpdatePeak(now);
  }
  return util::Status::OK();
}

void MemoryTracker::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    int64_t now =
        node->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    node->UpdatePeak(now);
  }
}

void MemoryTracker::Release(int64_t bytes) {
  if (bytes <= 0) return;
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    node->used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

MemoryTracker* MemoryTracker::GetOrCreateChild(const std::string& name,
                                               int64_t soft_limit_bytes,
                                               int64_t hard_limit_bytes) {
  std::lock_guard<std::mutex> lock(children_mu_);
  for (const auto& child : children_) {
    if (child->name_ == name) return child.get();
  }
  children_.push_back(std::make_unique<MemoryTracker>(
      name, this, soft_limit_bytes, hard_limit_bytes));
  return children_.back().get();
}

std::string MemoryTracker::ToJson() const {
  std::string out = util::StringPrintf(
      "{\"name\":\"%s\",\"used\":%lld,\"peak\":%lld,\"soft_limit\":%lld,"
      "\"hard_limit\":%lld,\"children\":[",
      name_.c_str(), (long long)used(), (long long)peak(),
      (long long)soft_limit_, (long long)hard_limit_);
  {
    std::lock_guard<std::mutex> lock(children_mu_);
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += ",";
      out += children_[i]->ToJson();
    }
  }
  out += "]}";
  return out;
}

int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<int64_t>(ts.tv_nsec) / 1'000;
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace drugtree
