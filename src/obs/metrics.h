// Process-wide metrics registry: named, label-capable counters, gauges, and
// histograms that every layer (storage, integration, query, mobile) registers
// into. Replaces the siloed per-component counters as the *reporting* surface
// — components keep their cheap local counters for tests, and mirror them
// here so benches and EXPLAIN-style tooling see one unified snapshot.
//
// Naming scheme: dot-separated "<layer>.<component>.<event>", e.g.
// "network.requests", "storage.buffer_pool.hits", "query.result_cache.misses",
// "span.query.execute.total_micros". Labels (optional, ordered key=value)
// discriminate instances: GetCounter("network.requests", {{"link","3g"}}).
//
// Counters are sharded atomics (write-mostly, read-rarely); gauges are single
// atomics; histograms reuse util::Histogram under a mutex. Metric pointers
// returned by the registry are valid for the registry's lifetime, so hot
// paths resolve them once at construction and bump without any lookup.

#ifndef DRUGTREE_OBS_METRICS_H_
#define DRUGTREE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace drugtree {
namespace obs {

/// Ordered label set; ordering makes the rendered name canonical.
using Labels = std::map<std::string, std::string>;

/// Monotonic counter, thread-safe via cache-line-sharded atomics so
/// concurrent writers (thread pool workers, parallel sessions) do not
/// contend on one line.
class Counter {
 public:
  void Add(int64_t delta) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Point-in-time sum over shards (racy under concurrent writes, exact
  /// once writers quiesce — the snapshot contract).
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value (cache occupancy, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Distribution metric over util::Histogram (latencies, payload sizes).
class HistogramMetric {
 public:
  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(value);
  }

  util::Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

  /// The approximate p-th percentile (p in [0, 100]) of everything observed
  /// so far, with util::Histogram's bucket-interpolation semantics. The
  /// accessor benches and reports use for p50/p95/p99 instead of re-deriving
  /// percentiles from snapshots by hand.
  double ValueAtPercentile(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.Percentile(p);
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Clear();
  }

 private:
  mutable std::mutex mu_;
  util::Histogram hist_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's frozen state inside a RegistrySnapshot.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;        // counters and gauges
  util::Histogram hist;     // histograms

  /// Canonical rendered identity: name or name{k=v,...}.
  std::string FullName() const;
};

/// A consistent-enough view of every registered metric, sorted by FullName.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Lookup by FullName(); null when absent.
  const MetricSnapshot* Find(const std::string& full_name) const;

  /// Convenience: counter/gauge value by FullName, 0 when absent.
  int64_t Value(const std::string& full_name) const;

  /// Aligned "name value" text block (human / log consumption).
  std::string ToText() const;

  /// JSON object {"metrics":[{name, labels, kind, value|histogram}...]}.
  std::string ToJson() const;
};

/// The registry. Metrics are created on first Get*() and live as long as the
/// registry; repeated Get*() with the same (name, labels) returns the same
/// pointer. Kind conflicts (a name requested as two different kinds) fail a
/// DT_CHECK — names are a global contract.
class MetricRegistry {
 public:
  /// Shared process-wide instance — the one every subsystem registers into.
  static MetricRegistry* Default();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  HistogramMetric* GetHistogram(const std::string& name,
                                const Labels& labels = {});

  RegistrySnapshot Snapshot() const;

  /// Zeroes every registered metric (pointers stay valid) — used by benches
  /// between phases and by tests.
  void ResetAll();

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry* GetOrCreate(const std::string& name, const Labels& labels,
                     MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keyed by FullName
};

}  // namespace obs
}  // namespace drugtree

#endif  // DRUGTREE_OBS_METRICS_H_
