#include "obs/metrics.h"

#include <algorithm>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace obs {

namespace {

/// JSON string escaping for names/labels (control chars, quotes, backslash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string RenderFullName(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + v;
  }
  out += "}";
  return out;
}

}  // namespace

size_t Counter::ShardIndex() {
  // Hash the thread id once per thread; same thread always hits the same
  // shard, different threads spread across the array.
  static thread_local const size_t index =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kShards;
  return index;
}

std::string MetricSnapshot::FullName() const {
  return RenderFullName(name, labels);
}

const MetricSnapshot* RegistrySnapshot::Find(
    const std::string& full_name) const {
  for (const auto& m : metrics) {
    if (m.FullName() == full_name) return &m;
  }
  return nullptr;
}

int64_t RegistrySnapshot::Value(const std::string& full_name) const {
  const MetricSnapshot* m = Find(full_name);
  return m != nullptr ? m->value : 0;
}

std::string RegistrySnapshot::ToText() const {
  size_t width = 0;
  for (const auto& m : metrics) width = std::max(width, m.FullName().size());
  std::string out;
  for (const auto& m : metrics) {
    std::string name = m.FullName();
    out += name + std::string(width - name.size() + 2, ' ');
    if (m.kind == MetricKind::kHistogram) {
      out += m.hist.ToString();
    } else {
      out += util::StringPrintf("%lld", static_cast<long long>(m.value));
    }
    out += "\n";
  }
  return out;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(m.name);
    out += "\"";
    if (!m.labels.empty()) {
      out += ",\"labels\":{";
      bool lf = true;
      for (const auto& [k, v] : m.labels) {
        if (!lf) out += ",";
        lf = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += "}";
    }
    out += util::StringPrintf(",\"kind\":\"%s\"", KindName(m.kind));
    if (m.kind == MetricKind::kHistogram) {
      out += ",\"histogram\":" + m.hist.ToJson();
    } else {
      out += util::StringPrintf(",\"value\":%lld",
                                static_cast<long long>(m.value));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

MetricRegistry* MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return registry;
}

MetricRegistry::Entry* MetricRegistry::GetOrCreate(const std::string& name,
                                                   const Labels& labels,
                                                   MetricKind kind) {
  const std::string key = RenderFullName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    DT_CHECK(it->second.kind == kind)
        << "metric '" << key << "' registered as " << KindName(it->second.kind)
        << ", requested as " << KindName(kind);
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = labels;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  return GetOrCreate(name, labels, MetricKind::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name, const Labels& labels) {
  return GetOrCreate(name, labels, MetricKind::kGauge)->gauge.get();
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name,
                                              const Labels& labels) {
  return GetOrCreate(name, labels, MetricKind::kHistogram)->histogram.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot m;
    m.name = entry.name;
    m.labels = entry.labels;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.value = entry.counter->Value();
        break;
      case MetricKind::kGauge:
        m.value = entry.gauge->Value();
        break;
      case MetricKind::kHistogram:
        m.hist = entry.histogram->Snapshot();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;  // map iteration order == sorted by FullName
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter: entry.counter->Reset(); break;
      case MetricKind::kGauge: entry.gauge->Reset(); break;
      case MetricKind::kHistogram: entry.histogram->Reset(); break;
    }
  }
}

}  // namespace obs
}  // namespace drugtree
