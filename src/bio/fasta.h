// FASTA parsing and serialization (the interchange format the simulated
// protein sources speak, mirroring what DrugTree pulled from web databases).

#ifndef DRUGTREE_BIO_FASTA_H_
#define DRUGTREE_BIO_FASTA_H_

#include <string>
#include <vector>

#include "bio/sequence.h"
#include "util/result.h"

namespace drugtree {
namespace bio {

/// Parses FASTA text. Header lines are ">id optional description"; the id is
/// the first whitespace-delimited token. Blank lines are ignored; sequence
/// data may span multiple lines. Fails on malformed input (data before the
/// first header, invalid residues, duplicate ids, empty records).
util::Result<std::vector<Sequence>> ParseFasta(const std::string& text);

/// Serializes sequences as FASTA with lines wrapped at `width` residues.
std::string WriteFasta(const std::vector<Sequence>& seqs, int width = 60);

/// Reads and parses a FASTA file from disk.
util::Result<std::vector<Sequence>> ReadFastaFile(const std::string& path);

/// Writes sequences to a FASTA file on disk.
util::Status WriteFastaFile(const std::string& path,
                            const std::vector<Sequence>& seqs, int width = 60);

}  // namespace bio
}  // namespace drugtree

#endif  // DRUGTREE_BIO_FASTA_H_
