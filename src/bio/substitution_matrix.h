// Amino-acid substitution scoring matrices (BLOSUM62, PAM250) used by the
// alignment algorithms and by the evolution simulator's mutation kernel.

#ifndef DRUGTREE_BIO_SUBSTITUTION_MATRIX_H_
#define DRUGTREE_BIO_SUBSTITUTION_MATRIX_H_

#include <array>
#include <string>

#include "bio/sequence.h"
#include "util/result.h"

namespace drugtree {
namespace bio {

/// A 20x20 integer scoring matrix over the canonical residue alphabet.
class SubstitutionMatrix {
 public:
  using Table = std::array<std::array<int, kNumAminoAcids>, kNumAminoAcids>;

  SubstitutionMatrix(std::string name, const Table& table)
      : name_(std::move(name)), table_(table) {}

  const std::string& name() const { return name_; }

  /// Score for aligning residue indices i, j (see ResidueIndex()).
  int ScoreByIndex(int i, int j) const { return table_[i][j]; }

  /// Score for aligning residue characters a, b; both must be canonical.
  int Score(char a, char b) const {
    return table_[ResidueIndex(a)][ResidueIndex(b)];
  }

  /// True iff the matrix is symmetric (all standard matrices are).
  bool IsSymmetric() const;

  /// The classic BLOSUM62 matrix (process-wide singleton).
  static const SubstitutionMatrix& Blosum62();

  /// The classic PAM250 matrix (process-wide singleton).
  static const SubstitutionMatrix& Pam250();

  /// Looks a matrix up by name ("BLOSUM62" / "PAM250", case-insensitive).
  static util::Result<const SubstitutionMatrix*> ByName(const std::string& name);

 private:
  std::string name_;
  Table table_;
};

}  // namespace bio
}  // namespace drugtree

#endif  // DRUGTREE_BIO_SUBSTITUTION_MATRIX_H_
