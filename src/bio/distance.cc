#include "bio/distance.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace bio {

util::Result<DistanceMatrix> DistanceMatrix::Create(
    std::vector<std::string> names) {
  std::unordered_set<std::string> seen;
  for (const auto& n : names) {
    if (!seen.insert(n).second) {
      return util::Status::InvalidArgument("duplicate taxon name: " + n);
    }
  }
  DistanceMatrix m;
  m.names_ = std::move(names);
  m.data_.assign(m.names_.size() * m.names_.size(), 0.0);
  return m;
}

void DistanceMatrix::Set(size_t i, size_t j, double v) {
  DT_CHECK(i < size() && j < size()) << "index out of range";
  DT_CHECK(i != j) << "diagonal must stay zero";
  DT_CHECK(v >= 0.0) << "distances must be non-negative";
  data_[i * size() + j] = v;
  data_[j * size() + i] = v;
}

bool DistanceMatrix::IsValid() const {
  size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    if (at(i, i) != 0.0) return false;
    for (size_t j = i + 1; j < n; ++j) {
      if (at(i, j) < 0.0 || at(i, j) != at(j, i)) return false;
    }
  }
  return true;
}

int DistanceMatrix::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

util::Result<double> AlignmentDistance(const Sequence& a, const Sequence& b,
                                       const DistanceParams& params) {
  DRUGTREE_ASSIGN_OR_RETURN(Alignment aln, GlobalAlign(a, b, params.align));
  double identity = aln.Identity();
  double d;
  if (params.poisson_correct) {
    // Poisson correction: distance = -ln(identity). Clamp for identity ~ 0.
    double id = std::max(identity, std::exp(-params.max_distance));
    d = -std::log(id);
  } else {
    d = 1.0 - identity;
  }
  return std::min(d, params.max_distance);
}

namespace {

template <typename PairFn>
util::Status FillMatrix(DistanceMatrix* m, size_t n, util::ThreadPool* pool,
                        const PairFn& fn) {
  // Enumerate the upper triangle.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  if (pool == nullptr) {
    for (auto [i, j] : pairs) {
      auto d = fn(i, j);
      if (!d.ok()) return d.status();
      m->Set(i, j, *d);
    }
    return util::Status::OK();
  }
  std::vector<util::Status> errors(pairs.size());
  std::vector<double> values(pairs.size(), 0.0);
  pool->ParallelFor(pairs.size(), [&](size_t p) {
    auto d = fn(pairs[p].first, pairs[p].second);
    if (d.ok()) {
      values[p] = *d;
    } else {
      errors[p] = d.status();
    }
  });
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (!errors[p].ok()) return errors[p];
    m->Set(pairs[p].first, pairs[p].second, values[p]);
  }
  return util::Status::OK();
}

std::vector<std::string> NamesOf(const std::vector<Sequence>& seqs) {
  std::vector<std::string> names;
  names.reserve(seqs.size());
  for (const auto& s : seqs) names.push_back(s.id());
  return names;
}

}  // namespace

util::Result<DistanceMatrix> AlignmentDistanceMatrix(
    const std::vector<Sequence>& seqs, const DistanceParams& params,
    util::ThreadPool* pool) {
  DRUGTREE_ASSIGN_OR_RETURN(DistanceMatrix m,
                            DistanceMatrix::Create(NamesOf(seqs)));
  DRUGTREE_RETURN_IF_ERROR(FillMatrix(
      &m, seqs.size(), pool, [&](size_t i, size_t j) {
        return AlignmentDistance(seqs[i], seqs[j], params);
      }));
  return m;
}

namespace {

// Dense k-mer count profile over the 20-letter alphabet; 20^k entries.
util::Result<std::vector<float>> KmerProfile(const Sequence& s, int k) {
  size_t dims = 1;
  for (int i = 0; i < k; ++i) dims *= kNumAminoAcids;
  std::vector<float> prof(dims, 0.0f);
  if (s.length() < static_cast<size_t>(k)) return prof;
  const std::string& r = s.residues();
  for (size_t i = 0; i + k <= r.size(); ++i) {
    size_t code = 0;
    for (int j = 0; j < k; ++j) {
      int idx = ResidueIndex(r[i + j]);
      if (idx < 0) {
        return util::Status::InvalidArgument("invalid residue in " + s.id());
      }
      code = code * kNumAminoAcids + static_cast<size_t>(idx);
    }
    prof[code] += 1.0f;
  }
  return prof;
}

double CosineDistance(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += double(a[i]) * b[i];
    na += double(a[i]) * a[i];
    nb += double(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 1.0;
  double cos = dot / (std::sqrt(na) * std::sqrt(nb));
  return std::max(0.0, 1.0 - cos);
}

}  // namespace

util::Result<double> KmerDistance(const Sequence& a, const Sequence& b, int k) {
  if (k < 1 || k > 4) {
    return util::Status::InvalidArgument(
        util::StringPrintf("k must be in [1,4], got %d", k));
  }
  DRUGTREE_ASSIGN_OR_RETURN(std::vector<float> pa, KmerProfile(a, k));
  DRUGTREE_ASSIGN_OR_RETURN(std::vector<float> pb, KmerProfile(b, k));
  return CosineDistance(pa, pb);
}

util::Result<DistanceMatrix> KmerDistanceMatrix(
    const std::vector<Sequence>& seqs, int k, util::ThreadPool* pool) {
  if (k < 1 || k > 4) {
    return util::Status::InvalidArgument(
        util::StringPrintf("k must be in [1,4], got %d", k));
  }
  // Precompute all profiles once (the dominant cost for large k).
  std::vector<std::vector<float>> profiles(seqs.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    DRUGTREE_ASSIGN_OR_RETURN(profiles[i], KmerProfile(seqs[i], k));
  }
  DRUGTREE_ASSIGN_OR_RETURN(DistanceMatrix m,
                            DistanceMatrix::Create(NamesOf(seqs)));
  DRUGTREE_RETURN_IF_ERROR(FillMatrix(
      &m, seqs.size(), pool, [&](size_t i, size_t j) -> util::Result<double> {
        return CosineDistance(profiles[i], profiles[j]);
      }));
  return m;
}

}  // namespace bio
}  // namespace drugtree
