#include "bio/align.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace drugtree {
namespace bio {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

util::Status ValidateParams(const AlignParams& params) {
  if (params.matrix == nullptr) {
    return util::Status::InvalidArgument("alignment matrix must not be null");
  }
  if (params.gap_open < 0 || params.gap_extend < 0) {
    return util::Status::InvalidArgument("gap penalties must be non-negative");
  }
  if (params.gap_open == 0 && params.gap_extend == 0) {
    return util::Status::InvalidArgument(
        "at least one of gap_open/gap_extend must be positive");
  }
  return util::Status::OK();
}

// Backtrace direction codes per DP layer.
enum : uint8_t { kFromM = 0, kFromX = 1, kFromY = 2, kStop = 3 };

}  // namespace

double Alignment::Identity() const {
  size_t matches = 0, cols = 0;
  for (size_t i = 0; i < aligned_a.size(); ++i) {
    if (aligned_a[i] == '-' || aligned_b[i] == '-') continue;
    ++cols;
    if (aligned_a[i] == aligned_b[i]) ++matches;
  }
  return cols ? static_cast<double>(matches) / static_cast<double>(cols) : 0.0;
}

double Alignment::GapFraction() const {
  if (aligned_a.empty()) return 0.0;
  size_t gaps = 0;
  for (size_t i = 0; i < aligned_a.size(); ++i) {
    if (aligned_a[i] == '-' || aligned_b[i] == '-') ++gaps;
  }
  return static_cast<double>(gaps) / static_cast<double>(aligned_a.size());
}

util::Result<Alignment> GlobalAlign(const Sequence& a, const Sequence& b,
                                    const AlignParams& params) {
  DRUGTREE_RETURN_IF_ERROR(ValidateParams(params));
  const std::string& sa = a.residues();
  const std::string& sb = b.residues();
  const int m = static_cast<int>(sa.size());
  const int n = static_cast<int>(sb.size());
  const int go = params.gap_open;
  const int ge = params.gap_extend;
  const SubstitutionMatrix& mat = *params.matrix;

  // Three-layer Gotoh DP. M = a[i] aligned to b[j]; X = gap in b (a consumes);
  // Y = gap in a (b consumes).
  auto idx = [n](int i, int j) { return i * (n + 1) + j; };
  std::vector<int> M((m + 1) * (n + 1), kNegInf);
  std::vector<int> X((m + 1) * (n + 1), kNegInf);
  std::vector<int> Y((m + 1) * (n + 1), kNegInf);
  std::vector<uint8_t> bm((m + 1) * (n + 1), kStop);
  std::vector<uint8_t> bx((m + 1) * (n + 1), kStop);
  std::vector<uint8_t> by((m + 1) * (n + 1), kStop);

  M[idx(0, 0)] = 0;
  for (int i = 1; i <= m; ++i) {
    X[idx(i, 0)] = -go - i * ge;
    bx[idx(i, 0)] = (i == 1) ? kFromM : kFromX;
  }
  for (int j = 1; j <= n; ++j) {
    Y[idx(0, j)] = -go - j * ge;
    by[idx(0, j)] = (j == 1) ? kFromM : kFromY;
  }

  for (int i = 1; i <= m; ++i) {
    int ra = ResidueIndex(sa[i - 1]);
    for (int j = 1; j <= n; ++j) {
      int rb = ResidueIndex(sb[j - 1]);
      int s = mat.ScoreByIndex(ra, rb);
      // M layer.
      int prev_m = M[idx(i - 1, j - 1)];
      int prev_x = X[idx(i - 1, j - 1)];
      int prev_y = Y[idx(i - 1, j - 1)];
      int best = prev_m;
      uint8_t from = kFromM;
      if (prev_x > best) { best = prev_x; from = kFromX; }
      if (prev_y > best) { best = prev_y; from = kFromY; }
      if (best > kNegInf) {
        M[idx(i, j)] = best + s;
        bm[idx(i, j)] = from;
      }
      // X layer (gap in b; consume a[i-1]).
      int open_x = M[idx(i - 1, j)] > kNegInf ? M[idx(i - 1, j)] - go - ge
                                              : kNegInf;
      int ext_x = X[idx(i - 1, j)] > kNegInf ? X[idx(i - 1, j)] - ge : kNegInf;
      if (open_x >= ext_x) {
        X[idx(i, j)] = open_x;
        bx[idx(i, j)] = kFromM;
      } else {
        X[idx(i, j)] = ext_x;
        bx[idx(i, j)] = kFromX;
      }
      // Y layer (gap in a; consume b[j-1]).
      int open_y = M[idx(i, j - 1)] > kNegInf ? M[idx(i, j - 1)] - go - ge
                                              : kNegInf;
      int ext_y = Y[idx(i, j - 1)] > kNegInf ? Y[idx(i, j - 1)] - ge : kNegInf;
      if (open_y >= ext_y) {
        Y[idx(i, j)] = open_y;
        by[idx(i, j)] = kFromM;
      } else {
        Y[idx(i, j)] = ext_y;
        by[idx(i, j)] = kFromY;
      }
    }
  }

  // Pick the best final layer and backtrace.
  Alignment out;
  int layer = kFromM;
  int best = M[idx(m, n)];
  if (X[idx(m, n)] > best) { best = X[idx(m, n)]; layer = kFromX; }
  if (Y[idx(m, n)] > best) { best = Y[idx(m, n)]; layer = kFromY; }
  out.score = best;

  int i = m, j = n;
  std::string ra, rb;
  while (i > 0 || j > 0) {
    if (layer == kFromM) {
      uint8_t from = bm[idx(i, j)];
      ra += sa[i - 1];
      rb += sb[j - 1];
      --i;
      --j;
      layer = from;
    } else if (layer == kFromX) {
      uint8_t from = bx[idx(i, j)];
      ra += sa[i - 1];
      rb += '-';
      --i;
      layer = from;
    } else {  // kFromY
      uint8_t from = by[idx(i, j)];
      ra += '-';
      rb += sb[j - 1];
      --j;
      layer = from;
    }
  }
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  out.aligned_a = std::move(ra);
  out.aligned_b = std::move(rb);
  return out;
}

util::Result<Alignment> LocalAlign(const Sequence& a, const Sequence& b,
                                   const AlignParams& params) {
  DRUGTREE_RETURN_IF_ERROR(ValidateParams(params));
  const std::string& sa = a.residues();
  const std::string& sb = b.residues();
  const int m = static_cast<int>(sa.size());
  const int n = static_cast<int>(sb.size());
  const int go = params.gap_open;
  const int ge = params.gap_extend;
  const SubstitutionMatrix& mat = *params.matrix;

  auto idx = [n](int i, int j) { return i * (n + 1) + j; };
  std::vector<int> M((m + 1) * (n + 1), 0);
  std::vector<int> X((m + 1) * (n + 1), kNegInf);
  std::vector<int> Y((m + 1) * (n + 1), kNegInf);
  std::vector<uint8_t> bm((m + 1) * (n + 1), kStop);
  std::vector<uint8_t> bx((m + 1) * (n + 1), kStop);
  std::vector<uint8_t> by((m + 1) * (n + 1), kStop);

  int best = 0, bi = 0, bj = 0, blayer = kStop;
  for (int i = 1; i <= m; ++i) {
    int ra = ResidueIndex(sa[i - 1]);
    for (int j = 1; j <= n; ++j) {
      int rb = ResidueIndex(sb[j - 1]);
      int s = mat.ScoreByIndex(ra, rb);
      int prev_m = M[idx(i - 1, j - 1)];
      int prev_x = X[idx(i - 1, j - 1)];
      int prev_y = Y[idx(i - 1, j - 1)];
      int v = prev_m;
      uint8_t from = kFromM;
      if (prev_x > v) { v = prev_x; from = kFromX; }
      if (prev_y > v) { v = prev_y; from = kFromY; }
      v += s;
      // Canonical Smith-Waterman: any cell at zero restarts the alignment,
      // so traceback stops there even when the path could extend at no cost.
      if (v <= 0) {
        v = std::max(v, 0);
        from = kStop;
      }
      M[idx(i, j)] = v;
      bm[idx(i, j)] = from;

      int open_x = M[idx(i - 1, j)] - go - ge;
      int ext_x = X[idx(i - 1, j)] > kNegInf ? X[idx(i - 1, j)] - ge : kNegInf;
      if (open_x >= ext_x) {
        X[idx(i, j)] = open_x;
        bx[idx(i, j)] = kFromM;
      } else {
        X[idx(i, j)] = ext_x;
        bx[idx(i, j)] = kFromX;
      }
      int open_y = M[idx(i, j - 1)] - go - ge;
      int ext_y = Y[idx(i, j - 1)] > kNegInf ? Y[idx(i, j - 1)] - ge : kNegInf;
      if (open_y >= ext_y) {
        Y[idx(i, j)] = open_y;
        by[idx(i, j)] = kFromM;
      } else {
        Y[idx(i, j)] = ext_y;
        by[idx(i, j)] = kFromY;
      }
      if (M[idx(i, j)] > best) {
        best = M[idx(i, j)];
        bi = i;
        bj = j;
        blayer = kFromM;
      }
    }
  }

  Alignment out;
  out.score = best;
  if (best == 0) return out;  // no positive-scoring local region

  int i = bi, j = bj, layer = blayer;
  std::string ra, rb;
  while (i > 0 && j > 0) {
    if (layer == kFromM) {
      if (M[idx(i, j)] == 0 && bm[idx(i, j)] == kStop) break;
      uint8_t from = bm[idx(i, j)];
      ra += sa[i - 1];
      rb += sb[j - 1];
      --i;
      --j;
      if (from == kStop) break;
      layer = from;
    } else if (layer == kFromX) {
      uint8_t from = bx[idx(i, j)];
      ra += sa[i - 1];
      rb += '-';
      --i;
      layer = from;
    } else {
      uint8_t from = by[idx(i, j)];
      ra += '-';
      rb += sb[j - 1];
      --j;
      layer = from;
    }
  }
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  out.aligned_a = std::move(ra);
  out.aligned_b = std::move(rb);
  return out;
}

util::Result<int> GlobalAlignScore(const Sequence& a, const Sequence& b,
                                   const AlignParams& params) {
  DRUGTREE_RETURN_IF_ERROR(ValidateParams(params));
  const std::string& sa = a.residues();
  const std::string& sb = b.residues();
  const int m = static_cast<int>(sa.size());
  const int n = static_cast<int>(sb.size());
  const int go = params.gap_open;
  const int ge = params.gap_extend;
  const SubstitutionMatrix& mat = *params.matrix;

  // Two rolling rows per layer.
  std::vector<int> M0(n + 1, kNegInf), M1(n + 1, kNegInf);
  std::vector<int> X0(n + 1, kNegInf), X1(n + 1, kNegInf);
  std::vector<int> Y0(n + 1, kNegInf), Y1(n + 1, kNegInf);
  M0[0] = 0;
  for (int j = 1; j <= n; ++j) Y0[j] = -go - j * ge;

  for (int i = 1; i <= m; ++i) {
    std::fill(M1.begin(), M1.end(), kNegInf);
    std::fill(X1.begin(), X1.end(), kNegInf);
    std::fill(Y1.begin(), Y1.end(), kNegInf);
    X1[0] = -go - i * ge;
    int ra = ResidueIndex(sa[i - 1]);
    for (int j = 1; j <= n; ++j) {
      int rb = ResidueIndex(sb[j - 1]);
      int s = mat.ScoreByIndex(ra, rb);
      int diag = std::max({M0[j - 1], X0[j - 1], Y0[j - 1]});
      if (diag > kNegInf) M1[j] = diag + s;
      int open_x = M0[j] > kNegInf ? M0[j] - go - ge : kNegInf;
      int ext_x = X0[j] > kNegInf ? X0[j] - ge : kNegInf;
      X1[j] = std::max(open_x, ext_x);
      int open_y = M1[j - 1] > kNegInf ? M1[j - 1] - go - ge : kNegInf;
      int ext_y = Y1[j - 1] > kNegInf ? Y1[j - 1] - ge : kNegInf;
      Y1[j] = std::max(open_y, ext_y);
    }
    M0.swap(M1);
    X0.swap(X1);
    Y0.swap(Y1);
  }
  return std::max({M0[n], X0[n], Y0[n]});
}

}  // namespace bio
}  // namespace drugtree
