#include "bio/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace drugtree {
namespace bio {

namespace {

// Background amino-acid frequencies (roughly UniProt-wide averages), indexed
// like kAminoAcids: A R N D C Q E G H I L K M F P S T W Y V.
constexpr double kBackgroundFreq[kNumAminoAcids] = {
    0.083, 0.055, 0.041, 0.055, 0.014, 0.039, 0.067, 0.071, 0.023, 0.059,
    0.097, 0.058, 0.024, 0.039, 0.047, 0.066, 0.054, 0.011, 0.029, 0.069,
};

char SampleResidue(util::Rng* rng) {
  static const std::vector<double> weights(std::begin(kBackgroundFreq),
                                           std::end(kBackgroundFreq));
  return kAminoAcids[rng->WeightedIndex(weights)];
}

std::string RandomAncestor(int length, util::Rng* rng) {
  std::string s;
  s.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) s += SampleResidue(rng);
  return s;
}

// Applies `expected_subs = rate * branch_length * len` mutation events.
std::string Mutate(const std::string& parent, double branch_length,
                   const EvolutionParams& params, util::Rng* rng) {
  std::string child = parent;
  double expected =
      params.mutation_rate * branch_length * static_cast<double>(child.size());
  // Poisson-ish: sample the event count from a rounded exponential sum.
  int events = 0;
  double t = 0.0;
  while (true) {
    t += rng->NextExponential(1.0);
    if (t > expected) break;
    ++events;
  }
  for (int e = 0; e < events && !child.empty(); ++e) {
    if (rng->Bernoulli(params.indel_probability)) {
      int len = static_cast<int>(rng->UniformRange(1, 3));
      if (rng->Bernoulli(0.5)) {
        // Insertion.
        size_t pos = rng->Uniform(child.size() + 1);
        std::string ins;
        for (int i = 0; i < len; ++i) ins += SampleResidue(rng);
        child.insert(pos, ins);
      } else {
        // Deletion (keep at least 10 residues).
        if (child.size() > static_cast<size_t>(len) + 10) {
          size_t pos = rng->Uniform(child.size() - len);
          child.erase(pos, static_cast<size_t>(len));
        }
      }
    } else {
      size_t pos = rng->Uniform(child.size());
      char nc;
      do {
        nc = SampleResidue(rng);
      } while (nc == child[pos]);
      child[pos] = nc;
    }
  }
  return child;
}

struct SimNode {
  int left = -1;
  int right = -1;
  double branch_length = 0.0;  // to parent
  std::string sequence;
  std::string name;  // leaves only
};

void WriteNewick(const std::vector<SimNode>& nodes, int idx, std::string* out) {
  const SimNode& n = nodes[static_cast<size_t>(idx)];
  if (n.left < 0) {
    *out += n.name;
  } else {
    *out += '(';
    WriteNewick(nodes, n.left, out);
    *out += ',';
    WriteNewick(nodes, n.right, out);
    *out += ')';
  }
  *out += util::StringPrintf(":%.6f", n.branch_length);
}

}  // namespace

util::Result<EvolvedFamily> EvolveFamily(const EvolutionParams& params,
                                         util::Rng* rng) {
  if (params.num_taxa < 2) {
    return util::Status::InvalidArgument("num_taxa must be >= 2");
  }
  if (params.sequence_length < 20) {
    return util::Status::InvalidArgument("sequence_length must be >= 20");
  }
  if (params.mutation_rate <= 0 || params.mean_branch_length <= 0) {
    return util::Status::InvalidArgument(
        "mutation_rate and mean_branch_length must be positive");
  }
  if (rng == nullptr) return util::Status::InvalidArgument("rng must not be null");

  // Grow a random binary tree by repeatedly splitting a random leaf.
  std::vector<SimNode> nodes;
  nodes.push_back(SimNode{});  // root
  std::vector<int> leaves = {0};
  auto sample_branch = [&]() {
    double b = rng->NextExponential(1.0 / params.mean_branch_length);
    return std::max(b, 0.01);
  };
  while (static_cast<int>(leaves.size()) < params.num_taxa) {
    size_t pick = params.clock_like ? 0 : rng->Uniform(leaves.size());
    if (params.clock_like) {
      // Clock-like growth: always split the shallowest leaf (breadth-first),
      // giving all leaves similar root depth.
      pick = 0;
    }
    int leaf = leaves[pick];
    leaves.erase(leaves.begin() + static_cast<long>(pick));
    int l = static_cast<int>(nodes.size());
    nodes.push_back(SimNode{});
    int r = static_cast<int>(nodes.size());
    nodes.push_back(SimNode{});
    nodes[static_cast<size_t>(leaf)].left = l;
    nodes[static_cast<size_t>(leaf)].right = r;
    double bl = params.clock_like ? params.mean_branch_length : sample_branch();
    double br = params.clock_like ? params.mean_branch_length : sample_branch();
    nodes[static_cast<size_t>(l)].branch_length = bl;
    nodes[static_cast<size_t>(r)].branch_length = br;
    leaves.push_back(l);
    leaves.push_back(r);
  }

  // Name leaves deterministically in index order.
  int taxon = 0;
  for (auto& n : nodes) {
    if (n.left < 0) {
      n.name = util::StringPrintf("%s%04d", params.id_prefix.c_str(), taxon++);
    }
  }

  // Evolve sequences root-down (iterative DFS to bound stack depth).
  nodes[0].sequence = RandomAncestor(params.sequence_length, rng);
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    int idx = stack.back();
    stack.pop_back();
    const SimNode& n = nodes[static_cast<size_t>(idx)];
    if (n.left < 0) continue;
    for (int child : {n.left, n.right}) {
      SimNode& c = nodes[static_cast<size_t>(child)];
      c.sequence = Mutate(n.sequence, c.branch_length, params, rng);
      stack.push_back(child);
    }
  }

  EvolvedFamily out;
  for (const auto& n : nodes) {
    if (n.left < 0) {
      DRUGTREE_ASSIGN_OR_RETURN(Sequence s, Sequence::Create(n.name, n.sequence));
      out.sequences.push_back(std::move(s));
    }
  }
  std::string newick;
  WriteNewick(nodes, 0, &newick);
  // The root's :0.0 branch is harmless but conventional Newick drops it.
  out.true_tree_newick = newick + ";";
  return out;
}

std::vector<Sequence> RandomSequences(int n, int length, util::Rng* rng,
                                      const std::string& id_prefix) {
  std::vector<Sequence> out;
  out.reserve(static_cast<size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) {
    out.emplace_back(util::StringPrintf("%s%04d", id_prefix.c_str(), i),
                     RandomAncestor(length, rng));
  }
  return out;
}

}  // namespace bio
}  // namespace drugtree
