// Protein sequences and the residue alphabet.

#ifndef DRUGTREE_BIO_SEQUENCE_H_
#define DRUGTREE_BIO_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace drugtree {
namespace bio {

/// The 20 canonical amino acids, in the conventional alphabetical
/// one-letter-code order used by substitution matrices.
inline constexpr char kAminoAcids[] = "ARNDCQEGHILKMFPSTWYV";
inline constexpr int kNumAminoAcids = 20;

/// Maps a one-letter residue code to its index in kAminoAcids, or -1 if the
/// character is not a canonical residue. Case-insensitive.
int ResidueIndex(char c);

/// True iff `c` is a canonical one-letter residue code.
bool IsValidResidue(char c);

/// A named protein sequence. Residues are stored upper-case.
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::string id, std::string residues)
      : id_(std::move(id)), residues_(std::move(residues)) {}

  /// Validates that every character is a canonical residue; returns the
  /// sequence or a ParseError naming the offending position.
  static util::Result<Sequence> Create(std::string id, std::string residues);

  const std::string& id() const { return id_; }
  const std::string& residues() const { return residues_; }
  size_t length() const { return residues_.size(); }
  bool empty() const { return residues_.empty(); }
  char at(size_t i) const { return residues_[i]; }

  /// Residue composition: counts[i] = occurrences of kAminoAcids[i].
  std::vector<int> Composition() const;

  /// Average residue mass in daltons times length (approximate molecular
  /// weight of the chain, ignoring water).
  double ApproximateMassDa() const;

  bool operator==(const Sequence& other) const {
    return id_ == other.id_ && residues_ == other.residues_;
  }

 private:
  std::string id_;
  std::string residues_;
};

}  // namespace bio
}  // namespace drugtree

#endif  // DRUGTREE_BIO_SEQUENCE_H_
