// Sequence-evolution simulator.
//
// DrugTree's evaluation needs protein families with genuine phylogenetic
// signal but the paper's real data sources are unavailable, so we evolve
// synthetic families: a random branching process produces a reference tree,
// an ancestral sequence is mutated down its branches, and the leaf sequences
// (plus the true tree in Newick form) are returned. Distance-based
// reconstruction on such data behaves like it does on curated families, and
// the true tree gives an accuracy yardstick (Robinson-Foulds in phylo/).

#ifndef DRUGTREE_BIO_SYNTHETIC_H_
#define DRUGTREE_BIO_SYNTHETIC_H_

#include <string>
#include <vector>

#include "bio/sequence.h"
#include "util/result.h"
#include "util/rng.h"

namespace drugtree {
namespace bio {

/// Parameters of the evolution simulation.
struct EvolutionParams {
  /// Number of leaf taxa (proteins) to generate. Must be >= 2.
  int num_taxa = 32;

  /// Length of the ancestral sequence.
  int sequence_length = 200;

  /// Expected substitutions per site along a branch of length 1.
  double mutation_rate = 0.3;

  /// Mean branch length (branch lengths are exponential around this mean).
  double mean_branch_length = 0.4;

  /// Probability that a mutation event is an insertion or deletion instead
  /// of a substitution (indels are applied with length 1-3).
  double indel_probability = 0.02;

  /// Prefix for generated taxon ids ("P0001", ...).
  std::string id_prefix = "P";

  /// Whether the random topology is ultrametric-ish (clock-like: all leaves
  /// roughly equidistant from the root, which favours UPGMA) or freely
  /// branching (which NJ handles better). Used by experiment E5.
  bool clock_like = false;
};

/// Output of the simulator: leaf sequences and the generating tree.
struct EvolvedFamily {
  std::vector<Sequence> sequences;

  /// The true generating tree in Newick syntax, leaf names matching the
  /// sequence ids, with branch lengths.
  std::string true_tree_newick;
};

/// Evolves a synthetic protein family. Deterministic given `rng`'s seed.
util::Result<EvolvedFamily> EvolveFamily(const EvolutionParams& params,
                                         util::Rng* rng);

/// Generates `n` unrelated random sequences (uniform residues) — the
/// null-signal control in tests.
std::vector<Sequence> RandomSequences(int n, int length, util::Rng* rng,
                                      const std::string& id_prefix = "R");

}  // namespace bio
}  // namespace drugtree

#endif  // DRUGTREE_BIO_SYNTHETIC_H_
