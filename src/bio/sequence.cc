#include "bio/sequence.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace drugtree {
namespace bio {

namespace {

// Average monoisotopic-ish residue masses (Da), indexed like kAminoAcids.
constexpr double kResidueMassDa[kNumAminoAcids] = {
    71.08,   // A
    156.19,  // R
    114.10,  // N
    115.09,  // D
    103.14,  // C
    128.13,  // Q
    129.12,  // E
    57.05,   // G
    137.14,  // H
    113.16,  // I
    113.16,  // L
    128.17,  // K
    131.19,  // M
    147.18,  // F
    97.12,   // P
    87.08,   // S
    101.10,  // T
    186.21,  // W
    163.18,  // Y
    99.13,   // V
};

std::array<int, 256> BuildResidueIndexTable() {
  std::array<int, 256> table;
  table.fill(-1);
  for (int i = 0; i < kNumAminoAcids; ++i) {
    unsigned char upper = static_cast<unsigned char>(kAminoAcids[i]);
    table[upper] = i;
    table[static_cast<unsigned char>(std::tolower(upper))] = i;
  }
  return table;
}

const std::array<int, 256>& ResidueIndexTable() {
  static const std::array<int, 256> table = BuildResidueIndexTable();
  return table;
}

}  // namespace

int ResidueIndex(char c) {
  return ResidueIndexTable()[static_cast<unsigned char>(c)];
}

bool IsValidResidue(char c) { return ResidueIndex(c) >= 0; }

util::Result<Sequence> Sequence::Create(std::string id, std::string residues) {
  for (size_t i = 0; i < residues.size(); ++i) {
    int idx = ResidueIndex(residues[i]);
    if (idx < 0) {
      return util::Status::ParseError(util::StringPrintf(
          "sequence '%s': invalid residue '%c' at position %zu", id.c_str(),
          residues[i], i));
    }
    residues[i] = kAminoAcids[idx];  // normalize to upper case
  }
  return Sequence(std::move(id), std::move(residues));
}

std::vector<int> Sequence::Composition() const {
  std::vector<int> counts(kNumAminoAcids, 0);
  for (char c : residues_) {
    int idx = ResidueIndex(c);
    if (idx >= 0) ++counts[idx];
  }
  return counts;
}

double Sequence::ApproximateMassDa() const {
  double mass = residues_.empty() ? 0.0 : 18.02;  // one water for the chain
  for (char c : residues_) {
    int idx = ResidueIndex(c);
    if (idx >= 0) mass += kResidueMassDa[idx];
  }
  return mass;
}

}  // namespace bio
}  // namespace drugtree
