#include "bio/fasta.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/string_util.h"

namespace drugtree {
namespace bio {

util::Result<std::vector<Sequence>> ParseFasta(const std::string& text) {
  std::vector<Sequence> out;
  std::unordered_set<std::string> seen_ids;
  std::string cur_id;
  std::string cur_desc;
  std::string cur_residues;
  bool in_record = false;

  auto flush = [&]() -> util::Status {
    if (!in_record) return util::Status::OK();
    if (cur_residues.empty()) {
      return util::Status::ParseError("FASTA record '" + cur_id +
                                      "' has no sequence data");
    }
    auto seq = Sequence::Create(cur_id, std::move(cur_residues));
    if (!seq.ok()) return seq.status();
    out.push_back(std::move(seq).ValueUnsafe());
    cur_residues.clear();
    return util::Status::OK();
  };

  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '>') {
      DRUGTREE_RETURN_IF_ERROR(flush());
      std::string_view header = util::Trim(trimmed.substr(1));
      if (header.empty()) {
        return util::Status::ParseError(util::StringPrintf(
            "FASTA line %zu: empty header", line_no));
      }
      size_t space = header.find_first_of(" \t");
      cur_id = std::string(space == std::string_view::npos
                               ? header
                               : header.substr(0, space));
      if (!seen_ids.insert(cur_id).second) {
        return util::Status::ParseError("duplicate FASTA id: " + cur_id);
      }
      in_record = true;
    } else {
      if (!in_record) {
        return util::Status::ParseError(util::StringPrintf(
            "FASTA line %zu: sequence data before first header", line_no));
      }
      for (char c : trimmed) {
        if (!std::isspace(static_cast<unsigned char>(c))) cur_residues += c;
      }
    }
  }
  DRUGTREE_RETURN_IF_ERROR(flush());
  return out;
}

std::string WriteFasta(const std::vector<Sequence>& seqs, int width) {
  if (width <= 0) width = 60;
  std::string out;
  for (const auto& seq : seqs) {
    out += '>';
    out += seq.id();
    out += '\n';
    const std::string& r = seq.residues();
    for (size_t i = 0; i < r.size(); i += static_cast<size_t>(width)) {
      out += r.substr(i, static_cast<size_t>(width));
      out += '\n';
    }
  }
  return out;
}

util::Result<std::vector<Sequence>> ReadFastaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open FASTA file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = ParseFasta(buf.str());
  if (!result.ok()) return result.status().WithContext(path);
  return result;
}

util::Status WriteFastaFile(const std::string& path,
                            const std::vector<Sequence>& seqs, int width) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  out << WriteFasta(seqs, width);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::OK();
}

}  // namespace bio
}  // namespace drugtree
