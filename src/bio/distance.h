// Sequence distances and distance matrices — the input to tree construction.
//
// Two estimators are provided:
//  * alignment identity distance with a Poisson (Kimura-style) correction,
//    accurate but O(len^2) per pair;
//  * k-mer profile distance, a cheap alignment-free approximation used for
//    large protein sets.

#ifndef DRUGTREE_BIO_DISTANCE_H_
#define DRUGTREE_BIO_DISTANCE_H_

#include <string>
#include <vector>

#include "bio/align.h"
#include "bio/sequence.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace bio {

/// A symmetric matrix of pairwise distances with a zero diagonal, plus the
/// taxon names the rows/columns refer to.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Creates an n x n zero matrix labelled by `names` (must be unique).
  static util::Result<DistanceMatrix> Create(std::vector<std::string> names);

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  double at(size_t i, size_t j) const { return data_[i * size() + j]; }

  /// Sets d(i,j) = d(j,i) = v. v must be >= 0 and i != j.
  void Set(size_t i, size_t j, double v);

  /// True iff the matrix is symmetric with a zero diagonal and no negative
  /// entries (validated by tests and asserted by builders).
  bool IsValid() const;

  /// Index of a taxon name, or -1.
  int IndexOf(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> data_;
};

/// Distance between two aligned sequences: 1 - identity, optionally with the
/// Poisson correction -ln(identity) clamped at `max_distance`.
struct DistanceParams {
  AlignParams align;
  bool poisson_correct = true;
  double max_distance = 5.0;
};

/// Pairwise alignment-based distance for one pair.
util::Result<double> AlignmentDistance(const Sequence& a, const Sequence& b,
                                       const DistanceParams& params = {});

/// Full alignment-based distance matrix; O(n^2) alignments, parallelized
/// across `pool` if provided.
util::Result<DistanceMatrix> AlignmentDistanceMatrix(
    const std::vector<Sequence>& seqs, const DistanceParams& params = {},
    util::ThreadPool* pool = nullptr);

/// k-mer profile (cosine) distance for one pair; k in [1, 4].
util::Result<double> KmerDistance(const Sequence& a, const Sequence& b, int k = 3);

/// Full k-mer distance matrix; O(n^2) cheap profile comparisons.
util::Result<DistanceMatrix> KmerDistanceMatrix(
    const std::vector<Sequence>& seqs, int k = 3,
    util::ThreadPool* pool = nullptr);

}  // namespace bio
}  // namespace drugtree

#endif  // DRUGTREE_BIO_DISTANCE_H_
