// Pairwise sequence alignment: global (Needleman-Wunsch) and local
// (Smith-Waterman), both with affine gap penalties (Gotoh's algorithm).
// Alignment-derived identity feeds the phylogenetic distance matrices.

#ifndef DRUGTREE_BIO_ALIGN_H_
#define DRUGTREE_BIO_ALIGN_H_

#include <string>

#include "bio/sequence.h"
#include "bio/substitution_matrix.h"
#include "util/result.h"

namespace drugtree {
namespace bio {

/// Alignment parameters. Gap cost for a run of length L is
/// gap_open + L * gap_extend (both are positive penalties).
struct AlignParams {
  const SubstitutionMatrix* matrix = &SubstitutionMatrix::Blosum62();
  int gap_open = 10;
  int gap_extend = 1;
};

/// A computed pairwise alignment. aligned_a/aligned_b are equal-length
/// strings over residues plus '-' gap characters.
struct Alignment {
  int score = 0;
  std::string aligned_a;
  std::string aligned_b;

  /// Number of aligned columns (including gap columns).
  size_t Length() const { return aligned_a.size(); }

  /// Fraction of non-gap columns where the residues are identical,
  /// in [0, 1]. Returns 0 for an empty alignment.
  double Identity() const;

  /// Fraction of columns containing a gap.
  double GapFraction() const;
};

/// Global alignment (Needleman-Wunsch with affine gaps). Fails on invalid
/// parameters (non-positive gap penalties are rejected; empty sequences are
/// allowed and align entirely against gaps).
util::Result<Alignment> GlobalAlign(const Sequence& a, const Sequence& b,
                                    const AlignParams& params = {});

/// Local alignment (Smith-Waterman with affine gaps). The aligned strings
/// cover the best-scoring local region; score is >= 0.
util::Result<Alignment> LocalAlign(const Sequence& a, const Sequence& b,
                                   const AlignParams& params = {});

/// Score-only global alignment in O(min(m,n)) space; used when only the
/// distance is needed (tree building over many pairs).
util::Result<int> GlobalAlignScore(const Sequence& a, const Sequence& b,
                                   const AlignParams& params = {});

}  // namespace bio
}  // namespace drugtree

#endif  // DRUGTREE_BIO_ALIGN_H_
