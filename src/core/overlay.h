// The DrugTree overlay: ligand/activity data projected onto the protein
// phylogeny. This materializes
//   * a `tree_nodes` relation carrying the interval encoding (pre, post) so
//     the query engine can run tree predicates as range scans,
//   * an extended `proteins` relation with each leaf's node id and pre
//     number (the TreeBinding target), and
//   * per-node overlay aggregates (activity count, best affinity, distinct
//     ligand estimate) computed bottom-up and updatable incrementally in
//     O(depth) per new measurement.

#ifndef DRUGTREE_CORE_OVERLAY_H_
#define DRUGTREE_CORE_OVERLAY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "storage/table.h"
#include "util/result.h"

namespace drugtree {
namespace core {

/// Per-node overlay aggregates.
struct NodeAggregate {
  int64_t activity_count = 0;
  double best_affinity_nm = 0.0;  // lowest (strongest); 0 = none
  double sum_log_affinity = 0.0;  // for geometric-mean reporting
};

/// Schema factories.
storage::Schema TreeNodeTableSchema();
storage::Schema OverlayTableSchema();

class Overlay {
 public:
  /// Builds the overlay. `tree`/`index` are borrowed and must outlive the
  /// overlay. `proteins` and `activities` are the mediator's integrated
  /// tables; protein accessions must match the tree's leaf names (unmatched
  /// proteins are allowed and get node_id = NULL).
  static util::Result<std::unique_ptr<Overlay>> Build(
      const phylo::Tree* tree, const phylo::TreeIndex* index,
      const storage::Table& proteins, const storage::Table& activities);

  /// `tree_nodes(node_id, parent_id, name, pre, post, depth, branch_length,
  /// is_leaf, leaf_count)` — B+-tree indexed on pre.
  storage::Table* tree_nodes() { return tree_nodes_.get(); }

  /// `proteins(accession, name, family, organism, seq_len, node_id, pre)` —
  /// the query-facing protein relation (sequence dropped, tree columns
  /// added); hash index on accession, B+-tree on pre.
  storage::Table* proteins() { return proteins_.get(); }

  /// `node_overlay(node_id, pre, post, activity_count, best_affinity_nm,
  /// geo_mean_affinity_nm)` — subtree aggregates, B+-tree on pre.
  /// Rebuilt by MaterializeOverlayTable() after incremental updates.
  storage::Table* node_overlay() { return overlay_table_.get(); }

  /// Current per-node aggregates (index = NodeId).
  const std::vector<NodeAggregate>& aggregates() const { return aggregates_; }

  /// Annotation vector for the mobile LOD layer: log10(activity_count + 1).
  std::vector<double> AnnotationVector() const;

  /// Applies one new measurement: updates the leaf for `accession` and all
  /// its ancestors (O(depth)), without touching the relational activities
  /// table (the caller owns that). Fails if the accession is not on the tree.
  util::Status ApplyActivity(const std::string& accession, double affinity_nm);

  /// Rebuilds the node_overlay table from the current aggregates.
  util::Status MaterializeOverlayTable();

  /// Node for a protein accession, or kInvalidNode.
  phylo::NodeId NodeForAccession(const std::string& accession) const;

 private:
  Overlay(const phylo::Tree* tree, const phylo::TreeIndex* index)
      : tree_(tree), index_(index) {}

  const phylo::Tree* tree_;
  const phylo::TreeIndex* index_;
  std::unique_ptr<storage::Table> tree_nodes_;
  std::unique_ptr<storage::Table> proteins_;
  std::unique_ptr<storage::Table> overlay_table_;
  std::vector<NodeAggregate> aggregates_;
  std::unordered_map<std::string, phylo::NodeId> accession_to_node_;
};

}  // namespace core
}  // namespace drugtree

#endif  // DRUGTREE_CORE_OVERLAY_H_
