// DrugTree: the system facade. One call builds the whole pipeline —
// simulated sources -> mediator integration -> distance matrix -> tree ->
// interval index -> overlay -> catalog + planner — and the instance then
// answers SQL (with tree predicates), serves mobile sessions, and accepts
// incremental activity updates.

#ifndef DRUGTREE_CORE_DRUGTREE_H_
#define DRUGTREE_CORE_DRUGTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/overlay.h"
#include "integration/activity_source.h"
#include "integration/ligand_source.h"
#include "integration/mediator.h"
#include "integration/network.h"
#include "integration/prefetcher.h"
#include "integration/protein_source.h"
#include "integration/semantic_cache.h"
#include "mobile/device.h"
#include "mobile/session.h"
#include "phylo/builder.h"
#include "phylo/layout.h"
#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "server/server.h"
#include "shard/router.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"

namespace drugtree {
namespace core {

struct BuildOptions {
  uint64_t seed = 42;

  // Synthetic data scale.
  int num_families = 4;
  int taxa_per_family = 16;
  int sequence_length = 120;
  int num_ligands = 400;
  double activities_per_protein = 6.0;

  // Tree construction.
  phylo::TreeMethod tree_method = phylo::TreeMethod::kNeighborJoining;
  /// k-mer distances (fast) vs full alignment distances (accurate, O(n^2)
  /// alignments).
  bool use_alignment_distance = false;
  int kmer_k = 3;

  // Integration behaviour.
  integration::NetworkParams source_network;
  bool batch_requests = true;
  /// Overlapped in-flight fetch window for per-record integration; also
  /// sets source_network.max_concurrency when > 1. 1 = serial (identical
  /// behaviour to historical builds).
  int fetch_concurrency = 1;
  uint64_t semantic_cache_bytes = 8 * 1024 * 1024;

  // Query engine.
  uint64_t result_cache_bytes = 16 * 1024 * 1024;
};

class DrugTree {
 public:
  /// Builds a full DrugTree instance over `clock` (SimulatedClock in
  /// benchmarks, RealClock::Instance() interactively).
  static util::Result<std::unique_ptr<DrugTree>> Build(
      const BuildOptions& options, util::Clock* clock);

  // Query API -----------------------------------------------------------

  /// Runs one SQL statement. Registered tables: proteins, ligands,
  /// activities, tree_nodes, node_overlay. Tree predicates:
  /// SUBTREE(node_col, 'leaf-or-node-name'|node_id),
  /// ANCESTOR_OF(node_col, ...), TREE_DEPTH(node_col), TREE_DIST(a, b).
  util::Result<query::QueryOutcome> Query(const std::string& sql,
                                          const query::PlannerOptions& options =
                                              query::PlannerOptions());

  /// Applies a fresh assay measurement: appends to the activities table,
  /// updates overlay aggregates along the leaf's root path, and bumps the
  /// data epoch (invalidating cached results).
  util::Status AddActivity(const std::string& accession,
                           const std::string& ligand_id, double affinity_nm,
                           const std::string& assay_type = "IC50");

  // Storage encodings ----------------------------------------------------

  /// (Re)builds compressed columnar segments for every catalog table.
  /// Called automatically at wiring time; call again after bulk mutations
  /// (AddActivity marks snapshots stale, which silently falls scans back to
  /// the plain row path until the next rebuild).
  util::Status BuildEncodedSegments();

  /// Drops all encoded snapshots; scans revert to the plain paths. Benches
  /// use this as the uncompressed control arm.
  void DropEncodedSegments();

  // Persistence ---------------------------------------------------------

  /// Writes a self-contained snapshot (the three integrated base tables
  /// plus the tree in Newick form) to a single page file at `path`,
  /// overwriting any existing snapshot.
  util::Status SaveSnapshot(const std::string& path);

  /// Reconstructs a queryable DrugTree from a snapshot. The loaded instance
  /// has no remote sources (protein_source() etc. return null); the query,
  /// overlay, update, and mobile APIs are fully functional.
  static util::Result<std::unique_ptr<DrugTree>> LoadSnapshot(
      const std::string& path, util::Clock* clock);

  // Mobile API ----------------------------------------------------------

  /// Creates a trace-driven mobile session bound to this instance; overlay
  /// queries inside the session run through the (optimized) planner.
  mobile::MobileSession MakeSession(const mobile::DeviceProfile& device,
                                    const mobile::SessionOptions& options,
                                    const query::PlannerOptions& query_options);

  // Serving API ----------------------------------------------------------

  /// The SQL a session issues for the ligand overlay of a focused subtree
  /// (what MakeSession's direct callback runs internally). Exposed so the
  /// serving layer can issue the identical statement as a QueryRequest.
  std::string OverlayQuerySql(phylo::NodeId node) const;

  /// Creates a multi-session server over this instance's catalog. `clock`
  /// defaults to the instance clock; pass RealClock::Instance() when real
  /// deadlines are wanted over a simulated-clock build. The server must not
  /// outlive this DrugTree, and must be drained before AddActivity.
  std::unique_ptr<server::DrugTreeServer> MakeServer(
      const server::ServerOptions& options = server::ServerOptions(),
      util::Clock* clock = nullptr);

  /// Creates a sharded, replicated serving tier over this instance's data:
  /// the relations are interval-partitioned into options.num_shards ranges
  /// (ligands replicated), each range served by replicas_per_shard
  /// DrugTreeServer replicas, fronted by a scatter-gather ShardRouter whose
  /// fallback coordinator serves the full catalog. `clock` defaults to the
  /// instance clock. The router must not outlive this DrugTree, and every
  /// replica must be drained before AddActivity (partitions are snapshots:
  /// catalog mutations after creation are not reflected in the shards).
  util::Result<std::unique_ptr<shard::ShardRouter>> MakeShardRouter(
      const shard::RouterOptions& options = shard::RouterOptions(),
      util::Clock* clock = nullptr);

  /// Creates a mobile session whose overlay queries go through `server` as
  /// kInteractive requests with `overlay_deadline_micros` budgets, instead
  /// of calling the planner directly.
  mobile::MobileSession MakeSession(const mobile::DeviceProfile& device,
                                    const mobile::SessionOptions& options,
                                    const query::PlannerOptions& query_options,
                                    server::DrugTreeServer* server,
                                    uint64_t session_id,
                                    int64_t overlay_deadline_micros = 150'000);

  /// Generates an interaction trace on this tree.
  std::vector<mobile::Action> MakeTrace(const mobile::TraceParams& params,
                                        uint64_t seed);

  // Introspection -------------------------------------------------------

  const phylo::Tree& tree() const { return tree_; }
  const phylo::TreeIndex& tree_index() const { return *tree_index_; }
  const phylo::TreeLayout& layout() const { return *layout_; }
  Overlay* overlay() { return overlay_.get(); }
  query::Catalog* catalog() { return &catalog_; }
  query::ResultCache* result_cache() { return result_cache_.get(); }
  integration::SemanticCache* semantic_cache() { return semantic_cache_.get(); }
  integration::SimulatedNetwork* source_network() { return network_.get(); }
  integration::ProteinSource* protein_source() { return protein_source_.get(); }
  integration::LigandSource* ligand_source() { return ligand_source_.get(); }
  integration::ActivitySource* activity_source() {
    return activity_source_.get();
  }
  integration::Mediator* mediator() { return mediator_.get(); }
  storage::Table* ligands() { return dataset_.ligands.get(); }
  storage::Table* activities() { return dataset_.activities.get(); }

  /// Root of the integration layer's memory accounting (semantic cache +
  /// mediator fetch buffers as child nodes). Owned by the instance so it
  /// shares the caches' lifetime; server trees track query-side memory
  /// separately.
  obs::MemoryTracker* integration_memory_tracker() {
    return &integration_tracker_;
  }

 private:
  DrugTree() = default;

  /// Shared tail of Build/LoadSnapshot: from a populated `tree_` and
  /// `dataset_`, constructs the index, layout, overlay, secondary indexes,
  /// catalog bindings, result cache, and planner.
  util::Status FinishWiring(uint64_t result_cache_bytes);

  util::Clock* clock_ = nullptr;
  /// Declared before the components attached to it so it is destroyed last.
  obs::MemoryTracker integration_tracker_{"integration"};
  std::unique_ptr<integration::SimulatedNetwork> network_;
  std::unique_ptr<integration::ProteinSource> protein_source_;
  std::unique_ptr<integration::LigandSource> ligand_source_;
  std::unique_ptr<integration::ActivitySource> activity_source_;
  std::unique_ptr<integration::SemanticCache> semantic_cache_;
  std::unique_ptr<integration::Mediator> mediator_;
  integration::IntegratedDataset dataset_;

  phylo::Tree tree_;
  std::unique_ptr<phylo::TreeIndex> tree_index_;
  std::unique_ptr<phylo::TreeLayout> layout_;
  std::unique_ptr<Overlay> overlay_;

  query::Catalog catalog_;
  std::unique_ptr<query::ResultCache> result_cache_;
  std::unique_ptr<query::Planner> planner_;
};

}  // namespace core
}  // namespace drugtree

#endif  // DRUGTREE_CORE_DRUGTREE_H_
