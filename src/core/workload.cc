#include "core/workload.h"

#include "util/string_util.h"

namespace drugtree {
namespace core {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSubtreeProteins: return "subtree-proteins";
    case QueryKind::kSubtreeOverlay: return "subtree-overlay";
    case QueryKind::kScreeningJoin: return "screening-join";
    case QueryKind::kFamilyAggregate: return "family-aggregate";
    case QueryKind::kAncestorPath: return "ancestor-path";
  }
  return "?";
}

std::string MakeQuerySql(QueryKind kind, phylo::NodeId node,
                         const phylo::Tree& tree,
                         const WorkloadParams& params) {
  (void)tree;  // kept in the signature for future name-based focus anchors
  switch (kind) {
    case QueryKind::kSubtreeProteins:
      return util::StringPrintf(
          "SELECT p.accession, p.family, p.organism FROM proteins p "
          "WHERE SUBTREE(p.node_id, %d) ORDER BY p.accession",
          node);
    case QueryKind::kSubtreeOverlay:
      return util::StringPrintf(
          "SELECT o.node_id, o.activity_count, o.best_affinity_nm "
          "FROM node_overlay o WHERE SUBTREE(o.node_id, %d) "
          "ORDER BY o.activity_count DESC, o.node_id LIMIT 25",
          node);
    case QueryKind::kScreeningJoin:
      return util::StringPrintf(
          "SELECT p.accession, l.name, a.affinity_nm "
          "FROM proteins p "
          "JOIN activities a ON p.accession = a.accession "
          "JOIN ligands l ON a.ligand_id = l.ligand_id "
          "WHERE SUBTREE(p.node_id, %d) AND a.affinity_nm < %.1f "
          "ORDER BY a.affinity_nm, p.accession, l.name LIMIT 20",
          node, params.affinity_threshold_nm);
    case QueryKind::kFamilyAggregate:
      return
          "SELECT p.family, COUNT(*) AS n, AVG(a.affinity_nm) AS avg_aff "
          "FROM proteins p JOIN activities a ON p.accession = a.accession "
          "GROUP BY p.family ORDER BY n DESC, p.family";
    case QueryKind::kAncestorPath: {
      // Anchor on a leaf within the focused subtree when possible.
      return util::StringPrintf(
          "SELECT t.node_id, t.depth, t.leaf_count FROM tree_nodes t "
          "WHERE ANCESTOR_OF(t.node_id, %d) ORDER BY t.depth, t.node_id",
          node);
    }
  }
  return "";
}

std::vector<WorkloadQuery> GenerateWorkload(const phylo::Tree& tree,
                                            const phylo::TreeIndex& index,
                                            const WorkloadParams& params,
                                            util::Rng* rng) {
  (void)index;
  // Candidate focus nodes: internal nodes, largest clades first (node id
  // order approximates this for the builders used here; sort by subtree
  // size to be exact).
  std::vector<phylo::NodeId> internals;
  tree.PreOrder([&](phylo::NodeId id) {
    if (!tree.node(id).IsLeaf()) internals.push_back(id);
  });
  std::sort(internals.begin(), internals.end(),
            [&](phylo::NodeId a, phylo::NodeId b) {
              return index.SubtreeSize(a) > index.SubtreeSize(b);
            });
  std::vector<phylo::NodeId> leaves = tree.Leaves();

  std::vector<double> weights = {
      params.w_subtree_proteins, params.w_subtree_overlay,
      params.w_screening_join, params.w_family_aggregate,
      params.w_ancestor_path};
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(params.num_queries));
  for (int i = 0; i < params.num_queries; ++i) {
    auto kind = static_cast<QueryKind>(rng->WeightedIndex(weights));
    WorkloadQuery q;
    q.kind = kind;
    if (kind == QueryKind::kAncestorPath) {
      q.focus = leaves[rng->Zipf(leaves.size(), params.node_skew)];
    } else {
      q.focus = internals[rng->Zipf(internals.size(), params.node_skew)];
    }
    q.sql = MakeQuerySql(kind, q.focus, tree, params);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace core
}  // namespace drugtree
