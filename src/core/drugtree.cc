#include "core/drugtree.h"

#include <algorithm>
#include <cstdio>

#include "bio/distance.h"
#include "bio/sequence.h"
#include "phylo/newick.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/string_util.h"

namespace drugtree {
namespace core {

using storage::Value;

util::Result<std::unique_ptr<DrugTree>> DrugTree::Build(
    const BuildOptions& options, util::Clock* clock) {
  if (clock == nullptr) {
    return util::Status::InvalidArgument("clock must not be null");
  }
  auto dt = std::unique_ptr<DrugTree>(new DrugTree());
  dt->clock_ = clock;
  util::Rng rng(options.seed);

  // 1. Simulated remote sources.
  integration::NetworkParams np = options.source_network;
  if (options.fetch_concurrency > 1) {
    np.max_concurrency = std::max(np.max_concurrency,
                                  options.fetch_concurrency);
  }
  dt->network_ = std::make_unique<integration::SimulatedNetwork>(
      clock, np, options.seed ^ 0x5EEDULL);
  integration::ProteinSourceParams pp;
  pp.num_families = options.num_families;
  pp.taxa_per_family = options.taxa_per_family;
  pp.sequence_length = options.sequence_length;
  DRUGTREE_ASSIGN_OR_RETURN(
      integration::ProteinSource ps,
      integration::ProteinSource::Create(pp, dt->network_.get(), &rng));
  dt->protein_source_ =
      std::make_unique<integration::ProteinSource>(std::move(ps));

  chem::LigandGenParams lp;
  DRUGTREE_ASSIGN_OR_RETURN(
      integration::LigandSource ls,
      integration::LigandSource::Create(options.num_ligands, lp,
                                        dt->network_.get(), &rng));
  dt->ligand_source_ =
      std::make_unique<integration::LigandSource>(std::move(ls));

  // Source construction must not charge network time: temporary catalogs.
  std::vector<std::string> accessions;
  {
    // Read ground truth without network charges by peeking at the source's
    // own catalog request once (costed; it is part of integration anyway).
    accessions = dt->protein_source_->ListAccessions();
  }
  std::vector<std::string> ligand_ids = dt->ligand_source_->ListIds();

  integration::ActivityGenParams ap;
  ap.activities_per_protein = options.activities_per_protein;
  DRUGTREE_ASSIGN_OR_RETURN(
      integration::ActivitySource as,
      integration::ActivitySource::Create(accessions, ligand_ids, ap,
                                          dt->network_.get(), &rng));
  dt->activity_source_ =
      std::make_unique<integration::ActivitySource>(std::move(as));

  // 2. Mediator integration.
  dt->semantic_cache_ = std::make_unique<integration::SemanticCache>(
      options.semantic_cache_bytes);
  dt->mediator_ = std::make_unique<integration::Mediator>(
      dt->protein_source_.get(), dt->ligand_source_.get(),
      dt->activity_source_.get(), dt->semantic_cache_.get());
  dt->semantic_cache_->AttachMemoryTracker(
      dt->integration_tracker_.GetOrCreateChild("semantic_cache"));
  dt->mediator_->AttachMemoryTracker(
      dt->integration_tracker_.GetOrCreateChild("mediator"));
  integration::MediatorOptions mo;
  mo.batch_requests = options.batch_requests;
  mo.max_concurrency = options.fetch_concurrency;
  DRUGTREE_ASSIGN_OR_RETURN(dt->dataset_, dt->mediator_->IntegrateAll(mo));

  // 3. Distance matrix + phylogeny over all integrated proteins.
  std::vector<bio::Sequence> seqs;
  {
    const storage::Table& pt = *dt->dataset_.proteins;
    DRUGTREE_ASSIGN_OR_RETURN(size_t acc_col, pt.schema().IndexOf("accession"));
    DRUGTREE_ASSIGN_OR_RETURN(size_t seq_col, pt.schema().IndexOf("sequence"));
    for (storage::RowId rid : pt.LiveRows()) {
      const storage::Row& row = pt.row(rid);
      DRUGTREE_ASSIGN_OR_RETURN(
          bio::Sequence s,
          bio::Sequence::Create(row[acc_col].AsString(),
                                row[seq_col].AsString()));
      seqs.push_back(std::move(s));
    }
  }
  bio::DistanceMatrix dist;
  if (options.use_alignment_distance) {
    DRUGTREE_ASSIGN_OR_RETURN(dist, bio::AlignmentDistanceMatrix(seqs));
  } else {
    DRUGTREE_ASSIGN_OR_RETURN(dist,
                              bio::KmerDistanceMatrix(seqs, options.kmer_k));
  }
  DRUGTREE_ASSIGN_OR_RETURN(dt->tree_,
                            phylo::BuildTree(dist, options.tree_method));
  DRUGTREE_RETURN_IF_ERROR(dt->FinishWiring(options.result_cache_bytes));
  return dt;
}

util::Status DrugTree::FinishWiring(uint64_t result_cache_bytes) {
  DRUGTREE_ASSIGN_OR_RETURN(phylo::TreeIndex index,
                            phylo::TreeIndex::Build(tree_));
  tree_index_ = std::make_unique<phylo::TreeIndex>(std::move(index));
  DRUGTREE_ASSIGN_OR_RETURN(phylo::TreeLayout layout,
                            phylo::TreeLayout::Compute(tree_));
  layout_ = std::make_unique<phylo::TreeLayout>(std::move(layout));

  DRUGTREE_ASSIGN_OR_RETURN(
      overlay_, Overlay::Build(&tree_, tree_index_.get(), *dataset_.proteins,
                               *dataset_.activities));
  // Index the base relations the workloads hit hard.
  DRUGTREE_RETURN_IF_ERROR(dataset_.activities->CreateIndex(
      "accession", storage::IndexKind::kHash));
  DRUGTREE_RETURN_IF_ERROR(dataset_.activities->CreateIndex(
      "affinity_nm", storage::IndexKind::kBTree));
  DRUGTREE_RETURN_IF_ERROR(dataset_.ligands->CreateIndex(
      "ligand_id", storage::IndexKind::kHash));
  DRUGTREE_RETURN_IF_ERROR(dataset_.activities->Analyze());
  DRUGTREE_RETURN_IF_ERROR(dataset_.ligands->Analyze());

  DRUGTREE_RETURN_IF_ERROR(catalog_.Register(overlay_->proteins()));
  DRUGTREE_RETURN_IF_ERROR(catalog_.Register(dataset_.ligands.get()));
  DRUGTREE_RETURN_IF_ERROR(catalog_.Register(dataset_.activities.get()));
  DRUGTREE_RETURN_IF_ERROR(catalog_.Register(overlay_->tree_nodes()));
  DRUGTREE_RETURN_IF_ERROR(catalog_.Register(overlay_->node_overlay()));
  catalog_.SetTree(&tree_, tree_index_.get());
  DRUGTREE_RETURN_IF_ERROR(
      catalog_.BindTree("proteins", {"node_id", "pre", ""}));
  DRUGTREE_RETURN_IF_ERROR(
      catalog_.BindTree("tree_nodes", {"node_id", "pre", "post"}));
  DRUGTREE_RETURN_IF_ERROR(
      catalog_.BindTree("node_overlay", {"node_id", "pre", "post"}));

  result_cache_ = std::make_unique<query::ResultCache>(result_cache_bytes);
  planner_ = std::make_unique<query::Planner>(&catalog_, result_cache_.get());
  // Compress the now-immutable base tables; scans run directly on the
  // encoded form until the next mutation marks a snapshot stale.
  DRUGTREE_RETURN_IF_ERROR(BuildEncodedSegments());
  return util::Status::OK();
}

util::Status DrugTree::BuildEncodedSegments() {
  for (const auto& [name, table] : catalog_.tables()) {
    (void)name;
    DRUGTREE_RETURN_IF_ERROR(table->BuildEncodedSegments());
  }
  return util::Status::OK();
}

void DrugTree::DropEncodedSegments() {
  for (const auto& [name, table] : catalog_.tables()) {
    (void)name;
    table->DropEncodedSegments();
  }
}

namespace {

// Snapshot superblock layout on page 0:
//   [u32 magic][u32 meta_dir][u32 proteins_dir][u32 ligands_dir]
//   [u32 activities_dir]
constexpr uint32_t kSnapshotMagic = 0xD27C7263;

}  // namespace

util::Status DrugTree::SaveSnapshot(const std::string& path) {
  std::remove(path.c_str());
  DRUGTREE_ASSIGN_OR_RETURN(std::unique_ptr<storage::DiskManager> disk,
                            storage::DiskManager::Open(path));
  storage::BufferPool pool(disk.get(), 64);
  DRUGTREE_ASSIGN_OR_RETURN(storage::PageGuard super, pool.Allocate());
  if (super->id() != 0) {
    return util::Status::Internal("snapshot superblock must be page 0");
  }

  // Metadata heap: record 0 is the tree in Newick form.
  DRUGTREE_ASSIGN_OR_RETURN(storage::HeapFile meta,
                            storage::HeapFile::Create(&pool));
  std::string newick = phylo::WriteNewick(tree_);
  // Large trees exceed one page; chunk the Newick string.
  constexpr size_t kChunk = 3000;
  uint32_t chunks = 0;
  for (size_t off = 0; off < newick.size() || chunks == 0; off += kChunk) {
    DRUGTREE_RETURN_IF_ERROR(
        meta.Insert(newick.substr(off, kChunk)).status());
    ++chunks;
  }

  DRUGTREE_ASSIGN_OR_RETURN(storage::PageId p_dir,
                            dataset_.proteins->SaveTo(&pool));
  DRUGTREE_ASSIGN_OR_RETURN(storage::PageId l_dir,
                            dataset_.ligands->SaveTo(&pool));
  DRUGTREE_ASSIGN_OR_RETURN(storage::PageId a_dir,
                            dataset_.activities->SaveTo(&pool));

  super->WriteAt<uint32_t>(0, kSnapshotMagic);
  super->WriteAt<uint32_t>(4, meta.directory_page());
  super->WriteAt<uint32_t>(8, p_dir);
  super->WriteAt<uint32_t>(12, l_dir);
  super->WriteAt<uint32_t>(16, a_dir);
  return pool.FlushAll();
}

util::Result<std::unique_ptr<DrugTree>> DrugTree::LoadSnapshot(
    const std::string& path, util::Clock* clock) {
  if (clock == nullptr) {
    return util::Status::InvalidArgument("clock must not be null");
  }
  DRUGTREE_ASSIGN_OR_RETURN(std::unique_ptr<storage::DiskManager> disk,
                            storage::DiskManager::Open(path));
  if (disk->NumPages() == 0) {
    return util::Status::NotFound("no snapshot at " + path);
  }
  storage::BufferPool pool(disk.get(), 64);
  uint32_t meta_dir, p_dir, l_dir, a_dir;
  {
    DRUGTREE_ASSIGN_OR_RETURN(storage::PageGuard super, pool.Fetch(0));
    if (super->ReadAt<uint32_t>(0) != kSnapshotMagic) {
      return util::Status::ParseError("bad snapshot magic in " + path);
    }
    meta_dir = super->ReadAt<uint32_t>(4);
    p_dir = super->ReadAt<uint32_t>(8);
    l_dir = super->ReadAt<uint32_t>(12);
    a_dir = super->ReadAt<uint32_t>(16);
  }

  auto dt = std::unique_ptr<DrugTree>(new DrugTree());
  dt->clock_ = clock;

  DRUGTREE_ASSIGN_OR_RETURN(storage::HeapFile meta,
                            storage::HeapFile::Open(&pool, meta_dir));
  std::string newick;
  DRUGTREE_RETURN_IF_ERROR(
      meta.Scan([&newick](const storage::RecordId&, const std::string& rec) {
        newick += rec;
        return util::Status::OK();
      }));
  DRUGTREE_ASSIGN_OR_RETURN(dt->tree_, phylo::ParseNewick(newick));

  dt->dataset_.proteins = std::make_unique<storage::Table>(
      "proteins", integration::ProteinTableSchema());
  DRUGTREE_RETURN_IF_ERROR(dt->dataset_.proteins->LoadFrom(&pool, p_dir));
  dt->dataset_.ligands = std::make_unique<storage::Table>(
      "ligands", integration::LigandTableSchema());
  DRUGTREE_RETURN_IF_ERROR(dt->dataset_.ligands->LoadFrom(&pool, l_dir));
  dt->dataset_.activities = std::make_unique<storage::Table>(
      "activities", integration::ActivityTableSchema());
  DRUGTREE_RETURN_IF_ERROR(dt->dataset_.activities->LoadFrom(&pool, a_dir));

  DRUGTREE_RETURN_IF_ERROR(
      dt->FinishWiring(BuildOptions().result_cache_bytes));
  return dt;
}

util::Result<query::QueryOutcome> DrugTree::Query(
    const std::string& sql, const query::PlannerOptions& options) {
  return planner_->Run(sql, options);
}

util::Status DrugTree::AddActivity(const std::string& accession,
                                   const std::string& ligand_id,
                                   double affinity_nm,
                                   const std::string& assay_type) {
  storage::Row row = {Value::String(accession), Value::String(ligand_id),
                      Value::Double(affinity_nm), Value::String(assay_type),
                      Value::String("live")};
  DRUGTREE_RETURN_IF_ERROR(dataset_.activities->Insert(std::move(row)).status());
  DRUGTREE_RETURN_IF_ERROR(overlay_->ApplyActivity(accession, affinity_nm));
  catalog_.BumpEpoch();
  return util::Status::OK();
}

std::string DrugTree::OverlayQuerySql(phylo::NodeId node) const {
  return util::StringPrintf(
      "SELECT o.node_id, o.activity_count, o.best_affinity_nm "
      "FROM node_overlay o WHERE SUBTREE(o.node_id, %d) "
      "ORDER BY o.best_affinity_nm LIMIT 50",
      node);
}

mobile::MobileSession DrugTree::MakeSession(
    const mobile::DeviceProfile& device, const mobile::SessionOptions& options,
    const query::PlannerOptions& query_options) {
  mobile::OverlayQueryFn overlay_fn =
      [this, query_options](phylo::NodeId node) -> util::Result<uint64_t> {
    DRUGTREE_ASSIGN_OR_RETURN(
        query::QueryOutcome outcome,
        planner_->Run(OverlayQuerySql(node), query_options));
    return outcome.result.ApproxBytes();
  };
  return mobile::MobileSession(&tree_, tree_index_.get(), layout_.get(),
                               overlay_->AnnotationVector(), device, clock_,
                               options, overlay_fn);
}

std::unique_ptr<server::DrugTreeServer> DrugTree::MakeServer(
    const server::ServerOptions& options, util::Clock* clock) {
  return std::make_unique<server::DrugTreeServer>(
      &catalog_, clock != nullptr ? clock : clock_, options);
}

util::Result<std::unique_ptr<shard::ShardRouter>> DrugTree::MakeShardRouter(
    const shard::RouterOptions& options, util::Clock* clock) {
  shard::ShardSourceTables sources;
  sources.proteins = overlay_->proteins();
  sources.tree_nodes = overlay_->tree_nodes();
  sources.node_overlay = overlay_->node_overlay();
  sources.activities = dataset_.activities.get();
  sources.ligands = dataset_.ligands.get();
  return shard::ShardRouter::Create(&tree_, tree_index_.get(), sources,
                                    &catalog_, clock != nullptr ? clock : clock_,
                                    options);
}

mobile::MobileSession DrugTree::MakeSession(
    const mobile::DeviceProfile& device, const mobile::SessionOptions& options,
    const query::PlannerOptions& query_options,
    server::DrugTreeServer* server, uint64_t session_id,
    int64_t overlay_deadline_micros) {
  mobile::ServedQueryConfig served;
  served.server = server;
  served.session_id = session_id;
  served.overlay_deadline_micros = overlay_deadline_micros;
  served.planner = query_options;
  served.overlay_sql = [this](phylo::NodeId node) {
    return OverlayQuerySql(node);
  };
  return mobile::MobileSession(&tree_, tree_index_.get(), layout_.get(),
                               overlay_->AnnotationVector(), device, clock_,
                               options, nullptr, std::move(served));
}

std::vector<mobile::Action> DrugTree::MakeTrace(
    const mobile::TraceParams& params, uint64_t seed) {
  util::Rng rng(seed);
  return mobile::GenerateTrace(tree_, *tree_index_, params, &rng);
}

}  // namespace core
}  // namespace drugtree
