#include "core/overlay.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace core {

using phylo::NodeId;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

Schema TreeNodeTableSchema() {
  auto s = Schema::Create({
      {"node_id", ValueType::kInt64, false},
      {"parent_id", ValueType::kInt64, true},  // NULL for the root
      {"name", ValueType::kString, true},
      {"pre", ValueType::kInt64, false},
      {"post", ValueType::kInt64, false},
      {"depth", ValueType::kInt64, false},
      {"branch_length", ValueType::kDouble, false},
      {"is_leaf", ValueType::kBool, false},
      {"leaf_count", ValueType::kInt64, false},
  });
  DT_CHECK(s.ok());
  return *s;
}

Schema OverlayTableSchema() {
  auto s = Schema::Create({
      {"node_id", ValueType::kInt64, false},
      {"pre", ValueType::kInt64, false},
      {"post", ValueType::kInt64, false},
      {"activity_count", ValueType::kInt64, false},
      {"best_affinity_nm", ValueType::kDouble, true},
      {"geo_mean_affinity_nm", ValueType::kDouble, true},
  });
  DT_CHECK(s.ok());
  return *s;
}

namespace {

Schema OverlayProteinSchema() {
  auto s = Schema::Create({
      {"accession", ValueType::kString, false},
      {"name", ValueType::kString, false},
      {"family", ValueType::kString, false},
      {"organism", ValueType::kString, false},
      {"seq_len", ValueType::kInt64, false},
      {"node_id", ValueType::kInt64, true},
      {"pre", ValueType::kInt64, true},
  });
  DT_CHECK(s.ok());
  return *s;
}

}  // namespace

util::Result<std::unique_ptr<Overlay>> Overlay::Build(
    const phylo::Tree* tree, const phylo::TreeIndex* index,
    const Table& proteins, const Table& activities) {
  if (tree == nullptr || index == nullptr) {
    return util::Status::InvalidArgument("tree and index must not be null");
  }
  auto overlay = std::unique_ptr<Overlay>(new Overlay(tree, index));

  // tree_nodes relation.
  overlay->tree_nodes_ =
      std::make_unique<Table>("tree_nodes", TreeNodeTableSchema());
  for (size_t i = 0; i < tree->NumNodes(); ++i) {
    auto id = static_cast<NodeId>(i);
    const phylo::Node& n = tree->node(id);
    storage::Row row = {
        Value::Int64(id),
        n.IsRoot() ? Value::Null() : Value::Int64(n.parent),
        Value::String(n.name),
        Value::Int64(index->Pre(id)),
        Value::Int64(index->Post(id)),
        Value::Int64(index->Depth(id)),
        Value::Double(n.branch_length),
        Value::Bool(n.IsLeaf()),
        Value::Int64(index->SubtreeLeafCount(id)),
    };
    DRUGTREE_RETURN_IF_ERROR(overlay->tree_nodes_->Insert(std::move(row)).status());
  }
  DRUGTREE_RETURN_IF_ERROR(
      overlay->tree_nodes_->CreateIndex("pre", storage::IndexKind::kBTree));
  DRUGTREE_RETURN_IF_ERROR(
      overlay->tree_nodes_->CreateIndex("node_id", storage::IndexKind::kHash));
  DRUGTREE_RETURN_IF_ERROR(overlay->tree_nodes_->Analyze());

  // Leaf name -> node map.
  for (NodeId leaf : tree->Leaves()) {
    const std::string& name = tree->node(leaf).name;
    if (!name.empty()) overlay->accession_to_node_[name] = leaf;
  }

  // Extended proteins relation.
  overlay->proteins_ = std::make_unique<Table>("proteins",
                                               OverlayProteinSchema());
  const Schema& ps = proteins.schema();
  DRUGTREE_ASSIGN_OR_RETURN(size_t acc_col, ps.IndexOf("accession"));
  DRUGTREE_ASSIGN_OR_RETURN(size_t name_col, ps.IndexOf("name"));
  DRUGTREE_ASSIGN_OR_RETURN(size_t fam_col, ps.IndexOf("family"));
  DRUGTREE_ASSIGN_OR_RETURN(size_t org_col, ps.IndexOf("organism"));
  DRUGTREE_ASSIGN_OR_RETURN(size_t len_col, ps.IndexOf("seq_len"));
  for (storage::RowId rid : proteins.LiveRows()) {
    const storage::Row& in = proteins.row(rid);
    const std::string& acc = in[acc_col].AsString();
    auto it = overlay->accession_to_node_.find(acc);
    Value node_v = Value::Null(), pre_v = Value::Null();
    if (it != overlay->accession_to_node_.end()) {
      node_v = Value::Int64(it->second);
      pre_v = Value::Int64(index->Pre(it->second));
    }
    storage::Row row = {in[acc_col], in[name_col],  in[fam_col], in[org_col],
                        in[len_col], std::move(node_v), std::move(pre_v)};
    DRUGTREE_RETURN_IF_ERROR(overlay->proteins_->Insert(std::move(row)).status());
  }
  DRUGTREE_RETURN_IF_ERROR(
      overlay->proteins_->CreateIndex("accession", storage::IndexKind::kHash));
  DRUGTREE_RETURN_IF_ERROR(
      overlay->proteins_->CreateIndex("pre", storage::IndexKind::kBTree));
  DRUGTREE_RETURN_IF_ERROR(overlay->proteins_->Analyze());

  // Bottom-up aggregates from the activities table.
  overlay->aggregates_.assign(tree->NumNodes(), NodeAggregate{});
  const Schema& as = activities.schema();
  DRUGTREE_ASSIGN_OR_RETURN(size_t a_acc, as.IndexOf("accession"));
  DRUGTREE_ASSIGN_OR_RETURN(size_t a_aff, as.IndexOf("affinity_nm"));
  for (storage::RowId rid : activities.LiveRows()) {
    const storage::Row& in = activities.row(rid);
    auto it = overlay->accession_to_node_.find(in[a_acc].AsString());
    if (it == overlay->accession_to_node_.end()) continue;
    double aff = in[a_aff].AsDouble();
    NodeId node = it->second;
    // Charge the whole root path (the incremental structure).
    for (NodeId cur = node;;) {
      NodeAggregate& agg =
          overlay->aggregates_[static_cast<size_t>(cur)];
      ++agg.activity_count;
      agg.sum_log_affinity += std::log(std::max(aff, 1e-9));
      if (agg.best_affinity_nm == 0.0 || aff < agg.best_affinity_nm) {
        agg.best_affinity_nm = aff;
      }
      if (tree->node(cur).IsRoot()) break;
      cur = tree->node(cur).parent;
    }
  }

  DRUGTREE_RETURN_IF_ERROR(overlay->MaterializeOverlayTable());
  return overlay;
}

std::vector<double> Overlay::AnnotationVector() const {
  std::vector<double> out(aggregates_.size(), 0.0);
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    out[i] = std::log10(static_cast<double>(aggregates_[i].activity_count) + 1.0);
  }
  return out;
}

util::Status Overlay::ApplyActivity(const std::string& accession,
                                    double affinity_nm) {
  auto it = accession_to_node_.find(accession);
  if (it == accession_to_node_.end()) {
    return util::Status::NotFound("accession not on the tree: " + accession);
  }
  if (affinity_nm <= 0.0) {
    return util::Status::InvalidArgument("affinity must be positive");
  }
  for (NodeId cur = it->second;;) {
    NodeAggregate& agg = aggregates_[static_cast<size_t>(cur)];
    ++agg.activity_count;
    agg.sum_log_affinity += std::log(affinity_nm);
    if (agg.best_affinity_nm == 0.0 || affinity_nm < agg.best_affinity_nm) {
      agg.best_affinity_nm = affinity_nm;
    }
    if (tree_->node(cur).IsRoot()) break;
    cur = tree_->node(cur).parent;
  }
  return util::Status::OK();
}

util::Status Overlay::MaterializeOverlayTable() {
  overlay_table_ = std::make_unique<Table>("node_overlay",
                                           OverlayTableSchema());
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    const NodeAggregate& agg = aggregates_[i];
    storage::Row row = {
        Value::Int64(id),
        Value::Int64(index_->Pre(id)),
        Value::Int64(index_->Post(id)),
        Value::Int64(agg.activity_count),
        agg.activity_count ? Value::Double(agg.best_affinity_nm)
                           : Value::Null(),
        agg.activity_count
            ? Value::Double(std::exp(agg.sum_log_affinity /
                                     static_cast<double>(agg.activity_count)))
            : Value::Null(),
    };
    DRUGTREE_RETURN_IF_ERROR(overlay_table_->Insert(std::move(row)).status());
  }
  DRUGTREE_RETURN_IF_ERROR(
      overlay_table_->CreateIndex("pre", storage::IndexKind::kBTree));
  DRUGTREE_RETURN_IF_ERROR(
      overlay_table_->CreateIndex("node_id", storage::IndexKind::kHash));
  return overlay_table_->Analyze();
}

phylo::NodeId Overlay::NodeForAccession(const std::string& accession) const {
  auto it = accession_to_node_.find(accession);
  return it == accession_to_node_.end() ? phylo::kInvalidNode : it->second;
}

}  // namespace core
}  // namespace drugtree
