// Query workload generator for the benchmarks: parameterized mixes of the
// analyst queries the poster's system served (subtree overlays, screening
// joins, aggregate rollups), with Zipf-skewed focus nodes to model hot
// clades.

#ifndef DRUGTREE_CORE_WORKLOAD_H_
#define DRUGTREE_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "util/rng.h"

namespace drugtree {
namespace core {

enum class QueryKind {
  kSubtreeProteins,      // proteins in a clade
  kSubtreeOverlay,       // overlay aggregates of a clade
  kScreeningJoin,        // proteins x activities x ligands in a clade
  kFamilyAggregate,      // per-family activity rollup
  kAncestorPath,         // ancestors of a leaf
};

const char* QueryKindName(QueryKind kind);

struct WorkloadParams {
  int num_queries = 100;
  /// Zipf skew over focus nodes (0 = uniform).
  double node_skew = 0.7;
  /// Mix weights; normalized internally.
  double w_subtree_proteins = 0.3;
  double w_subtree_overlay = 0.25;
  double w_screening_join = 0.25;
  double w_family_aggregate = 0.1;
  double w_ancestor_path = 0.1;
  /// Affinity threshold used by screening queries (nM).
  double affinity_threshold_nm = 500.0;
};

struct WorkloadQuery {
  QueryKind kind;
  phylo::NodeId focus = phylo::kInvalidNode;
  std::string sql;
};

/// Generates a workload over a DrugTree instance's tree. Focus nodes are
/// internal nodes (clades), Zipf-skewed toward low node ids (which correlate
/// with large clades under pre-order numbering — hot clades get hit often,
/// matching interactive use).
std::vector<WorkloadQuery> GenerateWorkload(const phylo::Tree& tree,
                                            const phylo::TreeIndex& index,
                                            const WorkloadParams& params,
                                            util::Rng* rng);

/// Builds the SQL text for one query kind focused on `node`.
std::string MakeQuerySql(QueryKind kind, phylo::NodeId node,
                         const phylo::Tree& tree,
                         const WorkloadParams& params);

}  // namespace core
}  // namespace drugtree

#endif  // DRUGTREE_CORE_WORKLOAD_H_
