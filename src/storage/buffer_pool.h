// Buffer pool: a fixed set of page frames with LRU replacement, fronting a
// DiskManager. Pinned pages are never evicted. Hit/miss counters feed the
// E8 storage microbenchmarks.

#ifndef DRUGTREE_STORAGE_BUFFER_POOL_H_
#define DRUGTREE_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

/// RAII pin over a buffered page; unpins (and records dirtiness) on scope
/// exit. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(class BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  Page* operator->() { return page_; }
  Page& operator*() { return *page_; }
  Page* get() { return page_; }
  const Page* get() const { return page_; }
  bool valid() const { return page_ != nullptr; }

 private:
  class BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
};

class BufferPool {
 public:
  /// `capacity` frames over `disk` (borrowed, must outlive the pool).
  BufferPool(DiskManager* disk, size_t capacity);

  /// Fetches (pinning) a page, reading from disk on a miss. Fails if every
  /// frame is pinned.
  util::Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page on disk and returns it pinned.
  util::Result<PageGuard> Allocate();

  /// Writes all dirty pages back.
  util::Status FlushAll();

  size_t capacity() const { return frames_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;
  void Unpin(Page* page);

  /// Finds a frame for a new page, evicting the LRU unpinned page if needed.
  util::Result<size_t> FindVictim();

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> table_;  // page id -> frame index
  std::list<size_t> lru_;                     // frame indices, LRU first
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_BUFFER_POOL_H_
