#include "storage/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace drugtree {
namespace storage {

double ColumnStats::EqualitySelectivity(const Value& v) const {
  if (num_rows_ == 0) return 0.0;
  if (v.is_null()) return NullFraction();
  if (num_distinct_ <= 0) return 0.0;
  // Out-of-range constants select nothing.
  if (!min_.is_null() && v.Compare(min_) < 0) return 0.0;
  if (!max_.is_null() && v.Compare(max_) > 0) return 0.0;
  return (1.0 - NullFraction()) / static_cast<double>(num_distinct_);
}

double ColumnStats::RangeSelectivity(const Value& lo, bool lo_inclusive,
                                     const Value& hi,
                                     bool hi_inclusive) const {
  (void)lo_inclusive;
  (void)hi_inclusive;
  if (num_rows_ == 0) return 0.0;
  double non_null = 1.0 - NullFraction();
  if (boundaries_.size() < 2) {
    // No histogram (non-numeric or tiny column): fall back to the classic
    // 1/3 guess scaled by bound tightness.
    double sel = 1.0;
    if (!lo.is_null()) sel *= 0.33;
    if (!hi.is_null()) sel *= 0.33;
    return std::min(non_null, sel);
  }
  auto numeric = [](const Value& v, double fallback) {
    auto r = v.ToNumeric();
    return r.ok() ? *r : fallback;
  };
  double dmin = boundaries_.front();
  double dmax = boundaries_.back();
  double qlo = lo.is_null() ? dmin : numeric(lo, dmin);
  double qhi = hi.is_null() ? dmax : numeric(hi, dmax);
  if (qlo > qhi) return 0.0;
  qlo = std::max(qlo, dmin);
  qhi = std::min(qhi, dmax);
  if (qlo > dmax || qhi < dmin) return 0.0;
  // Fraction of buckets covered, with linear interpolation at the edges.
  size_t nbuckets = boundaries_.size() - 1;
  double covered = 0.0;
  for (size_t b = 0; b < nbuckets; ++b) {
    double blo = boundaries_[b];
    double bhi = boundaries_[b + 1];
    if (bhi < qlo || blo > qhi) continue;
    double width = bhi - blo;
    if (width <= 0) {
      covered += 1.0;  // degenerate bucket entirely inside the range
      continue;
    }
    double overlap = std::min(bhi, qhi) - std::max(blo, qlo);
    covered += std::clamp(overlap / width, 0.0, 1.0);
  }
  return std::clamp(covered / static_cast<double>(nbuckets), 0.0, 1.0) *
         non_null;
}

util::Result<TableStats> TableStats::Analyze(const Schema& schema,
                                             const std::vector<Row>& rows,
                                             int histogram_buckets) {
  if (histogram_buckets < 2) {
    return util::Status::InvalidArgument("histogram_buckets must be >= 2");
  }
  TableStats stats;
  stats.num_rows_ = static_cast<int64_t>(rows.size());
  stats.columns_.resize(schema.NumColumns());

  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    ColumnStats& cs = stats.columns_[c];
    cs.num_rows_ = stats.num_rows_;
    std::unordered_set<Value> distinct;
    std::vector<double> numeric_values;
    bool numeric_column = schema.column(c).type == ValueType::kInt64 ||
                          schema.column(c).type == ValueType::kDouble;
    const Value* prev = nullptr;
    for (const Row& row : rows) {
      if (c >= row.size()) {
        return util::Status::InvalidArgument("row narrower than schema");
      }
      const Value& v = row[c];
      if (prev == nullptr || prev->Compare(v) != 0) ++cs.num_runs_;
      prev = &v;
      if (v.is_null()) {
        ++cs.num_nulls_;
        continue;
      }
      distinct.insert(v);
      if (cs.min_.is_null() || v.Compare(cs.min_) < 0) cs.min_ = v;
      if (cs.max_.is_null() || v.Compare(cs.max_) > 0) cs.max_ = v;
      if (numeric_column) {
        auto num = v.ToNumeric();
        if (num.ok()) numeric_values.push_back(*num);
      }
    }
    cs.num_distinct_ = static_cast<int64_t>(distinct.size());
    if (numeric_column && numeric_values.size() >= 2) {
      std::sort(numeric_values.begin(), numeric_values.end());
      size_t n = numeric_values.size();
      size_t buckets = std::min<size_t>(
          static_cast<size_t>(histogram_buckets), n);
      cs.boundaries_.clear();
      cs.boundaries_.push_back(numeric_values.front());
      for (size_t b = 1; b < buckets; ++b) {
        size_t idx = b * n / buckets;
        cs.boundaries_.push_back(numeric_values[idx]);
      }
      cs.boundaries_.push_back(numeric_values.back());
    }
  }
  return stats;
}

}  // namespace storage
}  // namespace drugtree
