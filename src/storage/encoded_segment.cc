#include "storage/encoded_segment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace drugtree {
namespace storage {

namespace {

/// Resident-byte convention for one materialized Value (matches the mixed
/// fallback accounting in ColumnVector::ApproxBytes).
uint64_t ValueBytes(const Value& v) {
  uint64_t b = 16;
  if (v.type() == ValueType::kString) b += v.AsString().size();
  return b;
}

/// Iterates either the candidate list or the full row range, appending
/// indices that pass `pred`.
template <typename RowPred>
void EmitMatches(size_t n, const std::vector<uint32_t>* candidates,
                 std::vector<uint32_t>* out, RowPred pred) {
  if (candidates == nullptr) {
    for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
      if (pred(i)) out->push_back(i);
    }
  } else {
    for (uint32_t i : *candidates) {
      if (pred(i)) out->push_back(i);
    }
  }
}

/// Exact per-column profile driving the encoding chooser. One pass over the
/// segment slice, so the choice never depends on (possibly stale) table
/// statistics — TableStats only informs segment sizing upstream.
struct ColumnProfile {
  size_t rows = 0;
  size_t nulls = 0;
  size_t runs = 0;
  uint64_t run_value_bytes = 0;    // Σ ValueBytes over run representatives
  uint64_t distinct_value_bytes = 0;
  size_t distinct = 0;             // non-null distinct values
  bool has_int64 = false;
  int64_t min_i64 = 0, max_i64 = 0;
  bool has_nan = false;            // NaN breaks Compare-based dedup; bail
};

ColumnProfile ProfileColumn(const ColumnVector& src) {
  ColumnProfile p;
  p.rows = src.size();
  std::unordered_set<Value> distinct;
  Value prev;
  bool have_prev = false;
  for (size_t i = 0; i < src.size(); ++i) {
    Value v = src.GetValue(i);
    if (v.type() == ValueType::kDouble && std::isnan(v.AsDouble())) {
      p.has_nan = true;
    }
    if (v.is_null()) {
      ++p.nulls;
    } else {
      if (distinct.insert(v).second) p.distinct_value_bytes += ValueBytes(v);
      if (v.type() == ValueType::kInt64) {
        int64_t x = v.AsInt64();
        if (!p.has_int64 || x < p.min_i64) p.min_i64 = x;
        if (!p.has_int64 || x > p.max_i64) p.max_i64 = x;
        p.has_int64 = true;
      }
    }
    if (!have_prev || prev.Compare(v) != 0) {
      ++p.runs;
      p.run_value_bytes += ValueBytes(v);
      prev = std::move(v);
      have_prev = true;
    }
  }
  p.distinct = distinct.size();
  return p;
}

}  // namespace

const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain: return "plain";
    case ColumnEncoding::kDictionary: return "dict";
    case ColumnEncoding::kRunLength: return "rle";
    case ColumnEncoding::kFrameOfReference: return "for";
  }
  return "?";
}

// ------------------------------------------------------------ BitPackedArray

int BitPackedArray::BitsFor(uint64_t max_value) {
  int bits = 0;
  while (max_value != 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits;
}

BitPackedArray BitPackedArray::Pack(const std::vector<uint64_t>& values,
                                    int bits) {
  DT_CHECK(bits >= 0 && bits <= 64);
  BitPackedArray out;
  out.bits_ = bits;
  out.size_ = values.size();
  out.mask_ = bits == 64 ? ~uint64_t{0}
                         : ((uint64_t{1} << bits) - 1);
  if (bits == 0) return out;
  size_t total_bits = values.size() * static_cast<size_t>(bits);
  out.words_.assign((total_bits + 63) / 64 + 1, 0);  // +1: unsplit tail reads
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t v = values[i];
    DT_CHECK((v & ~out.mask_) == 0);
    size_t off = i * static_cast<size_t>(bits);
    size_t w = off >> 6;
    int shift = static_cast<int>(off & 63);
    out.words_[w] |= v << shift;
    if (shift + bits > 64) out.words_[w + 1] |= v >> (64 - shift);
  }
  return out;
}

// ------------------------------------------------------------- EncodedColumn

bool EncodedColumn::Eligible(const ColumnVector& src, ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return true;
    case ColumnEncoding::kDictionary: {
      if (src.mixed()) return false;
      ColumnProfile p = ProfileColumn(src);
      return !p.has_nan && p.distinct >= 1;
    }
    case ColumnEncoding::kRunLength: {
      if (src.mixed()) return false;
      return !ProfileColumn(src).has_nan;
    }
    case ColumnEncoding::kFrameOfReference:
      return !src.mixed() && src.type() == ValueType::kInt64 &&
             ProfileColumn(src).has_int64;
  }
  return false;
}

ColumnEncoding EncodedColumn::ChooseEncoding(const ColumnVector& src) {
  if (src.mixed() || src.empty()) return ColumnEncoding::kPlain;
  ColumnProfile p = ProfileColumn(src);
  if (p.has_nan) return ColumnEncoding::kPlain;

  uint64_t plain_bytes = src.ApproxBytes();
  uint64_t bitmap_bytes = (src.size() + 63) / 64 * 8;

  // Priority order doubles as the tie-break: run-length scans whole runs
  // per predicate evaluation, dictionary compares pure integer codes,
  // frame-of-reference still touches every row.
  ColumnEncoding best = ColumnEncoding::kPlain;
  uint64_t best_bytes = plain_bytes;

  uint64_t rle_bytes = 64 + p.run_value_bytes +
                       (p.runs + 1) * sizeof(uint32_t);
  if (rle_bytes < best_bytes) {
    best = ColumnEncoding::kRunLength;
    best_bytes = rle_bytes;
  }
  if (p.distinct >= 1) {
    int code_bits =
        BitPackedArray::BitsFor(static_cast<uint64_t>(p.distinct - 1));
    uint64_t dict_bytes = 64 + p.distinct_value_bytes +
                          (src.size() * static_cast<uint64_t>(code_bits)) / 8 +
                          bitmap_bytes;
    if (dict_bytes < best_bytes) {
      best = ColumnEncoding::kDictionary;
      best_bytes = dict_bytes;
    }
  }
  if (src.type() == ValueType::kInt64 && p.has_int64) {
    int delta_bits = BitPackedArray::BitsFor(
        static_cast<uint64_t>(p.max_i64) - static_cast<uint64_t>(p.min_i64));
    uint64_t for_bytes = 64 +
                         (src.size() * static_cast<uint64_t>(delta_bits)) / 8 +
                         bitmap_bytes;
    if (for_bytes < best_bytes) {
      best = ColumnEncoding::kFrameOfReference;
      best_bytes = for_bytes;
    }
  }
  return best;
}

EncodedColumn EncodedColumn::Encode(const ColumnVector& src) {
  return EncodeWith(src, ChooseEncoding(src));
}

EncodedColumn EncodedColumn::EncodeWith(const ColumnVector& src,
                                        ColumnEncoding e) {
  DT_CHECK(Eligible(src, e)) << "ineligible encoding";
  EncodedColumn out;
  out.encoding_ = e;
  out.size_ = src.size();

  auto build_bitmap = [&] {
    out.null_words_.assign((src.size() + 63) / 64, 0);
    for (size_t i = 0; i < src.size(); ++i) {
      if (src.IsNull(i)) {
        out.null_words_[i >> 6] |= uint64_t{1} << (i & 63);
        out.has_nulls_ = true;
      }
    }
  };

  switch (e) {
    case ColumnEncoding::kPlain:
      out.plain_ = src;
      break;

    case ColumnEncoding::kDictionary: {
      build_bitmap();
      std::unordered_set<Value> distinct;
      for (size_t i = 0; i < src.size(); ++i) {
        if (!src.IsNull(i)) distinct.insert(src.GetValue(i));
      }
      out.dict_.assign(distinct.begin(), distinct.end());
      std::sort(out.dict_.begin(), out.dict_.end(),
                [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
      std::unordered_map<Value, uint64_t> code_of;
      code_of.reserve(out.dict_.size());
      for (size_t d = 0; d < out.dict_.size(); ++d) code_of[out.dict_[d]] = d;
      std::vector<uint64_t> codes(src.size(), 0);
      for (size_t i = 0; i < src.size(); ++i) {
        if (!src.IsNull(i)) codes[i] = code_of[src.GetValue(i)];
      }
      int bits = BitPackedArray::BitsFor(
          out.dict_.empty() ? 0 : out.dict_.size() - 1);
      out.codes_ = BitPackedArray::Pack(codes, bits);
      break;
    }

    case ColumnEncoding::kRunLength: {
      for (size_t i = 0; i < src.size(); ++i) {
        Value v = src.GetValue(i);
        if (out.run_values_.empty() ||
            out.run_values_.back().Compare(v) != 0) {
          out.run_values_.push_back(std::move(v));
          out.run_starts_.push_back(static_cast<uint32_t>(i));
        }
      }
      out.run_starts_.push_back(static_cast<uint32_t>(src.size()));
      break;
    }

    case ColumnEncoding::kFrameOfReference: {
      build_bitmap();
      int64_t base = 0;
      bool have_base = false;
      for (size_t i = 0; i < src.size(); ++i) {
        if (src.IsNull(i)) continue;
        int64_t v = src.Int64At(i);
        if (!have_base || v < base) base = v;
        have_base = true;
      }
      out.for_base_ = base;
      std::vector<uint64_t> deltas(src.size(), 0);
      uint64_t max_delta = 0;
      for (size_t i = 0; i < src.size(); ++i) {
        if (src.IsNull(i)) continue;
        // Two's-complement wraparound yields the exact unsigned distance
        // for any int64 pair with v >= base.
        uint64_t d = static_cast<uint64_t>(src.Int64At(i)) -
                     static_cast<uint64_t>(base);
        deltas[i] = d;
        if (d > max_delta) max_delta = d;
      }
      out.for_deltas_ =
          BitPackedArray::Pack(deltas, BitPackedArray::BitsFor(max_delta));
      break;
    }
  }
  out.FinishBytes(src);
  return out;
}

void EncodedColumn::FinishBytes(const ColumnVector& src) {
  plain_bytes_ = src.ApproxBytes();
  uint64_t b = 64 + null_words_.size() * 8;  // struct overhead + bitmap
  switch (encoding_) {
    case ColumnEncoding::kPlain:
      b = plain_.ApproxBytes();
      break;
    case ColumnEncoding::kDictionary:
      for (const Value& v : dict_) b += ValueBytes(v);
      b += codes_.ByteSize();
      break;
    case ColumnEncoding::kRunLength:
      for (const Value& v : run_values_) b += ValueBytes(v);
      b += run_starts_.size() * sizeof(uint32_t);
      break;
    case ColumnEncoding::kFrameOfReference:
      b += for_deltas_.ByteSize();
      break;
  }
  encoded_bytes_ = b;
}

bool EncodedColumn::IsNull(size_t i) const {
  switch (encoding_) {
    case ColumnEncoding::kPlain:
      return plain_.IsNull(i);
    case ColumnEncoding::kRunLength: {
      size_t r = static_cast<size_t>(
          std::upper_bound(run_starts_.begin(), run_starts_.end(),
                           static_cast<uint32_t>(i)) -
          run_starts_.begin()) - 1;
      return run_values_[r].is_null();
    }
    default:
      return has_nulls_ &&
             ((null_words_[i >> 6] >> (i & 63)) & 1) != 0;
  }
}

Value EncodedColumn::ValueAt(size_t i) const {
  switch (encoding_) {
    case ColumnEncoding::kPlain:
      return plain_.GetValue(i);
    case ColumnEncoding::kDictionary:
      if (IsNull(i)) return Value::Null();
      return dict_[codes_.Get(i)];
    case ColumnEncoding::kRunLength: {
      size_t r = static_cast<size_t>(
          std::upper_bound(run_starts_.begin(), run_starts_.end(),
                           static_cast<uint32_t>(i)) -
          run_starts_.begin()) - 1;
      return run_values_[r];
    }
    case ColumnEncoding::kFrameOfReference:
      if (IsNull(i)) return Value::Null();
      return Value::Int64(for_base_ +
                          static_cast<int64_t>(for_deltas_.Get(i)));
  }
  return Value::Null();
}

void EncodedColumn::GatherInto(const uint32_t* idx, size_t n,
                               ColumnVector* out) const {
  switch (encoding_) {
    case ColumnEncoding::kPlain: {
      if (plain_.mixed() || plain_.type() == ValueType::kNull) {
        for (size_t k = 0; k < n; ++k) out->Append(plain_.GetValue(idx[k]));
        return;
      }
      switch (plain_.type()) {
        case ValueType::kBool:
          for (size_t k = 0; k < n; ++k) {
            if (plain_.IsNull(idx[k])) out->AppendNull();
            else out->AppendBool(plain_.BoolAt(idx[k]));
          }
          return;
        case ValueType::kInt64:
          for (size_t k = 0; k < n; ++k) {
            if (plain_.IsNull(idx[k])) out->AppendNull();
            else out->AppendInt64(plain_.Int64At(idx[k]));
          }
          return;
        case ValueType::kDouble:
          for (size_t k = 0; k < n; ++k) {
            if (plain_.IsNull(idx[k])) out->AppendNull();
            else out->AppendDouble(plain_.DoubleAt(idx[k]));
          }
          return;
        case ValueType::kString:
          for (size_t k = 0; k < n; ++k) {
            if (plain_.IsNull(idx[k])) out->AppendNull();
            else out->AppendString(plain_.StringAt(idx[k]));
          }
          return;
        default:
          return;
      }
    }

    case ColumnEncoding::kDictionary: {
      ValueType t = dict_.empty() ? ValueType::kNull : dict_[0].type();
      switch (t) {
        case ValueType::kInt64:
          for (size_t k = 0; k < n; ++k) {
            if (IsNull(idx[k])) out->AppendNull();
            else out->AppendInt64(dict_[codes_.Get(idx[k])].AsInt64());
          }
          return;
        case ValueType::kDouble:
          for (size_t k = 0; k < n; ++k) {
            if (IsNull(idx[k])) out->AppendNull();
            else out->AppendDouble(dict_[codes_.Get(idx[k])].AsDouble());
          }
          return;
        case ValueType::kString:
          for (size_t k = 0; k < n; ++k) {
            if (IsNull(idx[k])) out->AppendNull();
            else out->AppendString(dict_[codes_.Get(idx[k])].AsString());
          }
          return;
        default:
          for (size_t k = 0; k < n; ++k) out->Append(ValueAt(idx[k]));
          return;
      }
    }

    case ColumnEncoding::kRunLength: {
      // idx is ascending, so one forward run pointer suffices.
      size_t r = 0;
      for (size_t k = 0; k < n; ++k) {
        while (idx[k] >= run_starts_[r + 1]) ++r;
        out->Append(run_values_[r]);
      }
      return;
    }

    case ColumnEncoding::kFrameOfReference:
      for (size_t k = 0; k < n; ++k) {
        if (IsNull(idx[k])) out->AppendNull();
        else {
          out->AppendInt64(for_base_ +
                           static_cast<int64_t>(for_deltas_.Get(idx[k])));
        }
      }
      return;
  }
}

void EncodedColumn::DecodeInto(ColumnVector* out) const {
  if (encoding_ == ColumnEncoding::kRunLength) {
    for (size_t r = 0; r + 1 < run_starts_.size(); ++r) {
      out->AppendRepeated(run_values_[r], run_starts_[r + 1] - run_starts_[r]);
    }
    return;
  }
  std::vector<uint32_t> all(size_);
  for (size_t i = 0; i < size_; ++i) all[i] = static_cast<uint32_t>(i);
  GatherInto(all.data(), all.size(), out);
}

void EncodedColumn::FilterCompare(CompareOp op, const Value& literal,
                                  const std::vector<uint32_t>* candidates,
                                  std::vector<uint32_t>* out) const {
  if (literal.is_null()) return;  // NULL literal: three-valued logic -> false

  switch (encoding_) {
    case ColumnEncoding::kDictionary: {
      // Translate the literal once: with the dictionary sorted in
      // Value::Compare order, every comparison becomes a code-range test.
      size_t ndv = dict_.size();
      size_t lower = static_cast<size_t>(
          std::lower_bound(dict_.begin(), dict_.end(), literal,
                           [](const Value& a, const Value& b) {
                             return a.Compare(b) < 0;
                           }) -
          dict_.begin());
      size_t upper = static_cast<size_t>(
          std::upper_bound(dict_.begin(), dict_.end(), literal,
                           [](const Value& a, const Value& b) {
                             return a.Compare(b) < 0;
                           }) -
          dict_.begin());
      uint64_t lo1 = 0, hi1 = 0, lo2 = 0, hi2 = 0;
      switch (op) {
        case CompareOp::kEq: lo1 = lower; hi1 = upper; break;
        case CompareOp::kNe: lo1 = 0; hi1 = lower; lo2 = upper; hi2 = ndv;
          break;
        case CompareOp::kLt: lo1 = 0; hi1 = lower; break;
        case CompareOp::kLe: lo1 = 0; hi1 = upper; break;
        case CompareOp::kGt: lo1 = upper; hi1 = ndv; break;
        case CompareOp::kGe: lo1 = lower; hi1 = ndv; break;
      }
      if (lo1 >= hi1 && lo2 >= hi2) return;
      EmitMatches(size_, candidates, out, [&](uint32_t i) {
        if (has_nulls_ && ((null_words_[i >> 6] >> (i & 63)) & 1)) {
          return false;
        }
        uint64_t c = codes_.Get(i);
        return (c >= lo1 && c < hi1) || (c >= lo2 && c < hi2);
      });
      return;
    }

    case ColumnEncoding::kRunLength: {
      // One Value comparison per run; whole runs are emitted or skipped.
      auto run_matches = [&](size_t r) {
        const Value& v = run_values_[r];
        return !v.is_null() && CompareMatches(op, v.Compare(literal));
      };
      if (candidates == nullptr) {
        for (size_t r = 0; r + 1 < run_starts_.size(); ++r) {
          if (!run_matches(r)) continue;
          for (uint32_t i = run_starts_[r]; i < run_starts_[r + 1]; ++i) {
            out->push_back(i);
          }
        }
      } else {
        size_t r = 0;
        bool cached = false, ok = false;
        for (uint32_t i : *candidates) {
          while (i >= run_starts_[r + 1]) {
            ++r;
            cached = false;
          }
          if (!cached) {
            ok = run_matches(r);
            cached = true;
          }
          if (ok) out->push_back(i);
        }
      }
      return;
    }

    case ColumnEncoding::kFrameOfReference: {
      auto not_null = [&](uint32_t i) {
        return !has_nulls_ || ((null_words_[i >> 6] >> (i & 63)) & 1) == 0;
      };
      if (literal.type() == ValueType::kInt64) {
        int64_t lit = literal.AsInt64();
        EmitMatches(size_, candidates, out, [&](uint32_t i) {
          if (!not_null(i)) return false;
          int64_t v = for_base_ + static_cast<int64_t>(for_deltas_.Get(i));
          return CompareMatches(op, v < lit ? -1 : (v > lit ? 1 : 0));
        });
      } else if (literal.type() == ValueType::kDouble) {
        double lit = literal.AsDouble();
        EmitMatches(size_, candidates, out, [&](uint32_t i) {
          if (!not_null(i)) return false;
          double v = static_cast<double>(
              for_base_ + static_cast<int64_t>(for_deltas_.Get(i)));
          return CompareMatches(op, v < lit ? -1 : (v > lit ? 1 : 0));
        });
      } else {
        // Non-numeric literal vs Int64 orders by type id (constant result).
        int cmp = literal.type() == ValueType::kBool ? 1 : -1;
        if (!CompareMatches(op, cmp)) return;
        EmitMatches(size_, candidates, out, not_null);
      }
      return;
    }

    case ColumnEncoding::kPlain: {
      if (!plain_.mixed()) {
        if (plain_.type() == ValueType::kInt64 &&
            literal.type() == ValueType::kInt64) {
          int64_t lit = literal.AsInt64();
          EmitMatches(size_, candidates, out, [&](uint32_t i) {
            if (plain_.IsNull(i)) return false;
            int64_t v = plain_.Int64At(i);
            return CompareMatches(op, v < lit ? -1 : (v > lit ? 1 : 0));
          });
          return;
        }
        if (plain_.type() == ValueType::kString &&
            literal.type() == ValueType::kString) {
          const std::string& lit = literal.AsString();
          EmitMatches(size_, candidates, out, [&](uint32_t i) {
            if (plain_.IsNull(i)) return false;
            int c = plain_.StringAt(i).compare(lit);
            return CompareMatches(op, c < 0 ? -1 : (c > 0 ? 1 : 0));
          });
          return;
        }
        if (plain_.type() == ValueType::kDouble &&
            (literal.type() == ValueType::kDouble ||
             literal.type() == ValueType::kInt64)) {
          double lit = literal.type() == ValueType::kInt64
                           ? static_cast<double>(literal.AsInt64())
                           : literal.AsDouble();
          EmitMatches(size_, candidates, out, [&](uint32_t i) {
            if (plain_.IsNull(i)) return false;
            double v = plain_.DoubleAt(i);
            return CompareMatches(op, v < lit ? -1 : (v > lit ? 1 : 0));
          });
          return;
        }
      }
      EmitMatches(size_, candidates, out, [&](uint32_t i) {
        Value v = plain_.GetValue(i);
        return !v.is_null() && CompareMatches(op, v.Compare(literal));
      });
      return;
    }
  }
}

// ------------------------------------------------------------ FilterSegment

void FilterSegment(const EncodedSegment& seg,
                   const std::vector<EncodedPredicate>& clauses,
                   std::vector<uint32_t>* matches,
                   std::vector<uint32_t>* scratch) {
  if (clauses.empty()) {
    matches->resize(seg.num_rows);
    for (size_t i = 0; i < seg.num_rows; ++i) {
      (*matches)[i] = static_cast<uint32_t>(i);
    }
    return;
  }
  matches->clear();
  seg.columns[clauses[0].column].FilterCompare(
      clauses[0].op, clauses[0].literal, /*candidates=*/nullptr, matches);
  for (size_t k = 1; k < clauses.size() && !matches->empty(); ++k) {
    scratch->clear();
    seg.columns[clauses[k].column].FilterCompare(
        clauses[k].op, clauses[k].literal, matches, scratch);
    matches->swap(*scratch);
  }
}

// ----------------------------------------------------- EncodedTableSnapshot

ColumnEncoding EncodedTableSnapshot::DominantEncoding(size_t c) const {
  int counts[4] = {0, 0, 0, 0};
  for (const EncodedSegment& seg : segments) {
    if (c < seg.columns.size()) {
      ++counts[static_cast<size_t>(seg.columns[c].encoding())];
    }
  }
  int best = 0;
  for (int e = 1; e < 4; ++e) {
    if (counts[e] > counts[best]) best = e;
  }
  return static_cast<ColumnEncoding>(best);
}

std::string EncodedTableSnapshot::Summary(const Schema& schema) const {
  std::string out;
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    if (!out.empty()) out += " ";
    out += schema.column(c).name;
    out += "=";
    out += ColumnEncodingName(DominantEncoding(c));
  }
  return out;
}

EncodedTableSnapshot BuildEncodedTableSnapshot(
    size_t num_columns, const std::vector<const Row*>& rows,
    size_t segment_rows) {
  DT_CHECK(segment_rows > 0);
  EncodedTableSnapshot snap;
  snap.num_rows = rows.size();
  for (size_t begin = 0; begin < rows.size(); begin += segment_rows) {
    size_t end = std::min(rows.size(), begin + segment_rows);
    EncodedSegment seg;
    seg.num_rows = end - begin;
    seg.columns.reserve(num_columns);
    ColumnVector col;
    for (size_t c = 0; c < num_columns; ++c) {
      col.Clear();
      col.Reserve(seg.num_rows);
      for (size_t r = begin; r < end; ++r) col.Append((*rows[r])[c]);
      seg.columns.push_back(EncodedColumn::Encode(col));
      seg.encoded_bytes += seg.columns.back().EncodedBytes();
      seg.plain_bytes += seg.columns.back().PlainBytes();
    }
    snap.encoded_bytes += seg.encoded_bytes;
    snap.plain_bytes += seg.plain_bytes;
    snap.segments.push_back(std::move(seg));
  }
  return snap;
}

}  // namespace storage
}  // namespace drugtree
