// Pages and the disk manager: fixed-size blocks persisted to a single file,
// the unit the buffer pool caches. The slotted-page record layout lives in
// heap_file.{h,cc}.

#ifndef DRUGTREE_STORAGE_PAGE_H_
#define DRUGTREE_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "util/result.h"

namespace drugtree {
namespace storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = UINT32_MAX;
inline constexpr size_t kPageSize = 4096;

/// One in-memory page frame.
class Page {
 public:
  Page() { data_.fill(0); }

  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  PageId id() const { return id_; }
  void set_id(PageId id) { id_ = id; }

  bool dirty() const { return dirty_; }
  void set_dirty(bool d) { dirty_ = d; }

  int pin_count() const { return pin_count_; }
  void Pin() { ++pin_count_; }
  void Unpin() { --pin_count_; }

  /// Typed read/write helpers at a byte offset.
  template <typename T>
  T ReadAt(size_t offset) const {
    T v;
    std::memcpy(&v, data_.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(size_t offset, const T& v) {
    std::memcpy(data_.data() + offset, &v, sizeof(T));
    dirty_ = true;
  }

 private:
  std::array<char, kPageSize> data_;
  PageId id_ = kInvalidPage;
  bool dirty_ = false;
  int pin_count_ = 0;
};

/// Allocates, reads, and writes pages in one backing file.
class DiskManager {
 public:
  /// Opens (or creates) the backing file.
  static util::Result<std::unique_ptr<DiskManager>> Open(const std::string& path);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id.
  util::Result<PageId> AllocatePage();

  /// Reads page `id` into `page->data()`.
  util::Status ReadPage(PageId id, Page* page);

  /// Writes `page->data()` to page `id`.
  util::Status WritePage(PageId id, const Page& page);

  /// Number of pages ever allocated.
  uint32_t NumPages() const { return num_pages_; }

  /// Disk I/O counters (for E8).
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  explicit DiskManager(int fd, uint32_t num_pages)
      : fd_(fd), num_pages_(num_pages) {}

  int fd_;
  uint32_t num_pages_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_PAGE_H_
