#include "storage/heap_file.h"

#include <cstring>

#include "util/string_util.h"

namespace drugtree {
namespace storage {

namespace {

// Page header offsets.
constexpr size_t kNumSlotsOff = 0;
constexpr size_t kFreeEndOff = 2;
constexpr size_t kHeaderSize = 4;
constexpr size_t kSlotSize = 4;  // u16 offset + u16 length

uint16_t NumSlots(const Page& p) { return p.ReadAt<uint16_t>(kNumSlotsOff); }
uint16_t FreeEnd(const Page& p) { return p.ReadAt<uint16_t>(kFreeEndOff); }

void InitDataPage(Page* p) {
  p->WriteAt<uint16_t>(kNumSlotsOff, 0);
  p->WriteAt<uint16_t>(kFreeEndOff, static_cast<uint16_t>(kPageSize));
}

size_t SlotOffset(uint16_t slot) { return kHeaderSize + slot * kSlotSize; }

// Free bytes between the slot array and the data area.
size_t FreeBytes(const Page& p) {
  size_t slots_end = SlotOffset(NumSlots(p));
  return FreeEnd(p) - slots_end;
}

// Directory page layout: [u32 num_data_pages][u32 page_id]...
constexpr size_t kDirCountOff = 0;
constexpr size_t kDirEntriesOff = 4;
constexpr size_t kMaxDirEntries = (kPageSize - kDirEntriesOff) / 4;

}  // namespace

util::Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  DRUGTREE_ASSIGN_OR_RETURN(PageGuard dir, pool->Allocate());
  dir->WriteAt<uint32_t>(kDirCountOff, 0);
  HeapFile hf(pool, dir->id());
  return hf;
}

util::Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId directory_page) {
  HeapFile hf(pool, directory_page);
  DRUGTREE_RETURN_IF_ERROR(hf.LoadDirectory());
  return hf;
}

util::Status HeapFile::LoadDirectory() {
  DRUGTREE_ASSIGN_OR_RETURN(PageGuard dir, pool_->Fetch(directory_page_));
  uint32_t count = dir->ReadAt<uint32_t>(kDirCountOff);
  if (count > kMaxDirEntries) {
    return util::Status::Internal("corrupt heap-file directory");
  }
  data_pages_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    data_pages_.push_back(
        dir->ReadAt<uint32_t>(kDirEntriesOff + i * 4));
  }
  return util::Status::OK();
}

util::Status HeapFile::SaveDirectory() {
  DRUGTREE_ASSIGN_OR_RETURN(PageGuard dir, pool_->Fetch(directory_page_));
  dir->WriteAt<uint32_t>(kDirCountOff,
                         static_cast<uint32_t>(data_pages_.size()));
  for (size_t i = 0; i < data_pages_.size(); ++i) {
    dir->WriteAt<uint32_t>(kDirEntriesOff + i * 4, data_pages_[i]);
  }
  return util::Status::OK();
}

util::Result<RecordId> HeapFile::Insert(const std::string& record) {
  size_t needed = record.size() + kSlotSize;
  if (record.size() > kPageSize - kHeaderSize - kSlotSize) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "record of %zu bytes exceeds page capacity", record.size()));
  }
  // Try the last data page first (append-mostly workloads).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!data_pages_.empty()) {
      PageId pid = data_pages_.back();
      DRUGTREE_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(pid));
      if (FreeBytes(*page) >= needed) {
        uint16_t slot = NumSlots(*page);
        uint16_t new_end =
            static_cast<uint16_t>(FreeEnd(*page) - record.size());
        std::memcpy(page->data() + new_end, record.data(), record.size());
        page->WriteAt<uint16_t>(SlotOffset(slot), new_end);
        page->WriteAt<uint16_t>(SlotOffset(slot) + 2,
                                static_cast<uint16_t>(record.size()));
        page->WriteAt<uint16_t>(kNumSlotsOff, static_cast<uint16_t>(slot + 1));
        page->WriteAt<uint16_t>(kFreeEndOff, new_end);
        return RecordId{pid, slot};
      }
    }
    // Need a fresh data page.
    if (data_pages_.size() >= kMaxDirEntries) {
      return util::Status::ResourceExhausted("heap-file directory is full");
    }
    DRUGTREE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->Allocate());
    InitDataPage(fresh.get());
    data_pages_.push_back(fresh->id());
    DRUGTREE_RETURN_IF_ERROR(SaveDirectory());
  }
  return util::Status::Internal("insert failed after page allocation");
}

util::Result<std::string> HeapFile::Get(const RecordId& id) {
  DRUGTREE_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(id.page));
  if (id.slot >= NumSlots(*page)) {
    return util::Status::NotFound(
        util::StringPrintf("no slot %u on page %u", id.slot, id.page));
  }
  uint16_t off = page->ReadAt<uint16_t>(SlotOffset(id.slot));
  uint16_t len = page->ReadAt<uint16_t>(SlotOffset(id.slot) + 2);
  if (len == 0) {
    return util::Status::NotFound("record was deleted");
  }
  return std::string(page->data() + off, len);
}

util::Status HeapFile::Delete(const RecordId& id) {
  DRUGTREE_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(id.page));
  if (id.slot >= NumSlots(*page)) {
    return util::Status::NotFound(
        util::StringPrintf("no slot %u on page %u", id.slot, id.page));
  }
  page->WriteAt<uint16_t>(SlotOffset(id.slot) + 2, 0);
  return util::Status::OK();
}

util::Status HeapFile::Scan(
    const std::function<util::Status(const RecordId&, const std::string&)>&
        visit) {
  for (PageId pid : data_pages_) {
    DRUGTREE_ASSIGN_OR_RETURN(PageGuard page, pool_->Fetch(pid));
    uint16_t slots = NumSlots(*page);
    for (uint16_t s = 0; s < slots; ++s) {
      uint16_t off = page->ReadAt<uint16_t>(SlotOffset(s));
      uint16_t len = page->ReadAt<uint16_t>(SlotOffset(s) + 2);
      if (len == 0) continue;
      std::string rec(page->data() + off, len);
      DRUGTREE_RETURN_IF_ERROR(visit(RecordId{pid, s}, rec));
    }
  }
  return util::Status::OK();
}

util::Result<int64_t> HeapFile::Count() {
  int64_t n = 0;
  DRUGTREE_RETURN_IF_ERROR(
      Scan([&n](const RecordId&, const std::string&) {
        ++n;
        return util::Status::OK();
      }));
  return n;
}

}  // namespace storage
}  // namespace drugtree
