#include "storage/bptree.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace storage {

// Entries are unique under the composite (key, row) order, so the classic
// unique-key algorithms apply even with duplicate keys.
//
// Deletion removes from the leaf without rebalancing (lazy deletion, as in
// several production B-trees): lookups and scans stay correct, and space is
// reclaimed when a node empties completely.

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<Entry> entries;                  // leaf data or separators
  std::vector<std::unique_ptr<Node>> children; // internal: entries.size()+1
  Node* next = nullptr;                        // leaf chain
};

BPlusTree::BPlusTree(int fanout) : fanout_(std::max(4, fanout)) {
  root_ = std::make_unique<Node>();
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

int BPlusTree::CompareEntry(const Entry& a, const Value& key, RowId row) {
  int c = a.key.Compare(key);
  if (c != 0) return c;
  return a.row < row ? -1 : (a.row > row ? 1 : 0);
}

namespace {

// First index in `entries` whose (key,row) is >= (key,row). Templated so the
// private Entry type is deduced rather than named.
template <typename E>
int LowerBound(const std::vector<E>& entries, const Value& key, RowId row,
               int (*cmp)(const E&, const Value&, RowId)) {
  int lo = 0, hi = static_cast<int>(entries.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (cmp(entries[static_cast<size_t>(mid)], key, row) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void BPlusTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[static_cast<size_t>(index)].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  int mid = static_cast<int>(child->entries.size()) / 2;

  Entry separator;
  if (child->leaf) {
    // Right keeps [mid, end); the separator is a copy of right's first entry.
    right->entries.assign(child->entries.begin() + mid, child->entries.end());
    child->entries.resize(static_cast<size_t>(mid));
    separator = right->entries.front();
    right->next = child->next;
    child->next = right.get();
  } else {
    // Median moves up; right keeps (mid, end) and the matching children.
    separator = child->entries[static_cast<size_t>(mid)];
    right->entries.assign(child->entries.begin() + mid + 1,
                          child->entries.end());
    for (size_t i = static_cast<size_t>(mid) + 1; i < child->children.size();
         ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->entries.resize(static_cast<size_t>(mid));
    child->children.resize(static_cast<size_t>(mid) + 1);
  }
  parent->entries.insert(parent->entries.begin() + index, std::move(separator));
  parent->children.insert(parent->children.begin() + index + 1,
                          std::move(right));
}

util::Status BPlusTree::Insert(const Value& key, RowId row) {
  if (static_cast<int>(root_->entries.size()) >= fanout_) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  Node* node = root_.get();
  while (!node->leaf) {
    // Child to descend into: first separator > (key,row) bounds the child.
    int idx = LowerBound(node->entries, key, row, &CompareEntry);
    if (idx < static_cast<int>(node->entries.size()) &&
        CompareEntry(node->entries[static_cast<size_t>(idx)], key, row) == 0) {
      ++idx;  // equal separator: the pair belongs in the right subtree (B+)
    }
    Node* child = node->children[static_cast<size_t>(idx)].get();
    if (static_cast<int>(child->entries.size()) >= fanout_) {
      SplitChild(node, idx);
      // Re-decide which side of the new separator we go.
      if (CompareEntry(node->entries[static_cast<size_t>(idx)], key, row) <= 0) {
        ++idx;
      }
      child = node->children[static_cast<size_t>(idx)].get();
    }
    node = child;
  }
  int pos = LowerBound(node->entries, key, row, &CompareEntry);
  if (pos < static_cast<int>(node->entries.size()) &&
      CompareEntry(node->entries[static_cast<size_t>(pos)], key, row) == 0) {
    return util::Status::AlreadyExists(util::StringPrintf(
        "duplicate index entry (%s, %lld)", key.ToString().c_str(),
        (long long)row));
  }
  node->entries.insert(node->entries.begin() + pos, Entry{key, row});
  ++size_;
  return util::Status::OK();
}

BPlusTree::Node* BPlusTree::FindLeaf(const Value& key, RowId row) const {
  Node* node = root_.get();
  while (!node->leaf) {
    int idx = LowerBound(node->entries, key, row, &CompareEntry);
    if (idx < static_cast<int>(node->entries.size()) &&
        CompareEntry(node->entries[static_cast<size_t>(idx)], key, row) == 0) {
      ++idx;
    }
    node = node->children[static_cast<size_t>(idx)].get();
  }
  return node;
}

util::Status BPlusTree::Erase(const Value& key, RowId row) {
  Node* leaf = FindLeaf(key, row);
  int pos = LowerBound(leaf->entries, key, row, &CompareEntry);
  if (pos >= static_cast<int>(leaf->entries.size()) ||
      CompareEntry(leaf->entries[static_cast<size_t>(pos)], key, row) != 0) {
    return util::Status::NotFound(util::StringPrintf(
        "index entry (%s, %lld) not found", key.ToString().c_str(),
        (long long)row));
  }
  leaf->entries.erase(leaf->entries.begin() + pos);
  --size_;
  return util::Status::OK();
}

std::vector<RowId> BPlusTree::Find(const Value& key) const {
  return RangeScan(key, true, key, true);
}

std::vector<RowId> BPlusTree::RangeScan(const Value& lo, bool lo_inclusive,
                                        const Value& hi,
                                        bool hi_inclusive) const {
  std::vector<RowId> out;
  // Locate the starting leaf. A null `lo` means scan from the leftmost leaf.
  Node* leaf;
  int pos;
  if (lo.is_null()) {
    leaf = root_.get();
    while (!leaf->leaf) leaf = leaf->children.front().get();
    pos = 0;
  } else {
    // Smallest possible row id gets us to the first occurrence of lo.
    leaf = FindLeaf(lo, INT64_MIN);
    pos = LowerBound(leaf->entries, lo, INT64_MIN, &CompareEntry);
  }
  while (leaf != nullptr) {
    for (; pos < static_cast<int>(leaf->entries.size()); ++pos) {
      const Entry& e = leaf->entries[static_cast<size_t>(pos)];
      if (!lo.is_null()) {
        int c = e.key.Compare(lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (!hi.is_null()) {
        int c = e.key.Compare(hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return out;
      }
      out.push_back(e.row);
    }
    leaf = leaf->next;
    pos = 0;
  }
  return out;
}

int BPlusTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

util::Status BPlusTree::CheckInvariants() const {
  // Recursive structural check via explicit stack: within-node ordering,
  // child count, separator bounds, and that the leaf chain yields exactly
  // `size_` entries in globally sorted order.
  struct Item {
    const Node* node;
    const Entry* lo;  // exclusive-ish lower bound (>= for leftmost descent)
    const Entry* hi;  // upper bound
  };
  std::vector<Item> stack = {{root_.get(), nullptr, nullptr}};
  const Node* leftmost_leaf = nullptr;
  while (!stack.empty()) {
    auto [node, lo, hi] = stack.back();
    stack.pop_back();
    for (size_t i = 1; i < node->entries.size(); ++i) {
      if (CompareEntry(node->entries[i - 1], node->entries[i].key,
                       node->entries[i].row) >= 0) {
        return util::Status::Internal("node entries out of order");
      }
    }
    for (const Entry& e : node->entries) {
      if (lo && CompareEntry(*lo, e.key, e.row) > 0) {
        return util::Status::Internal("entry below subtree lower bound");
      }
      if (hi && CompareEntry(*hi, e.key, e.row) <= 0) {
        return util::Status::Internal("entry above subtree upper bound");
      }
    }
    if (node->leaf) {
      if (!node->children.empty()) {
        return util::Status::Internal("leaf has children");
      }
      if (leftmost_leaf == nullptr) leftmost_leaf = node;
    } else {
      if (node->children.size() != node->entries.size() + 1) {
        return util::Status::Internal(util::StringPrintf(
            "internal node has %zu children for %zu separators",
            node->children.size(), node->entries.size()));
      }
      for (size_t i = 0; i < node->children.size(); ++i) {
        const Entry* clo = i == 0 ? lo : &node->entries[i - 1];
        const Entry* chi =
            i == node->entries.size() ? hi : &node->entries[i];
        stack.push_back({node->children[i].get(), clo, chi});
      }
    }
  }
  // Walk down to the true leftmost leaf and follow the chain.
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  size_t total = 0;
  const Entry* prev = nullptr;
  while (leaf) {
    for (const Entry& e : leaf->entries) {
      if (prev && CompareEntry(*prev, e.key, e.row) >= 0) {
        return util::Status::Internal("leaf chain out of order");
      }
      prev = &e;
      ++total;
    }
    leaf = leaf->next;
  }
  if (total != size_) {
    return util::Status::Internal(util::StringPrintf(
        "leaf chain has %zu entries, expected %zu", total, size_));
  }
  return util::Status::OK();
}

}  // namespace storage
}  // namespace drugtree
