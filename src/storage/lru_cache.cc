// LruCache is header-only (template); this translation unit pins the header
// into the build so compile errors surface with the library.
#include "storage/lru_cache.h"

namespace drugtree {
namespace storage {
// Explicit instantiation of a common configuration as a compile check.
template class LruCache<uint64_t, uint64_t>;
}  // namespace storage
}  // namespace drugtree
