#include "storage/bloom.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace drugtree {
namespace storage {

BloomFilter::BloomFilter(size_t expected_items, int bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_items * static_cast<size_t>(
                                          std::max(1, bits_per_key)));
  bits_.assign((bits + 63) / 64, 0);
  // k = ln(2) * bits/key, clamped to [1, 30].
  num_hashes_ = std::clamp(
      static_cast<int>(std::round(0.693 * bits_per_key)), 1, 30);
}

void BloomFilter::Add(const Value& v) {
  uint64_t h = v.Hash();
  uint64_t delta = (h >> 17) | (h << 47);  // double hashing
  size_t nbits = num_bits();
  for (int i = 0; i < num_hashes_; ++i) {
    size_t bit = static_cast<size_t>(h % nbits);
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
    h += delta;
  }
  ++items_;
}

bool BloomFilter::MayContain(const Value& v) const {
  uint64_t h = v.Hash();
  uint64_t delta = (h >> 17) | (h << 47);
  size_t nbits = num_bits();
  for (int i = 0; i < num_hashes_; ++i) {
    size_t bit = static_cast<size_t>(h % nbits);
    if (!((bits_[bit / 64] >> (bit % 64)) & 1)) return false;
    h += delta;
  }
  return true;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  size_t set = 0;
  for (uint64_t w : bits_) set += static_cast<size_t>(std::popcount(w));
  double fill = static_cast<double>(set) / static_cast<double>(num_bits());
  return std::pow(fill, num_hashes_);
}

}  // namespace storage
}  // namespace drugtree
