#include "storage/hash_index.h"

#include <algorithm>

#include "util/string_util.h"

namespace drugtree {
namespace storage {

util::Status HashIndex::Insert(const Value& key, RowId row) {
  auto& rows = map_[key];
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it != rows.end() && *it == row) {
    return util::Status::AlreadyExists(util::StringPrintf(
        "duplicate hash-index entry (%s, %lld)", key.ToString().c_str(),
        (long long)row));
  }
  rows.insert(it, row);
  ++size_;
  return util::Status::OK();
}

util::Status HashIndex::Erase(const Value& key, RowId row) {
  auto mit = map_.find(key);
  if (mit == map_.end()) {
    return util::Status::NotFound("key not in hash index: " + key.ToString());
  }
  auto& rows = mit->second;
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it == rows.end() || *it != row) {
    return util::Status::NotFound(util::StringPrintf(
        "hash-index entry (%s, %lld) not found", key.ToString().c_str(),
        (long long)row));
  }
  rows.erase(it);
  if (rows.empty()) map_.erase(mit);
  --size_;
  return util::Status::OK();
}

std::vector<RowId> HashIndex::Find(const Value& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return {};
  return it->second;
}

}  // namespace storage
}  // namespace drugtree
