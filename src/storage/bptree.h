// In-memory B+-tree index mapping Value keys to row ids, with duplicate keys
// supported (entries are ordered by (key, row id)).
//
// This is the index behind tree-interval scans: pre-order numbers are Int64
// keys, so a SUBTREE predicate becomes one RangeScan([pre, post]) — the
// poster's "novel mechanism" for removing tree-query lag.

#ifndef DRUGTREE_STORAGE_BPTREE_H_
#define DRUGTREE_STORAGE_BPTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/value.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

using RowId = int64_t;

/// B+-tree with configurable fanout. Leaves are chained for range scans.
class BPlusTree {
 public:
  /// `fanout` = max entries per node (>= 4).
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts (key, row). Duplicate keys are allowed; the exact (key, row)
  /// pair must not already exist.
  util::Status Insert(const Value& key, RowId row);

  /// Removes the exact (key, row) pair; NotFound if absent.
  util::Status Erase(const Value& key, RowId row);

  /// All row ids with exactly this key, ascending by row id.
  std::vector<RowId> Find(const Value& key) const;

  /// All (key,row) pairs with lo <= key <= hi, in key order. Null bounds mean
  /// unbounded on that side.
  std::vector<RowId> RangeScan(const Value& lo, bool lo_inclusive,
                               const Value& hi, bool hi_inclusive) const;

  /// Entry count.
  size_t size() const { return size_; }

  /// Height in levels (1 = just a leaf).
  int Height() const;

  /// Internal-consistency check used by tests: ordering within nodes, key
  /// separators, leaf chain completeness.
  util::Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Value key;
    RowId row;
  };

  static int CompareEntry(const Entry& a, const Value& key, RowId row);

  Node* FindLeaf(const Value& key, RowId row) const;
  void SplitChild(Node* parent, int index);

  int fanout_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_BPTREE_H_
