#include "storage/table.h"

#include "util/string_util.h"

namespace drugtree {
namespace storage {

util::Result<RowId> Table::Insert(Row row) {
  DRUGTREE_RETURN_IF_ERROR(schema_.CheckRow(row));
  RowId id = static_cast<RowId>(rows_.size());
  // Maintain indexes before committing the row so a failure leaves the table
  // unchanged (index inserts can only fail on duplicates, which cannot
  // happen for a fresh row id; DT-internal invariant).
  for (auto& [col, index] : btree_indexes_) {
    auto ci = schema_.IndexOf(col);
    DRUGTREE_RETURN_IF_ERROR(index->Insert(row[*ci], id));
  }
  for (auto& [col, index] : hash_indexes_) {
    auto ci = schema_.IndexOf(col);
    DRUGTREE_RETURN_IF_ERROR(index->Insert(row[*ci], id));
  }
  rows_.push_back(std::move(row));
  ++live_rows_;
  ++version_;  // invalidates the encoded snapshot and stats freshness
  return id;
}

util::Result<Row> Table::FetchRow(RowId id) const {
  if (!ValidRowId(id)) {
    return util::Status::OutOfRange(
        util::StringPrintf("row id %lld out of range", (long long)id));
  }
  if (IsDeleted(id)) {
    return util::Status::NotFound(
        util::StringPrintf("row %lld was deleted", (long long)id));
  }
  return rows_[static_cast<size_t>(id)];
}

util::Status Table::Delete(RowId id) {
  if (!ValidRowId(id)) {
    return util::Status::OutOfRange(
        util::StringPrintf("row id %lld out of range", (long long)id));
  }
  if (IsDeleted(id)) {
    return util::Status::NotFound(
        util::StringPrintf("row %lld already deleted", (long long)id));
  }
  const Row& row = rows_[static_cast<size_t>(id)];
  for (auto& [col, index] : btree_indexes_) {
    auto ci = schema_.IndexOf(col);
    DRUGTREE_RETURN_IF_ERROR(index->Erase(row[*ci], id));
  }
  for (auto& [col, index] : hash_indexes_) {
    auto ci = schema_.IndexOf(col);
    DRUGTREE_RETURN_IF_ERROR(index->Erase(row[*ci], id));
  }
  rows_[static_cast<size_t>(id)].clear();
  --live_rows_;
  ++version_;  // invalidates the encoded snapshot and stats freshness
  return util::Status::OK();
}

util::Status Table::CreateIndex(const std::string& column, IndexKind kind) {
  DRUGTREE_ASSIGN_OR_RETURN(size_t ci, schema_.IndexOf(column));
  if (kind == IndexKind::kBTree) {
    if (btree_indexes_.count(column)) {
      return util::Status::AlreadyExists("B+-tree index exists on " + column);
    }
    auto index = std::make_unique<BPlusTree>();
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (rows_[r].empty()) continue;
      DRUGTREE_RETURN_IF_ERROR(
          index->Insert(rows_[r][ci], static_cast<RowId>(r)));
    }
    btree_indexes_[column] = std::move(index);
  } else {
    if (hash_indexes_.count(column)) {
      return util::Status::AlreadyExists("hash index exists on " + column);
    }
    auto index = std::make_unique<HashIndex>();
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (rows_[r].empty()) continue;
      DRUGTREE_RETURN_IF_ERROR(
          index->Insert(rows_[r][ci], static_cast<RowId>(r)));
    }
    hash_indexes_[column] = std::move(index);
  }
  return util::Status::OK();
}

const BPlusTree* Table::GetBTreeIndex(const std::string& column) const {
  auto it = btree_indexes_.find(column);
  return it == btree_indexes_.end() ? nullptr : it->second.get();
}

const HashIndex* Table::GetHashIndex(const std::string& column) const {
  auto it = hash_indexes_.find(column);
  return it == hash_indexes_.end() ? nullptr : it->second.get();
}

bool Table::HasIndex(const std::string& column) const {
  return btree_indexes_.count(column) > 0 || hash_indexes_.count(column) > 0;
}

util::Result<std::vector<RowId>> Table::IndexLookup(const std::string& column,
                                                    const Value& v) const {
  if (const HashIndex* h = GetHashIndex(column)) return h->Find(v);
  if (const BPlusTree* b = GetBTreeIndex(column)) return b->Find(v);
  return util::Status::NotFound("no index on column " + column);
}

util::Result<std::vector<RowId>> Table::IndexRange(
    const std::string& column, const Value& lo, bool lo_inclusive,
    const Value& hi, bool hi_inclusive) const {
  const BPlusTree* b = GetBTreeIndex(column);
  if (b == nullptr) {
    return util::Status::NotFound("no B+-tree index on column " + column);
  }
  return b->RangeScan(lo, lo_inclusive, hi, hi_inclusive);
}

util::Status Table::Analyze(int histogram_buckets) {
  std::vector<Row> live;
  live.reserve(static_cast<size_t>(live_rows_));
  for (const Row& r : rows_) {
    if (!r.empty()) live.push_back(r);
  }
  DRUGTREE_ASSIGN_OR_RETURN(TableStats stats,
                            TableStats::Analyze(schema_, live,
                                                histogram_buckets));
  stats_ = std::make_unique<TableStats>(std::move(stats));
  stats_version_ = version_;
  ++meta_version_;  // cost estimates derived from stats are now stale
  return util::Status::OK();
}

util::Status Table::BuildEncodedSegments(size_t segment_rows) {
  if (segment_rows == 0) {
    return util::Status::InvalidArgument("segment_rows must be > 0");
  }
  // A rebuild walks every live row anyway, so piggyback a stats refresh
  // when existing stats have gone stale (mutations since the last
  // Analyze — including tombstone-creating deletes, which previously kept
  // being served as fresh). Never-analyzed tables stay that way.
  if (stats_ != nullptr && !stats_fresh()) {
    DRUGTREE_RETURN_IF_ERROR(Analyze());
  }
  std::vector<const Row*> live;
  live.reserve(static_cast<size_t>(live_rows_));
  for (const Row& r : rows_) {
    if (!r.empty()) live.push_back(&r);
  }
  auto snap = std::make_unique<EncodedTableSnapshot>(
      BuildEncodedTableSnapshot(schema_.NumColumns(), live, segment_rows));
  snap->built_version = version_;
  encoded_ = std::move(snap);
  ++meta_version_;  // scan access paths (and their costs) changed
  return util::Status::OK();
}

uint64_t Table::ApproxScanFootprintBytes() const {
  if (const EncodedTableSnapshot* snap = encoded()) {
    return snap->encoded_bytes;
  }
  // Plain estimate, mirroring the executor's per-row accounting: vector
  // header + inline Value slots + string payloads.
  uint64_t bytes = 0;
  for (const Row& r : rows_) {
    if (r.empty()) continue;
    bytes += sizeof(Row) + r.size() * sizeof(Value);
    for (const Value& v : r) {
      if (v.type() == ValueType::kString) bytes += v.AsString().size();
    }
  }
  return bytes;
}

std::vector<RowId> Table::LiveRows() const {
  std::vector<RowId> out;
  out.reserve(static_cast<size_t>(live_rows_));
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (!rows_[r].empty()) out.push_back(static_cast<RowId>(r));
  }
  return out;
}

size_t Table::ScanBatch(RowId* cursor, size_t max_rows, RowBatch* out) const {
  size_t appended = 0;
  size_t r = static_cast<size_t>(*cursor);
  while (r < rows_.size() && appended < max_rows) {
    const Row& row = rows_[r];
    ++r;
    if (row.empty()) continue;  // tombstone
    out->AppendRow(row);
    ++appended;
  }
  *cursor = static_cast<RowId>(r);
  return appended;
}

util::Result<PageId> Table::SaveTo(BufferPool* pool) const {
  DRUGTREE_ASSIGN_OR_RETURN(HeapFile hf, HeapFile::Create(pool));
  for (const Row& r : rows_) {
    if (r.empty()) continue;
    std::string encoded;
    EncodeRow(r, &encoded);
    DRUGTREE_RETURN_IF_ERROR(hf.Insert(encoded).status());
  }
  DRUGTREE_RETURN_IF_ERROR(pool->FlushAll());
  return hf.directory_page();
}

util::Status Table::LoadFrom(BufferPool* pool, PageId directory_page) {
  DRUGTREE_ASSIGN_OR_RETURN(HeapFile hf, HeapFile::Open(pool, directory_page));
  util::Status insert_status;
  DRUGTREE_RETURN_IF_ERROR(hf.Scan(
      [&](const RecordId&, const std::string& rec) -> util::Status {
        size_t offset = 0;
        DRUGTREE_ASSIGN_OR_RETURN(Row row, DecodeRow(rec, &offset));
        DRUGTREE_RETURN_IF_ERROR(Insert(std::move(row)).status());
        return util::Status::OK();
      }));
  return util::Status::OK();
}

}  // namespace storage
}  // namespace drugtree
