#include "storage/schema.h"

#include <unordered_set>

#include "util/string_util.h"

namespace drugtree {
namespace storage {

util::Result<Schema> Schema::Create(std::vector<Column> columns) {
  std::unordered_set<std::string> names;
  for (const auto& c : columns) {
    if (c.name.empty()) {
      return util::Status::InvalidArgument("column name must not be empty");
    }
    if (c.type == ValueType::kNull) {
      return util::Status::InvalidArgument("column '" + c.name +
                                           "' cannot have type NULL");
    }
    if (!names.insert(c.name).second) {
      return util::Status::InvalidArgument("duplicate column name: " + c.name);
    }
  }
  Schema s;
  s.columns_ = std::move(columns);
  return s;
}

util::Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return util::Status::NotFound("no such column: " + name);
}

bool Schema::Has(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

util::Status Schema::CheckRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "row has %zu values but schema has %zu columns", row.size(),
        columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return util::Status::InvalidArgument("NULL in non-nullable column '" +
                                             col.name + "'");
      }
      continue;
    }
    if (v.type() == col.type) continue;
    if (col.type == ValueType::kDouble && v.type() == ValueType::kInt64) {
      continue;  // implicit widening
    }
    return util::Status::InvalidArgument(util::StringPrintf(
        "column '%s' expects %s but row has %s", col.name.c_str(),
        ValueTypeName(col.type), ValueTypeName(v.type())));
  }
  return util::Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ':';
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace storage
}  // namespace drugtree
