// Heap file: unordered record storage over slotted pages, via the buffer
// pool. This is the persistence layer tables serialize to; record ids are
// (page, slot) pairs that secondary indexes can reference.
//
// Slotted-page layout (within the 4 KiB page):
//   [u16 num_slots][u16 free_end] [slot 0: u16 off, u16 len] ... | free | data
// Records grow down from the end of the page; slot entries grow up after the
// header. A deleted record keeps its slot with len == 0 (tombstone).

#ifndef DRUGTREE_STORAGE_HEAP_FILE_H_
#define DRUGTREE_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

/// Stable address of a record in a heap file.
struct RecordId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  bool operator==(const RecordId& o) const {
    return page == o.page && slot == o.slot;
  }
};

class HeapFile {
 public:
  /// Creates a new heap file: allocates a directory page in `pool`'s disk.
  static util::Result<HeapFile> Create(BufferPool* pool);

  /// Reopens a heap file from its directory page.
  static util::Result<HeapFile> Open(BufferPool* pool, PageId directory_page);

  PageId directory_page() const { return directory_page_; }

  /// Inserts a record (max ~4000 bytes), returning its id.
  util::Result<RecordId> Insert(const std::string& record);

  /// Reads a record by id. NotFound for tombstoned or out-of-range ids.
  util::Result<std::string> Get(const RecordId& id);

  /// Tombstones a record.
  util::Status Delete(const RecordId& id);

  /// Calls visit(id, record) for every live record, in page/slot order.
  /// Stops and propagates on the first error.
  util::Status Scan(
      const std::function<util::Status(const RecordId&, const std::string&)>&
          visit);

  /// Number of live records.
  util::Result<int64_t> Count();

 private:
  HeapFile(BufferPool* pool, PageId directory_page)
      : pool_(pool), directory_page_(directory_page) {}

  util::Status LoadDirectory();
  util::Status SaveDirectory();

  BufferPool* pool_;
  PageId directory_page_;
  std::vector<PageId> data_pages_;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_HEAP_FILE_H_
