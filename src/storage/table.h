// Table: the in-memory row store the query engine scans, with optional
// secondary indexes (B+-tree or hash) per column, computed statistics, and
// heap-file persistence.

#ifndef DRUGTREE_STORAGE_TABLE_H_
#define DRUGTREE_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/bptree.h"
#include "storage/encoded_segment.h"
#include "storage/hash_index.h"
#include "storage/heap_file.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/statistics.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

enum class IndexKind { kBTree, kHash };

class Table {
 public:
  /// Creates an empty table.
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) noexcept = default;
  Table& operator=(Table&&) noexcept = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }

  /// Appends a row (validated against the schema; indexes are maintained).
  /// Returns the new row id.
  util::Result<RowId> Insert(Row row);

  /// Row access. Deleted rows are empty (arity 0); FetchRow returns NotFound
  /// for them.
  const Row& row(RowId id) const { return rows_[static_cast<size_t>(id)]; }
  util::Result<Row> FetchRow(RowId id) const;
  bool IsDeleted(RowId id) const {
    return rows_[static_cast<size_t>(id)].empty();
  }
  bool ValidRowId(RowId id) const {
    return id >= 0 && static_cast<size_t>(id) < rows_.size();
  }

  /// Tombstones a row and removes it from all indexes.
  util::Status Delete(RowId id);

  /// Creates a secondary index on `column`. Fails if one already exists on
  /// that column; existing rows are indexed immediately.
  util::Status CreateIndex(const std::string& column, IndexKind kind);

  /// Index accessors (nullptr when the column has no index of that flavor).
  const BPlusTree* GetBTreeIndex(const std::string& column) const;
  const HashIndex* GetHashIndex(const std::string& column) const;
  bool HasIndex(const std::string& column) const;

  /// Row ids matching col = v via an index (btree or hash). Fails if the
  /// column has no index.
  util::Result<std::vector<RowId>> IndexLookup(const std::string& column,
                                               const Value& v) const;

  /// Row ids with lo <= col <= hi via a B+-tree index (bounds may be NULL for
  /// unbounded). Fails if no B+-tree index exists on the column.
  util::Result<std::vector<RowId>> IndexRange(const std::string& column,
                                              const Value& lo,
                                              bool lo_inclusive,
                                              const Value& hi,
                                              bool hi_inclusive) const;

  /// Recomputes table statistics (call after bulk loading).
  util::Status Analyze(int histogram_buckets = 32);

  /// Last computed statistics, or nullptr if Analyze was never run.
  const TableStats* stats() const { return stats_.get(); }

  /// True when stats() reflects the current data — i.e. no Insert/Delete
  /// has happened since the last Analyze(). Consumers needing exact numbers
  /// (the encoding chooser computes its own per-segment profiles and does
  /// NOT depend on this) should check before trusting stats().
  bool stats_fresh() const {
    return stats_ != nullptr && stats_version_ == version_;
  }

  /// Monotonic mutation counter: bumped by every Insert and Delete. Encoded
  /// snapshots and statistics record the version they were built at, which
  /// is how staleness is detected.
  uint64_t version() const { return version_; }

  /// Monotonic counter covering everything a cached *plan* depends on:
  /// bumped by mutations (data + cardinalities change), by Analyze()
  /// (statistics the cost model read change), and by building or dropping
  /// encoded segments (the access paths the planner priced change). The
  /// plan cache captures it per referenced table and re-plans on any bump.
  uint64_t plan_version() const { return version_ + meta_version_; }

  /// Default rows per encoded segment.
  static constexpr size_t kDefaultSegmentRows = 4096;

  /// Builds (or rebuilds) the encoded columnar snapshot of the live rows.
  /// Scans on the vectorized path execute directly on it until the next
  /// mutation invalidates it.
  util::Status BuildEncodedSegments(size_t segment_rows = kDefaultSegmentRows);

  /// Drops the encoded snapshot; scans revert to the plain row path.
  void DropEncodedSegments() {
    if (encoded_ != nullptr) ++meta_version_;
    encoded_.reset();
  }

  /// The encoded snapshot when one exists AND is current, else nullptr.
  /// Any Insert/Delete after BuildEncodedSegments() makes this return
  /// nullptr (automatic fallback to the exact plain path); call
  /// BuildEncodedSegments() again after bulk mutations to re-enable.
  const EncodedTableSnapshot* encoded() const {
    return encoded_ != nullptr && encoded_->built_version == version_
               ? encoded_.get()
               : nullptr;
  }

  /// Resident bytes of the representation scans read: the encoded snapshot
  /// when fresh, else an estimate of the live rows. The serving layer
  /// charges this against its memory tracker, so compression directly
  /// widens the admission headroom under the high watermark.
  uint64_t ApproxScanFootprintBytes() const;

  /// Live (non-deleted) row ids in insertion order.
  std::vector<RowId> LiveRows() const;

  /// Columnar scan: appends up to `max_rows` live rows starting at `*cursor`
  /// to `out` (which must already be Reset to this table's arity), advancing
  /// `*cursor` past every row examined. Returns the number of rows appended;
  /// 0 with `*cursor == NumRows()` signals end of table. The batch is dense
  /// (no selection); row order matches a row-at-a-time scan exactly.
  size_t ScanBatch(RowId* cursor, size_t max_rows, RowBatch* out) const;

  /// Persists all live rows into a heap file; returns the directory page so
  /// the table can be reloaded later.
  util::Result<PageId> SaveTo(BufferPool* pool) const;

  /// Loads rows from a heap file written by SaveTo (appending to this table).
  util::Status LoadFrom(BufferPool* pool, PageId directory_page);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  int64_t live_rows_ = 0;
  std::map<std::string, std::unique_ptr<BPlusTree>> btree_indexes_;
  std::map<std::string, std::unique_ptr<HashIndex>> hash_indexes_;
  std::unique_ptr<TableStats> stats_;
  std::unique_ptr<EncodedTableSnapshot> encoded_;
  uint64_t version_ = 0;
  uint64_t stats_version_ = 0;
  /// Non-mutation plan dependencies: Analyze + encoded build/drop bumps.
  uint64_t meta_version_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_TABLE_H_
