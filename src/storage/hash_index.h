// Hash index: O(1) point lookups, no range support — the comparison point
// for the B+-tree in experiment E8, and the default index for equality-only
// columns (accession ids, ligand ids).

#ifndef DRUGTREE_STORAGE_HASH_INDEX_H_
#define DRUGTREE_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/bptree.h"
#include "storage/value.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

class HashIndex {
 public:
  HashIndex() = default;

  /// Inserts (key, row); the exact pair must not already exist.
  util::Status Insert(const Value& key, RowId row);

  /// Removes the exact (key, row) pair; NotFound if absent.
  util::Status Erase(const Value& key, RowId row);

  /// All row ids with this key, ascending.
  std::vector<RowId> Find(const Value& key) const;

  bool Contains(const Value& key) const { return map_.count(key) > 0; }

  size_t size() const { return size_; }

  /// Number of distinct keys.
  size_t NumKeys() const { return map_.size(); }

 private:
  std::unordered_map<Value, std::vector<RowId>> map_;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_HASH_INDEX_H_
