// Bloom filter over Value keys. The integration layer consults per-source
// blooms to avoid round trips for ids a source cannot have.

#ifndef DRUGTREE_STORAGE_BLOOM_H_
#define DRUGTREE_STORAGE_BLOOM_H_

#include <cstdint>
#include <vector>

#include "storage/value.h"

namespace drugtree {
namespace storage {

class BloomFilter {
 public:
  /// Sized for `expected_items` at `bits_per_key` bits each (RocksDB-style
  /// parameterization; 10 bits/key gives ~1% false positives).
  BloomFilter(size_t expected_items, int bits_per_key = 10);

  void Add(const Value& v);
  /// True if possibly present; false means definitely absent.
  bool MayContain(const Value& v) const;

  size_t num_bits() const { return bits_.size() * 64; }
  int num_hashes() const { return num_hashes_; }
  size_t items_added() const { return items_; }

  /// Measured false-positive estimate from the filter's fill factor.
  double EstimatedFalsePositiveRate() const;

 private:
  std::vector<uint64_t> bits_;
  int num_hashes_;
  size_t items_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_BLOOM_H_
