// Table statistics for the cost-based optimizer: row counts, per-column
// min/max, distinct-value counts, null fractions, and equi-depth histograms
// for range-selectivity estimation.

#ifndef DRUGTREE_STORAGE_STATISTICS_H_
#define DRUGTREE_STORAGE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

/// Statistics for one column.
class ColumnStats {
 public:
  int64_t num_rows() const { return num_rows_; }
  int64_t num_nulls() const { return num_nulls_; }
  int64_t num_distinct() const { return num_distinct_; }
  const Value& min() const { return min_; }
  const Value& max() const { return max_; }

  /// Maximal runs of equal consecutive values (nulls form runs too) over
  /// the live rows in scan order, and the implied average run length.
  /// The encoding chooser's cost model keys off these (long runs -> RLE,
  /// low distinct count -> dictionary).
  int64_t num_runs() const { return num_runs_; }
  double avg_run_length() const {
    return num_runs_ > 0
               ? static_cast<double>(num_rows_) /
                     static_cast<double>(num_runs_)
               : 0.0;
  }

  double NullFraction() const {
    return num_rows_ ? static_cast<double>(num_nulls_) /
                           static_cast<double>(num_rows_)
                     : 0.0;
  }

  /// Estimated selectivity of `col = v` in [0, 1].
  double EqualitySelectivity(const Value& v) const;

  /// Estimated selectivity of lo <= col <= hi (either bound may be NULL for
  /// unbounded) using the equi-depth histogram when the column is numeric.
  double RangeSelectivity(const Value& lo, bool lo_inclusive, const Value& hi,
                          bool hi_inclusive) const;

 private:
  friend class TableStats;

  int64_t num_rows_ = 0;
  int64_t num_nulls_ = 0;
  int64_t num_distinct_ = 0;
  int64_t num_runs_ = 0;
  Value min_;
  Value max_;
  // Equi-depth histogram over numeric columns: boundaries_[i] is the upper
  // edge of bucket i; each bucket holds ~num_non_null/buckets rows.
  std::vector<double> boundaries_;
};

/// Statistics for a whole table, computed in one pass by Analyze().
class TableStats {
 public:
  TableStats() = default;

  /// Computes stats over `rows` conforming to `schema`.
  /// `histogram_buckets` controls range-estimate resolution.
  static util::Result<TableStats> Analyze(const Schema& schema,
                                          const std::vector<Row>& rows,
                                          int histogram_buckets = 32);

  int64_t num_rows() const { return num_rows_; }
  const ColumnStats& column(size_t i) const { return columns_[i]; }
  size_t NumColumns() const { return columns_.size(); }

 private:
  int64_t num_rows_ = 0;
  std::vector<ColumnStats> columns_;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_STATISTICS_H_
