#include "storage/value.h"

#include <cmath>
#include <cstring>

#include "util/string_util.h"

namespace drugtree {
namespace storage {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return "BOOL";
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kBool;
    case 2: return ValueType::kInt64;
    case 3: return ValueType::kDouble;
    case 4: return ValueType::kString;
  }
  return ValueType::kNull;
}

util::Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return util::Status::InvalidArgument(
          std::string("value is not numeric: ") + ValueTypeName(type()));
  }
}

int Value::Compare(const Value& other) const {
  ValueType ta = type(), tb = other.type();
  // NULL sorts first.
  if (ta == ValueType::kNull || tb == ValueType::kNull) {
    if (ta == tb) return 0;
    return ta == ValueType::kNull ? -1 : 1;
  }
  // Numeric cross-type comparison.
  bool num_a = ta == ValueType::kInt64 || ta == ValueType::kDouble;
  bool num_b = tb == ValueType::kInt64 || tb == ValueType::kDouble;
  if (num_a && num_b) {
    if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ta == ValueType::kInt64 ? static_cast<double>(AsInt64())
                                       : AsDouble();
    double b = tb == ValueType::kInt64 ? static_cast<double>(other.AsInt64())
                                       : other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (ta != tb) {
    return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  }
  switch (ta) {
    case ValueType::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a ? 1 : -1);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
    default:
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case ValueType::kBool:
      return AsBool() ? 0x517CC1B727220A95ULL : 0x2545F4914F6CDD1DULL;
    case ValueType::kInt64: {
      uint64_t x = static_cast<uint64_t>(AsInt64());
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDULL;
      x ^= x >> 33;
      return x;
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      // Integral doubles hash like the equivalent Int64 so == and Hash agree.
      if (d == std::floor(d) && std::abs(d) < 9.0e18) {
        return Value::Int64(static_cast<int64_t>(d)).Hash();
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      bits ^= bits >> 29;
      bits *= 0xBF58476D1CE4E5B9ULL;
      return bits;
    }
    case ValueType::kString:
      return util::Fnv1a64(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return util::StringPrintf("%lld", (long long)AsInt64());
    case ValueType::kDouble:
      return util::StringPrintf("%g", AsDouble());
    case ValueType::kString: return AsString();
  }
  return "?";
}

namespace {

void AppendFixed64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

util::Result<uint64_t> ReadFixed64(const std::string& data, size_t* offset) {
  if (*offset + 8 > data.size()) {
    return util::Status::ParseError("value decode: truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= uint64_t(uint8_t(data[*offset + static_cast<size_t>(i)])) << (8 * i);
  }
  *offset += 8;
  return v;
}

}  // namespace

void Value::EncodeTo(std::string* out) const {
  out->push_back(char(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      AppendFixed64(static_cast<uint64_t>(AsInt64()), out);
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      double d = AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendFixed64(bits, out);
      break;
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      AppendFixed64(s.size(), out);
      out->append(s);
      break;
    }
  }
}

util::Result<Value> Value::DecodeFrom(const std::string& data, size_t* offset) {
  if (*offset >= data.size()) {
    return util::Status::ParseError("value decode: missing type tag");
  }
  ValueType t = static_cast<ValueType>(data[(*offset)++]);
  switch (t) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      if (*offset >= data.size()) {
        return util::Status::ParseError("value decode: truncated bool");
      }
      return Value::Bool(data[(*offset)++] != 0);
    }
    case ValueType::kInt64: {
      DRUGTREE_ASSIGN_OR_RETURN(uint64_t v, ReadFixed64(data, offset));
      return Value::Int64(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      DRUGTREE_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64(data, offset));
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case ValueType::kString: {
      DRUGTREE_ASSIGN_OR_RETURN(uint64_t len, ReadFixed64(data, offset));
      if (*offset + len > data.size()) {
        return util::Status::ParseError("value decode: truncated string");
      }
      std::string s = data.substr(*offset, len);
      *offset += len;
      return Value::String(std::move(s));
    }
    default:
      return util::Status::ParseError("value decode: bad type tag");
  }
}

void EncodeRow(const Row& row, std::string* out) {
  AppendFixed64(row.size(), out);
  for (const Value& v : row) v.EncodeTo(out);
}

util::Result<Row> DecodeRow(const std::string& data, size_t* offset) {
  DRUGTREE_ASSIGN_OR_RETURN(uint64_t count, ReadFixed64(data, offset));
  if (count > 1'000'000) {
    return util::Status::ParseError("row decode: implausible column count");
  }
  Row row;
  row.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DRUGTREE_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(data, offset));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace storage
}  // namespace drugtree
