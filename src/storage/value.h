// Typed values and rows — the tuple currency of the storage engine and the
// query executor.

#ifndef DRUGTREE_STORAGE_VALUE_H_
#define DRUGTREE_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace drugtree {
namespace storage {

/// The SQL-ish type system of the engine.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeName(ValueType t);

/// A dynamically typed value. NULL compares less than everything and equals
/// only NULL (ordering semantics, used by indexes; SQL three-valued logic is
/// handled one level up in the expression evaluator).
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error (checked
  /// by assert in debug builds via std::get).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: Int64 and Double both convert; fails otherwise.
  util::Result<double> ToNumeric() const;

  /// Total order across values. Values of different non-null types order by
  /// type id, except Int64/Double which compare numerically.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Stable hash consistent with operator== (Int64 42 and Double 42.0 hash
  /// identically).
  uint64_t Hash() const;

  /// Display form ("NULL", "42", "3.14", "abc").
  std::string ToString() const;

  /// Binary serialization (type tag + payload) appended to `out`.
  void EncodeTo(std::string* out) const;

  /// Decodes one value from data[*offset...], advancing *offset.
  static util::Result<Value> DecodeFrom(const std::string& data, size_t* offset);

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// A tuple of values.
using Row = std::vector<Value>;

/// Encodes a row (count + values).
void EncodeRow(const Row& row, std::string* out);

/// Decodes a row encoded by EncodeRow.
util::Result<Row> DecodeRow(const std::string& data, size_t* offset);

}  // namespace storage
}  // namespace drugtree

namespace std {
template <>
struct hash<drugtree::storage::Value> {
  size_t operator()(const drugtree::storage::Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
}  // namespace std

#endif  // DRUGTREE_STORAGE_VALUE_H_
