// Columnar execution batches: ColumnVector (one typed column with a null
// bitmap) and RowBatch (a set of columns plus an optional selection vector).
// These are the unit of data flow in the vectorized execution engine; the
// row-at-a-time Row/Value currency stays the storage and result format, and
// conversion in both directions is exact (a batch round-trips every Value
// bit-identically, including the Int64-vs-Double distinction per cell).
//
// Layout rules:
//  - A ColumnVector starts untyped (kNull). The first non-null append fixes
//    its type; appending a differently typed value afterwards demotes the
//    column to a "mixed" representation (std::vector<Value>) that is always
//    correct but skips the typed fast paths. Table columns are homogeneous
//    in practice, so mixed columns only appear for expression outputs that
//    genuinely mix types.
//  - Nulls are tracked in a word-packed bitmap regardless of representation;
//    typed payload slots for null rows hold zero values.
//  - A RowBatch's selection vector holds *physical* row indices in
//    ascending emission order. Logical row i of the batch is physical row
//    sel[i] (or i when no selection is installed). Filters refine batches by
//    installing/shrinking the selection instead of copying column data.

#ifndef DRUGTREE_STORAGE_ROW_BATCH_H_
#define DRUGTREE_STORAGE_ROW_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace drugtree {
namespace storage {

class ColumnVector {
 public:
  ColumnVector() = default;

  /// Declared element type. kNull until the first non-null append (or for
  /// an all-null column); meaningless when mixed().
  ValueType type() const { return type_; }
  /// True once the column holds values of more than one non-null type.
  bool mixed() const { return mixed_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear();
  void Reserve(size_t n);

  /// Generic append; dispatches on the value's runtime type.
  void Append(const Value& v);
  void Append(Value&& v);
  void AppendNull();

  // Typed appends: inline fast path when the column is already in the
  // matching typed representation (the steady state of every vectorized
  // kernel loop); first-append type fixing and demotion take the generic
  // path. Skipping the per-cell Value round trip here is what makes the
  // batch kernels' emit loops cheap.
  void AppendBool(bool v) {
    if (!mixed_ && type_ == ValueType::kBool) {
      EnsureNullCapacity(size_ + 1);
      bools_.push_back(v ? 1 : 0);
      ++size_;
    } else {
      Append(Value::Bool(v));
    }
  }
  void AppendInt64(int64_t v) {
    if (!mixed_ && type_ == ValueType::kInt64) {
      EnsureNullCapacity(size_ + 1);
      ints_.push_back(v);
      ++size_;
    } else {
      Append(Value::Int64(v));
    }
  }
  void AppendDouble(double v) {
    if (!mixed_ && type_ == ValueType::kDouble) {
      EnsureNullCapacity(size_ + 1);
      doubles_.push_back(v);
      ++size_;
    } else {
      Append(Value::Double(v));
    }
  }
  void AppendString(std::string v) {
    if (!mixed_ && type_ == ValueType::kString) {
      EnsureNullCapacity(size_ + 1);
      strings_.push_back(std::move(v));
      ++size_;
    } else {
      Append(Value::String(std::move(v)));
    }
  }

  bool IsNull(size_t i) const {
    return (null_words_[i >> 6] >> (i & 63)) & 1;
  }
  /// True iff no row of the column is null (cheap word-wise scan).
  bool NoNulls() const;

  /// Typed accessors; only valid for non-null rows of a non-mixed column of
  /// the matching type.
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Materializes row i as a Value (exact, any representation).
  Value GetValue(size_t i) const;

  /// Appends `n` copies of `v` with one representation dispatch (the RLE
  /// decode path appends a whole run per call).
  void AppendRepeated(const Value& v, size_t n);

  /// Bulk-appends src[idx[0..n)] into this column (which must be empty),
  /// adopting src's representation. The typed fast path copies payload
  /// slots directly instead of round-tripping each cell through Value.
  void GatherFrom(const ColumnVector& src, const uint32_t* idx, size_t n);

  /// Estimated resident bytes of this column (payload + null bitmap).
  /// Typed numeric columns are O(1); string/mixed columns walk their
  /// payloads — only call on accounting paths (a memory tracker is
  /// installed), never per cell.
  uint64_t ApproxBytes() const;

 private:
  void SetNullBit(size_t i) {
    null_words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void EnsureNullCapacity(size_t n) {
    size_t words = (n + 63) / 64;
    if (null_words_.size() < words) null_words_.resize(words, 0);
  }
  /// Migrates the typed representation to the mixed fallback.
  void Demote();
  /// Appends a payload slot for row `size_` in the current representation.
  void AppendTypedPayload(const Value& v);

  ValueType type_ = ValueType::kNull;
  bool mixed_ = false;
  size_t size_ = 0;
  std::vector<uint64_t> null_words_;  // bit i set => row i is NULL

  // Exactly one of these is populated, per type_ / mixed_.
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;  // mixed fallback
};

class RowBatch {
 public:
  RowBatch() = default;

  /// Clears all rows and the selection, (re)sizing to `num_columns` columns.
  void Reset(size_t num_columns);

  size_t num_columns() const { return columns_.size(); }
  /// Logical row count: selection size when installed, else physical rows.
  size_t size() const { return sel_active_ ? sel_.size() : num_rows_; }
  bool empty() const { return size() == 0; }
  /// Rows physically stored in the columns (ignores the selection).
  size_t physical_size() const { return num_rows_; }

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }

  bool has_selection() const { return sel_active_; }
  const std::vector<uint32_t>& selection() const { return sel_; }
  /// Installs a selection (physical indices, ascending). Replaces any
  /// existing selection; callers refining an existing one must compose
  /// indices themselves (EvalPredicateBatch does).
  void SetSelection(std::vector<uint32_t> sel);
  void ClearSelection();

  /// Physical index of logical row i.
  size_t PhysicalIndex(size_t i) const { return sel_active_ ? sel_[i] : i; }

  /// Appends one row across all columns (physical append; must match
  /// num_columns). Invalid while a selection is installed.
  void AppendRow(const Row& row);
  void AppendRow(Row&& row);
  /// Bumps the physical row count after appending directly to columns.
  void FinishAppendedRows();

  /// Materializes logical row i.
  Row RowAt(size_t i) const;
  /// Appends all logical rows to `out` (the executor's batch -> result
  /// conversion).
  void EmitRowsTo(std::vector<Row>* out) const;

  /// Estimated resident bytes across all columns plus the selection vector
  /// (see ColumnVector::ApproxBytes for cost).
  uint64_t ApproxBytes() const;

 private:
  std::vector<ColumnVector> columns_;
  std::vector<uint32_t> sel_;
  bool sel_active_ = false;
  size_t num_rows_ = 0;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_ROW_BATCH_H_
