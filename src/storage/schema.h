// Table schemas: named, typed, optionally nullable columns.

#ifndef DRUGTREE_STORAGE_SCHEMA_H_
#define DRUGTREE_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;
};

/// An ordered list of uniquely named columns.
class Schema {
 public:
  Schema() = default;

  /// Validates column-name uniqueness and non-empty names.
  static util::Result<Schema> Create(std::vector<Column> columns);

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name, or error.
  util::Result<size_t> IndexOf(const std::string& name) const;

  /// True iff a column with this name exists.
  bool Has(const std::string& name) const;

  /// Checks that `row` conforms: arity, per-column type (NULL allowed when
  /// nullable; Int64 is accepted where Double is declared).
  util::Status CheckRow(const Row& row) const;

  /// "name:TYPE, name:TYPE, ..." display form.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_SCHEMA_H_
