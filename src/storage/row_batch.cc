#include "storage/row_batch.h"

#include "util/logging.h"

namespace drugtree {
namespace storage {

void ColumnVector::Clear() {
  type_ = ValueType::kNull;
  mixed_ = false;
  size_ = 0;
  null_words_.clear();
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  values_.clear();
}

void ColumnVector::Reserve(size_t n) {
  null_words_.reserve((n + 63) / 64);
  switch (type_) {
    case ValueType::kBool: bools_.reserve(n); break;
    case ValueType::kInt64: ints_.reserve(n); break;
    case ValueType::kDouble: doubles_.reserve(n); break;
    case ValueType::kString: strings_.reserve(n); break;
    case ValueType::kNull: break;
  }
  if (mixed_) values_.reserve(n);
}

bool ColumnVector::NoNulls() const {
  size_t full_words = size_ / 64;
  for (size_t w = 0; w < full_words; ++w) {
    if (null_words_[w] != 0) return false;
  }
  size_t tail = size_ & 63;
  if (tail != 0 && full_words < null_words_.size()) {
    uint64_t mask = (uint64_t{1} << tail) - 1;
    if ((null_words_[full_words] & mask) != 0) return false;
  }
  return true;
}

void ColumnVector::Demote() {
  DT_CHECK(!mixed_);
  values_.clear();
  values_.reserve(size_ + 1);
  for (size_t i = 0; i < size_; ++i) values_.push_back(GetValue(i));
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  mixed_ = true;
}

void ColumnVector::AppendTypedPayload(const Value& v) {
  switch (type_) {
    case ValueType::kBool: bools_.push_back(v.AsBool() ? 1 : 0); break;
    case ValueType::kInt64: ints_.push_back(v.AsInt64()); break;
    case ValueType::kDouble: doubles_.push_back(v.AsDouble()); break;
    case ValueType::kString: strings_.push_back(v.AsString()); break;
    case ValueType::kNull: break;
  }
}

void ColumnVector::AppendNull() {
  EnsureNullCapacity(size_ + 1);
  SetNullBit(size_);
  if (mixed_) {
    values_.push_back(Value::Null());
  } else {
    // Placeholder payload so typed arrays stay index-aligned with rows.
    switch (type_) {
      case ValueType::kBool: bools_.push_back(0); break;
      case ValueType::kInt64: ints_.push_back(0); break;
      case ValueType::kDouble: doubles_.push_back(0.0); break;
      case ValueType::kString: strings_.emplace_back(); break;
      case ValueType::kNull: break;
    }
  }
  ++size_;
}

void ColumnVector::Append(const Value& v) {
  ValueType t = v.type();
  if (t == ValueType::kNull) {
    AppendNull();
    return;
  }
  if (mixed_) {
    EnsureNullCapacity(size_ + 1);
    values_.push_back(v);
    ++size_;
    return;
  }
  if (type_ == ValueType::kNull) {
    // First non-null value fixes the type; backfill placeholder slots for
    // any leading nulls.
    type_ = t;
    switch (type_) {
      case ValueType::kBool: bools_.assign(size_, 0); break;
      case ValueType::kInt64: ints_.assign(size_, 0); break;
      case ValueType::kDouble: doubles_.assign(size_, 0.0); break;
      case ValueType::kString: strings_.assign(size_, std::string()); break;
      case ValueType::kNull: break;
    }
  } else if (t != type_) {
    Demote();
    EnsureNullCapacity(size_ + 1);
    values_.push_back(v);
    ++size_;
    return;
  }
  EnsureNullCapacity(size_ + 1);
  AppendTypedPayload(v);
  ++size_;
}

void ColumnVector::Append(Value&& v) {
  // Moving only matters for strings; route them specially, forward the rest.
  if (v.type() == ValueType::kString && !mixed_ &&
      (type_ == ValueType::kString || type_ == ValueType::kNull)) {
    // Const-cast-free move: take the string out via the mixed-safe path.
    if (type_ == ValueType::kNull) {
      type_ = ValueType::kString;
      strings_.assign(size_, std::string());
    }
    EnsureNullCapacity(size_ + 1);
    strings_.push_back(std::move(const_cast<std::string&>(v.AsString())));
    ++size_;
    return;
  }
  if (mixed_ && v.type() != ValueType::kNull) {
    EnsureNullCapacity(size_ + 1);
    values_.push_back(std::move(v));
    ++size_;
    return;
  }
  Append(static_cast<const Value&>(v));
}

void ColumnVector::AppendRepeated(const Value& v, size_t n) {
  if (n == 0) return;
  ValueType t = v.type();
  if (t == ValueType::kNull) {
    for (size_t i = 0; i < n; ++i) AppendNull();
    return;
  }
  Append(v);  // fixes the type / demotes exactly like n single appends
  if (!mixed_ && type_ == t) {
    EnsureNullCapacity(size_ + n - 1);
    switch (t) {
      case ValueType::kBool:
        bools_.insert(bools_.end(), n - 1, v.AsBool() ? 1 : 0);
        break;
      case ValueType::kInt64:
        ints_.insert(ints_.end(), n - 1, v.AsInt64());
        break;
      case ValueType::kDouble:
        doubles_.insert(doubles_.end(), n - 1, v.AsDouble());
        break;
      case ValueType::kString:
        strings_.insert(strings_.end(), n - 1, v.AsString());
        break;
      case ValueType::kNull:
        break;
    }
    size_ += n - 1;
  } else {
    for (size_t i = 1; i < n; ++i) Append(v);
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (mixed_) return values_[i];
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kBool: return Value::Bool(bools_[i] != 0);
    case ValueType::kInt64: return Value::Int64(ints_[i]);
    case ValueType::kDouble: return Value::Double(doubles_[i]);
    case ValueType::kString: return Value::String(strings_[i]);
    case ValueType::kNull: return Value::Null();
  }
  return Value::Null();
}

void ColumnVector::GatherFrom(const ColumnVector& src, const uint32_t* idx,
                              size_t n) {
  DT_CHECK(size_ == 0);
  if (src.mixed_) {
    Reserve(n);
    for (size_t i = 0; i < n; ++i) Append(src.values_[idx[i]]);
    return;
  }
  type_ = src.type_;
  EnsureNullCapacity(n);
  switch (type_) {
    case ValueType::kBool:
      bools_.resize(n);
      for (size_t i = 0; i < n; ++i) bools_[i] = src.bools_[idx[i]];
      break;
    case ValueType::kInt64:
      ints_.resize(n);
      for (size_t i = 0; i < n; ++i) ints_[i] = src.ints_[idx[i]];
      break;
    case ValueType::kDouble:
      doubles_.resize(n);
      for (size_t i = 0; i < n; ++i) doubles_[i] = src.doubles_[idx[i]];
      break;
    case ValueType::kString:
      strings_.reserve(n);
      for (size_t i = 0; i < n; ++i) strings_.push_back(src.strings_[idx[i]]);
      break;
    case ValueType::kNull:
      break;
  }
  size_ = n;
  if (type_ == ValueType::kNull) {
    // Untyped source: every row is null.
    for (size_t i = 0; i < n; ++i) SetNullBit(i);
  } else if (!src.NoNulls()) {
    for (size_t i = 0; i < n; ++i) {
      if (src.IsNull(idx[i])) SetNullBit(i);
    }
  }
}

// -------------------------------------------------------------------------

void RowBatch::Reset(size_t num_columns) {
  if (columns_.size() != num_columns) columns_.resize(num_columns);
  for (auto& c : columns_) c.Clear();
  sel_.clear();
  sel_active_ = false;
  num_rows_ = 0;
}

void RowBatch::SetSelection(std::vector<uint32_t> sel) {
  sel_ = std::move(sel);
  sel_active_ = true;
}

void RowBatch::ClearSelection() {
  sel_.clear();
  sel_active_ = false;
}

void RowBatch::AppendRow(const Row& row) {
  DT_CHECK(!sel_active_);
  DT_CHECK(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Append(row[c]);
  ++num_rows_;
}

void RowBatch::AppendRow(Row&& row) {
  DT_CHECK(!sel_active_);
  DT_CHECK(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].Append(std::move(row[c]));
  }
  ++num_rows_;
}

void RowBatch::FinishAppendedRows() {
  size_t n = columns_.empty() ? 0 : columns_[0].size();
  for (const auto& c : columns_) DT_CHECK(c.size() == n);
  num_rows_ = n;
}

Row RowBatch::RowAt(size_t i) const {
  size_t p = PhysicalIndex(i);
  Row row;
  row.reserve(columns_.size());
  for (const auto& c : columns_) row.push_back(c.GetValue(p));
  return row;
}

void RowBatch::EmitRowsTo(std::vector<Row>* out) const {
  // Deliberately no reserve(): an exact-size reserve per batch would defeat
  // push_back's geometric growth and turn repeated emission quadratic.
  size_t n = size();
  if (n == 0) return;
  size_t base = out->size();
  size_t cols = columns_.size();
  for (size_t i = 0; i < n; ++i) out->emplace_back(cols);
  // Column-major fill: one representation dispatch per column, not per cell.
  for (size_t c = 0; c < cols; ++c) {
    const ColumnVector& col = columns_[c];
    if (!col.mixed() && col.NoNulls()) {
      switch (col.type()) {
        case ValueType::kInt64:
          for (size_t i = 0; i < n; ++i) {
            (*out)[base + i][c] = Value::Int64(col.Int64At(PhysicalIndex(i)));
          }
          continue;
        case ValueType::kDouble:
          for (size_t i = 0; i < n; ++i) {
            (*out)[base + i][c] = Value::Double(col.DoubleAt(PhysicalIndex(i)));
          }
          continue;
        case ValueType::kString:
          for (size_t i = 0; i < n; ++i) {
            (*out)[base + i][c] = Value::String(col.StringAt(PhysicalIndex(i)));
          }
          continue;
        default:
          break;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      (*out)[base + i][c] = col.GetValue(PhysicalIndex(i));
    }
  }
}

uint64_t ColumnVector::ApproxBytes() const {
  uint64_t bytes = sizeof(ColumnVector) + null_words_.size() * 8;
  bytes += bools_.size();
  bytes += ints_.size() * 8;
  bytes += doubles_.size() * 8;
  for (const auto& s : strings_) bytes += sizeof(std::string) + s.size();
  for (const auto& v : values_) {
    bytes += 16;
    if (v.type() == ValueType::kString) bytes += v.AsString().size();
  }
  return bytes;
}

uint64_t RowBatch::ApproxBytes() const {
  uint64_t bytes = sizeof(RowBatch) + sel_.size() * sizeof(uint32_t);
  for (const auto& c : columns_) bytes += c.ApproxBytes();
  return bytes;
}

}  // namespace storage
}  // namespace drugtree
