// Compressed columnar segments with direct encoded execution.
//
// A table's live rows can be snapshotted into fixed-size segments whose
// columns are stored in one of four encodings, chosen per segment-column by
// exact mini-statistics (distinct count, run structure, integer value range):
//
//   * kDictionary       — sorted distinct values + bit-packed codes. The sort
//                         order is Value::Compare's total order, so the codes
//                         are order-preserving: any comparison predicate
//                         translates to a code-range test after ONE binary
//                         search of the literal (O(log ndv) Value compares,
//                         then pure integer compares per row).
//   * kRunLength        — run values + run start offsets. Predicates are
//                         evaluated once per RUN, not once per row; decode
//                         appends a run in one representation dispatch.
//   * kFrameOfReference — Int64 columns stored as a base plus bit-packed
//                         unsigned deltas (nulls hold delta 0 under the null
//                         bitmap).
//   * kPlain            — a ColumnVector copy; the identity fallback that
//                         keeps every segment scannable even when nothing
//                         compresses.
//
// Exactness contract: every encoded kernel (ValueAt / GatherInto /
// FilterCompare) produces bit-identical results to decoding the column into
// a ColumnVector and running the row-at-a-time path. FilterCompare
// implements exactly the executor's comparison semantics (null operands
// never match; otherwise CompareOp over Value::Compare's total order,
// including Int64/Double cross-type numeric comparison), so a scan may
// execute conjunctions of (column cmp literal) clauses directly on the
// encoded form without consulting the expression evaluator.

#ifndef DRUGTREE_STORAGE_ENCODED_SEGMENT_H_
#define DRUGTREE_STORAGE_ENCODED_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/result.h"

namespace drugtree {
namespace storage {

enum class ColumnEncoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
  kRunLength = 2,
  kFrameOfReference = 3,
};

const char* ColumnEncodingName(ColumnEncoding e);  // "plain"/"dict"/"rle"/"for"

/// Storage-level comparison operators (the query layer translates its
/// BinaryOp comparisons into these so the dependency arrow stays
/// query -> storage).
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// True iff `cmp` (a Value::Compare result for lhs vs rhs) satisfies `op`.
inline bool CompareMatches(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

/// Fixed-width bit-packed array of unsigned values (0..64 bits each).
/// Width 0 means every element is zero and no words are stored.
class BitPackedArray {
 public:
  BitPackedArray() = default;

  /// Packs `values` at `bits` per element; every value must fit in `bits`.
  static BitPackedArray Pack(const std::vector<uint64_t>& values, int bits);

  uint64_t Get(size_t i) const {
    if (bits_ == 0) return 0;
    size_t off = i * static_cast<size_t>(bits_);
    size_t w = off >> 6;
    int shift = static_cast<int>(off & 63);
    uint64_t v = words_[w] >> shift;
    if (shift + bits_ > 64) v |= words_[w + 1] << (64 - shift);
    return v & mask_;
  }

  size_t size() const { return size_; }
  int bits() const { return bits_; }
  uint64_t ByteSize() const { return words_.size() * 8; }

  /// Bits needed to represent `max_value` (0 for 0).
  static int BitsFor(uint64_t max_value);

 private:
  int bits_ = 0;
  size_t size_ = 0;
  uint64_t mask_ = 0;
  std::vector<uint64_t> words_;
};

/// One encoded column of one segment. Immutable after Encode().
class EncodedColumn {
 public:
  EncodedColumn() = default;

  /// Encodes `src` with the cheapest eligible encoding (ChooseEncoding).
  static EncodedColumn Encode(const ColumnVector& src);

  /// Encodes `src` with a specific encoding; the caller must have checked
  /// Eligible(). Exposed for tests and benchmarks.
  static EncodedColumn EncodeWith(const ColumnVector& src, ColumnEncoding e);

  /// Whether `src` can be represented losslessly under `e`.
  static bool Eligible(const ColumnVector& src, ColumnEncoding e);

  /// The encoding the cost model would pick for `src`: the smallest
  /// estimated resident footprint among eligible encodings (ties prefer
  /// run-length, then dictionary, then frame-of-reference — the cheaper
  /// execution kernels).
  static ColumnEncoding ChooseEncoding(const ColumnVector& src);

  ColumnEncoding encoding() const { return encoding_; }
  size_t size() const { return size_; }

  bool IsNull(size_t i) const;
  /// Materializes row i (exact).
  Value ValueAt(size_t i) const;

  /// Appends rows idx[0..n) (ascending local indices) to `out`. Unlike
  /// ColumnVector::GatherFrom, `out` need not be empty, so one output batch
  /// can span segment boundaries.
  void GatherInto(const uint32_t* idx, size_t n, ColumnVector* out) const;

  /// Appends every row to `out` (RLE decodes a run per dispatch).
  void DecodeInto(ColumnVector* out) const;

  /// Appends to `out` the ascending local row indices where
  /// `row op literal` holds, restricted to `candidates` when non-null
  /// (ascending local indices). Exact executor comparison semantics: null
  /// rows never match and a null literal matches nothing.
  void FilterCompare(CompareOp op, const Value& literal,
                     const std::vector<uint32_t>* candidates,
                     std::vector<uint32_t>* out) const;

  /// Estimated resident bytes of the encoded form / of the plain
  /// ColumnVector it replaced (ColumnVector::ApproxBytes conventions).
  uint64_t EncodedBytes() const { return encoded_bytes_; }
  uint64_t PlainBytes() const { return plain_bytes_; }

  /// Dictionary size (kDictionary only; 0 otherwise).
  size_t DictionarySize() const { return dict_.size(); }
  /// Run count (kRunLength only; 0 otherwise).
  size_t RunCount() const { return run_values_.size(); }

 private:
  void FinishBytes(const ColumnVector& src);

  ColumnEncoding encoding_ = ColumnEncoding::kPlain;
  size_t size_ = 0;
  uint64_t encoded_bytes_ = 0;
  uint64_t plain_bytes_ = 0;

  // Null bitmap (dictionary / frame-of-reference; plain keeps its own and
  // run-length encodes nulls as null-valued runs).
  bool has_nulls_ = false;
  std::vector<uint64_t> null_words_;

  // kDictionary: distinct non-null values in Value::Compare order; codes_
  // holds each row's dictionary index (0 for null rows, masked by the
  // bitmap).
  std::vector<Value> dict_;
  BitPackedArray codes_;

  // kRunLength: runs_starts_[r] .. run_starts_[r+1]-1 hold run_values_[r];
  // run_starts_ has RunCount()+1 entries, the last one == size().
  std::vector<Value> run_values_;
  std::vector<uint32_t> run_starts_;

  // kFrameOfReference: row i = for_base_ + for_deltas_.Get(i) (non-null
  // rows; null rows store delta 0).
  int64_t for_base_ = 0;
  BitPackedArray for_deltas_;

  // kPlain.
  ColumnVector plain_;
};

/// One horizontal slice of a table: `num_rows` consecutive live rows (scan
/// order), each column independently encoded.
struct EncodedSegment {
  size_t num_rows = 0;
  std::vector<EncodedColumn> columns;
  uint64_t encoded_bytes = 0;  // sum over columns
  uint64_t plain_bytes = 0;
};

/// One (column cmp literal) clause executable directly on encoded columns.
struct EncodedPredicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// Appends to `matches` the ascending local row indices of `seg` satisfying
/// every clause (AND semantics). `scratch` is caller-owned scratch space so
/// tight scan loops reuse allocations. With zero clauses every row matches.
void FilterSegment(const EncodedSegment& seg,
                   const std::vector<EncodedPredicate>& clauses,
                   std::vector<uint32_t>* matches,
                   std::vector<uint32_t>* scratch);

/// An immutable encoded snapshot of a table's live rows, sliced into
/// segments of at most `segment_rows` rows in scan order. Built by
/// Table::BuildEncodedSegments(); `built_version` records the table's
/// mutation version so any later Insert/Delete invalidates the snapshot
/// (Table::encoded() returns nullptr and scans fall back to the plain
/// path — staleness can never change query results).
struct EncodedTableSnapshot {
  std::vector<EncodedSegment> segments;
  size_t num_rows = 0;
  uint64_t encoded_bytes = 0;
  uint64_t plain_bytes = 0;
  uint64_t built_version = 0;

  double CompressionRatio() const {
    return encoded_bytes > 0
               ? static_cast<double>(plain_bytes) /
                     static_cast<double>(encoded_bytes)
               : 1.0;
  }

  /// The modal encoding of column `c` across segments (kPlain when empty).
  ColumnEncoding DominantEncoding(size_t c) const;

  /// Compact per-column summary for EXPLAIN, e.g.
  /// "family=dict affinity_nm=for note=plain".
  std::string Summary(const Schema& schema) const;
};

/// Encodes `rows` (borrowed; tombstones already excluded, scan order) into
/// segments of at most `segment_rows` rows. `num_columns` fixes the arity
/// for the empty-table case.
EncodedTableSnapshot BuildEncodedTableSnapshot(
    size_t num_columns, const std::vector<const Row*>& rows,
    size_t segment_rows);

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_ENCODED_SEGMENT_H_
