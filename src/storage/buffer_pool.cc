#include "storage/buffer_pool.h"

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace storage {

namespace {

/// Registry mirrors of the per-pool hit/miss counters (shared across pools).
obs::Counter* PoolHits() {
  static obs::Counter* c =
      obs::MetricRegistry::Default()->GetCounter("storage.buffer_pool.hits");
  return c;
}

obs::Counter* PoolMisses() {
  static obs::Counter* c =
      obs::MetricRegistry::Default()->GetCounter("storage.buffer_pool.misses");
  return c;
}

}  // namespace

PageGuard::~PageGuard() {
  if (pool_ && page_) pool_->Unpin(page_);
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ && page_) pool_->Unpin(page_);
    pool_ = other.pool_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity) : disk_(disk) {
  DT_CHECK(capacity > 0) << "buffer pool needs at least one frame";
  frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_.push_back(std::make_unique<Page>());
  }
}

void BufferPool::Unpin(Page* page) {
  page->Unpin();
  DT_CHECK(page->pin_count() >= 0) << "pin count underflow";
}

util::Result<size_t> BufferPool::FindVictim() {
  // Prefer a frame not yet holding any page.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i]->id() == kInvalidPage) return i;
  }
  // LRU scan for an unpinned frame.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    size_t frame = *it;
    if (frames_[frame]->pin_count() == 0) {
      Page* victim = frames_[frame].get();
      if (victim->dirty()) {
        DRUGTREE_RETURN_IF_ERROR(disk_->WritePage(victim->id(), *victim));
        victim->set_dirty(false);
      }
      table_.erase(victim->id());
      lru_.erase(it);
      lru_pos_.erase(frame);
      return frame;
    }
  }
  return util::Status::ResourceExhausted("all buffer frames are pinned");
}

util::Result<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++hits_;
    PoolHits()->Increment();
    size_t frame = it->second;
    // Move to MRU position.
    auto pos = lru_pos_.find(frame);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
    }
    lru_.push_back(frame);
    lru_pos_[frame] = std::prev(lru_.end());
    frames_[frame]->Pin();
    return PageGuard(this, frames_[frame].get());
  }
  ++misses_;
  PoolMisses()->Increment();
  DRUGTREE_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Page* page = frames_[frame].get();
  DRUGTREE_RETURN_IF_ERROR(disk_->ReadPage(id, page));
  table_[id] = frame;
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
  page->Pin();
  return PageGuard(this, page);
}

util::Result<PageGuard> BufferPool::Allocate() {
  DRUGTREE_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  DRUGTREE_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Page* page = frames_[frame].get();
  // Fresh page: zero it in memory rather than reading back.
  *page = Page();
  page->set_id(id);
  table_[id] = frame;
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
  page->Pin();
  return PageGuard(this, page);
}

util::Status BufferPool::FlushAll() {
  for (auto& frame : frames_) {
    if (frame->id() != kInvalidPage && frame->dirty()) {
      DRUGTREE_RETURN_IF_ERROR(disk_->WritePage(frame->id(), *frame));
      frame->set_dirty(false);
    }
  }
  return util::Status::OK();
}

}  // namespace storage
}  // namespace drugtree
