// Generic size-bounded LRU cache with hit/miss statistics. Backs the block
// cache, the semantic result cache (query/result_cache.h), the integration
// layer's record cache, and the simulated mobile client cache.

#ifndef DRUGTREE_STORAGE_LRU_CACHE_H_
#define DRUGTREE_STORAGE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/resource_tracker.h"

namespace drugtree {
namespace storage {

/// Counters shared by all cache instances' reporting.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// LRU cache keyed by K. Each entry carries a charge (its "size"); the cache
/// evicts LRU entries once total charge exceeds capacity. K must be hashable
/// and equality-comparable; V must be copyable (entries are returned by
/// value so eviction cannot dangle).
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(uint64_t capacity) : capacity_(capacity) {}

  /// Mirrors hit/miss/eviction counts into the process metric registry as
  /// `<name>.hits|misses|evictions` (e.g. "query.result_cache.hits"). Call
  /// once, right after construction; off by default so anonymous caches
  /// (tests, scratch instances) stay out of the registry.
  void EnableMetrics(const std::string& name) {
    auto* registry = obs::MetricRegistry::Default();
    metric_hits_ = registry->GetCounter(name + ".hits");
    metric_misses_ = registry->GetCounter(name + ".misses");
    metric_evictions_ = registry->GetCounter(name + ".evictions");
  }

  /// Mirrors the cache's resident bytes (`used()`) into a MemoryTracker
  /// node, so cache memory shows up in the server's resource hierarchy.
  /// Unconditional charges: the cache polices itself by eviction; the
  /// tracker observes. Pass null to detach. Synchronization follows the
  /// cache's own contract (callers of the mutating methods serialize).
  void AttachMemoryTracker(obs::MemoryTracker* tracker) {
    if (tracker_ != nullptr && used_ > 0) {
      tracker_->Release(static_cast<int64_t>(used_));
    }
    tracker_ = tracker;
    if (tracker_ != nullptr && used_ > 0) {
      tracker_->Charge(static_cast<int64_t>(used_));
    }
  }

  /// Inserts or overwrites. charge must be >= 1. Entries larger than the
  /// whole capacity are not cached.
  void Put(const K& key, V value, uint64_t charge = 1) {
    if (charge > capacity_) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      SubUsed(it->second.charge);
      order_.erase(it->second.pos);
      map_.erase(it);
    }
    order_.push_front(key);
    map_.emplace(key, Entry{std::move(value), charge, order_.begin()});
    AddUsed(charge);
    ++stats_.insertions;
    EvictIfNeeded();
  }

  /// Looks a key up, refreshing recency. Returns nullopt on miss.
  std::optional<V> Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      if (metric_misses_ != nullptr) metric_misses_->Increment();
      return std::nullopt;
    }
    ++stats_.hits;
    if (metric_hits_ != nullptr) metric_hits_->Increment();
    order_.erase(it->second.pos);
    order_.push_front(key);
    it->second.pos = order_.begin();
    return it->second.value;
  }

  /// Peek without recency update or stats (used by tests).
  bool Contains(const K& key) const { return map_.count(key) > 0; }

  /// Removes a key if present.
  void Erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    SubUsed(it->second.charge);
    order_.erase(it->second.pos);
    map_.erase(it);
  }

  void Clear() {
    map_.clear();
    order_.clear();
    SubUsed(used_);
  }

  /// Visits every (key, value) pair in unspecified order (no recency
  /// update). fn(const K&, const V&).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& [k, e] : map_) fn(k, e.value);
  }

  size_t size() const { return map_.size(); }
  uint64_t used() const { return used_; }
  uint64_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    V value;
    uint64_t charge;
    typename std::list<K>::iterator pos;
  };

  void EvictIfNeeded() {
    while (used_ > capacity_ && !order_.empty()) {
      const K& victim = order_.back();
      auto it = map_.find(victim);
      SubUsed(it->second.charge);
      map_.erase(it);
      order_.pop_back();
      ++stats_.evictions;
      if (metric_evictions_ != nullptr) metric_evictions_->Increment();
    }
  }

  void AddUsed(uint64_t charge) {
    used_ += charge;
    if (tracker_ != nullptr) tracker_->Charge(static_cast<int64_t>(charge));
  }
  void SubUsed(uint64_t charge) {
    used_ -= charge;
    if (tracker_ != nullptr) tracker_->Release(static_cast<int64_t>(charge));
  }

  uint64_t capacity_;
  uint64_t used_ = 0;
  std::list<K> order_;  // MRU first
  std::unordered_map<K, Entry> map_;
  CacheStats stats_;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::MemoryTracker* tracker_ = nullptr;  // mirrors used(); may be null
};

}  // namespace storage
}  // namespace drugtree

#endif  // DRUGTREE_STORAGE_LRU_CACHE_H_
