#include "storage/page.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "util/string_util.h"

namespace drugtree {
namespace storage {

util::Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return util::Status::IoError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IoError("fstat failed on " + path);
  }
  uint32_t pages = static_cast<uint32_t>(st.st_size / kPageSize);
  return std::unique_ptr<DiskManager>(new DiskManager(fd, pages));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

util::Result<PageId> DiskManager::AllocatePage() {
  PageId id = num_pages_++;
  Page zero;
  zero.set_id(id);
  DRUGTREE_RETURN_IF_ERROR(WritePage(id, zero));
  return id;
}

util::Status DiskManager::ReadPage(PageId id, Page* page) {
  if (id >= num_pages_) {
    return util::Status::OutOfRange(
        util::StringPrintf("page %u beyond end (%u pages)", id, num_pages_));
  }
  ssize_t n = ::pread(fd_, page->data(), kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return util::Status::IoError(
        util::StringPrintf("short read on page %u", id));
  }
  page->set_id(id);
  page->set_dirty(false);
  ++reads_;
  return util::Status::OK();
}

util::Status DiskManager::WritePage(PageId id, const Page& page) {
  ssize_t n = ::pwrite(fd_, page.data(), kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return util::Status::IoError(
        util::StringPrintf("short write on page %u", id));
  }
  ++writes_;
  return util::Status::OK();
}

}  // namespace storage
}  // namespace drugtree
