// Level-of-detail tree cuts.
//
// A phone cannot render (or afford to download) a 50k-node tree, and the
// analyst cannot read one. The LOD cut walks the tree top-down and keeps a
// node expanded only while it is (a) inside the viewport and (b) large
// enough on screen to be distinguishable; everything below a cut point is
// shipped as a single *collapsed* node carrying subtree aggregates (leaf
// count, best overlay value). This bounds the payload by the pixel budget
// instead of the tree size — the core mobile-interaction optimization.

#ifndef DRUGTREE_MOBILE_LOD_H_
#define DRUGTREE_MOBILE_LOD_H_

#include <vector>

#include "mobile/viewport.h"
#include "phylo/layout.h"
#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "util/result.h"

namespace drugtree {
namespace mobile {

/// One shipped node.
struct LodNode {
  phylo::NodeId id = phylo::kInvalidNode;
  phylo::NodeId parent = phylo::kInvalidNode;  // parent *within the cut*
  double x = 0.0, y = 0.0;
  bool collapsed = false;   // true => stands in for its whole subtree
  int32_t leaf_count = 0;   // subtree leaves (1 for actual leaves)
  double annotation = 0.0;  // subtree-aggregated overlay value
};

struct LodParams {
  /// Minimum on-screen vertical extent, in pixels, for a subtree to stay
  /// expanded. Below it the subtree collapses to one marker.
  double min_subtree_pixels = 8.0;
  /// Hard cap on shipped nodes (safety budget).
  int max_nodes = 2000;
  /// Screen height used to convert layout extent to pixels.
  int screen_height_px = 768;
  /// Annotation-guided detail: a subtree whose annotation value is >=
  /// annotation_hot_threshold is kept expanded down to
  /// min_subtree_pixels / annotation_boost pixels — the analyst's overlay
  /// signal (assay density) earns extra detail where it matters. 1.0
  /// disables the effect.
  double annotation_boost = 1.0;
  double annotation_hot_threshold = 1.0;
};

/// Computes the LOD cut for a viewport. `annotation` maps NodeId -> overlay
/// value (already aggregated per subtree by the caller; empty = zeros).
/// Nodes outside the viewport are dropped entirely (their nearest visible
/// ancestor represents them); the root is always shipped.
util::Result<std::vector<LodNode>> ComputeLodCut(
    const phylo::Tree& tree, const phylo::TreeIndex& index,
    const phylo::TreeLayout& layout, const Viewport& viewport,
    const std::vector<double>& annotation, const LodParams& params);

/// The no-LOD baseline: every node, viewport ignored.
std::vector<LodNode> FullTreeCut(const phylo::Tree& tree,
                                 const phylo::TreeIndex& index,
                                 const phylo::TreeLayout& layout,
                                 const std::vector<double>& annotation);

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_LOD_H_
