#include "mobile/session.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/string_util.h"

namespace drugtree {
namespace mobile {

std::string SessionReport::ToString() const {
  std::string out = "session: " + latency_ms.ToString() + " (ms)\n";
  out += util::StringPrintf(
      "  frames=%llu nodes=%llu delta-skipped=%llu bytes=%s total=%.1fs\n",
      (unsigned long long)frames, (unsigned long long)nodes_shipped,
      (unsigned long long)nodes_delta_skipped,
      util::HumanBytes(bytes_shipped).c_str(),
      static_cast<double>(total_session_micros) / 1e6);
  for (const auto& [kind, stats] : latency_by_action_ms) {
    out += util::StringPrintf("  %-14s n=%lld mean=%.1fms max=%.1fms\n",
                              kind.c_str(), (long long)stats.count(),
                              stats.mean(), stats.max());
  }
  if (overlay_queries > 0) {
    out += util::StringPrintf(
        "  served-overlays=%llu shed=%llu deadline-missed=%llu\n",
        (unsigned long long)overlay_queries, (unsigned long long)overlay_shed,
        (unsigned long long)overlay_deadline_missed);
  }
  if (!tail_attribution.empty()) {
    out += "  tail: " + tail_attribution;
  }
  return out;
}

MobileSession::MobileSession(const phylo::Tree* tree,
                             const phylo::TreeIndex* index,
                             const phylo::TreeLayout* layout,
                             std::vector<double> annotation,
                             DeviceProfile device, util::Clock* clock,
                             SessionOptions options,
                             OverlayQueryFn overlay_query,
                             ServedQueryConfig served)
    : tree_(tree),
      index_(index),
      layout_(layout),
      annotation_(std::move(annotation)),
      device_(device),
      clock_(clock),
      options_(options),
      overlay_query_(std::move(overlay_query)),
      served_(std::move(served)),
      network_(clock, device.link),
      client_cache_(device.cache_bytes),
      viewport_(Viewport::FullExtent(*layout)) {}

void MobileSession::ServeVia(ServedQueryConfig config) {
  served_ = std::move(config);
}

util::Result<uint64_t> MobileSession::ServedOverlayQuery(phylo::NodeId node) {
  DT_SPAN("mobile.served_overlay");
  server::QueryRequest request;
  request.session_id = served_.session_id;
  request.sql = served_.overlay_sql(node);
  request.query_class = server::QueryClass::kInteractive;
  request.priority = served_.priority;
  if (served_.overlay_deadline_micros > 0) {
    request.deadline_micros = served_.server->clock()->NowMicros() +
                              served_.overlay_deadline_micros;
  }
  request.planner = served_.planner;
  ++report_.overlay_queries;
  util::Result<query::QueryOutcome> outcome =
      served_.server->Submit(std::move(request));
  if (outcome.ok()) {
    return outcome->result.ApproxBytes();
  }
  // Graceful degradation: the client gets a tiny "server busy, retry"
  // frame instead of an overlay. Anything else is a real error.
  if (outcome.status().IsResourceExhausted()) {
    ++report_.overlay_shed;
    return static_cast<uint64_t>(64);
  }
  if (outcome.status().IsCancelled()) {
    ++report_.overlay_deadline_missed;
    return static_cast<uint64_t>(64);
  }
  return outcome.status();
}

util::Result<int64_t> MobileSession::Interact(const Action& action) {
  if (options_.trace_sink == nullptr) return InteractInner(action);
  // Trace ids: session id in the high bits keeps ids unique when several
  // sessions share one sink.
  obs::TraceContext trace((served_.session_id << 32) | ++trace_seq_, clock_);
  trace.set_session_id(served_.session_id);
  trace.set_query_class("mobile");
  trace.set_lane(
      util::StringPrintf("session-%llu",
                         (unsigned long long)served_.session_id));
  trace.set_sql(ActionKindName(action.kind));
  util::Result<int64_t> out = [&] {
    obs::ScopedTraceContext installed(&trace);
    return InteractInner(action);
  }();
  options_.trace_sink->Record(
      trace.Finish(out.ok() ? "ok" : out.status().ToString(), out.ok()));
  return out;
}

util::Result<int64_t> MobileSession::InteractInner(const Action& action) {
  DT_SPAN("mobile.interact");
  static obs::Counter* bytes_shipped =
      obs::MetricRegistry::Default()->GetCounter("mobile.session.bytes");
  static obs::Counter* nodes_shipped =
      obs::MetricRegistry::Default()->GetCounter("mobile.session.nodes");
  static obs::Counter* frames_shipped =
      obs::MetricRegistry::Default()->GetCounter("mobile.session.frames");
  util::Timer timer(clock_);

  // 1. Viewport update (client-side, instantaneous in the model).
  switch (action.kind) {
    case ActionKind::kInitialLoad:
      viewport_ = Viewport::FullExtent(*layout_);
      break;
    case ActionKind::kZoomIn:
      viewport_.Zoom(0.5, *layout_);
      break;
    case ActionKind::kZoomOut:
      viewport_.Zoom(2.0, *layout_);
      break;
    case ActionKind::kPan:
      viewport_.Pan(action.dx * viewport_.Width(),
                    action.dy * viewport_.Height(), *layout_);
      break;
    case ActionKind::kFocusNode: {
      const auto& pos = layout_->position(action.node);
      double h = std::max(
          2.0, static_cast<double>(index_->SubtreeLeafCount(action.node)));
      viewport_.CenterOn(pos, viewport_.Width(), h * 1.2, *layout_);
      break;
    }
    case ActionKind::kOverlayQuery:
      break;
  }

  // 2. Server work + response shipping.
  if (action.kind == ActionKind::kOverlayQuery) {
    DT_SPAN("mobile.overlay_query");
    uint64_t payload = 256;
    {
      obs::TracePhaseScope execute_phase(obs::TracePhase::kExecute);
      if (served_.server != nullptr) {
        // Serving layer: admission + scheduling + execution, with the
        // wall-clock spent (queueing included) charged to the session.
        util::Timer server_timer(util::RealClock::Instance());
        DRUGTREE_ASSIGN_OR_RETURN(payload, ServedOverlayQuery(action.node));
        if (options_.charge_real_compute) {
          clock_->AdvanceMicros(server_timer.ElapsedMicros());
        }
      } else if (overlay_query_) {
        // Charge real server compute time into the session clock.
        util::Timer server_timer(util::RealClock::Instance());
        DRUGTREE_ASSIGN_OR_RETURN(payload, overlay_query_(action.node));
        if (options_.charge_real_compute) {
          clock_->AdvanceMicros(server_timer.ElapsedMicros());
        }
      }
    }
    network_.Request(payload);
    report_.bytes_shipped += payload;
    bytes_shipped->Add(static_cast<int64_t>(payload));
  } else {
    std::vector<LodNode> cut;
    {
      obs::TracePhaseScope serialize_phase(obs::TracePhase::kSerialize);
      DT_SPAN("mobile.lod_cut");
      if (options_.progressive_lod) {
        LodParams lod = options_.lod;
        lod.screen_height_px = device_.screen_height_px;
        DRUGTREE_ASSIGN_OR_RETURN(
            cut, ComputeLodCut(*tree_, *index_, *layout_, viewport_,
                               annotation_, lod));
      } else {
        cut = FullTreeCut(*tree_, *index_, *layout_, annotation_);
      }
    }
    Frame frame;
    {
      obs::TracePhaseScope serialize_phase(obs::TracePhase::kSerialize);
      DT_SPAN("mobile.frame_encode");
      frame = BuildFrame(
          cut, client_cache_.CollapsedIds(), client_cache_.ExpandedIds(),
          options_.delta_encoding);
    }
    network_.Request(frame.bytes);
    client_cache_.Install(frame.nodes);
    // 3. Client render cost for the shipped nodes.
    clock_->AdvanceMicros(static_cast<int64_t>(frame.nodes.size()) *
                          device_.render_micros_per_node);
    report_.bytes_shipped += frame.bytes;
    report_.nodes_shipped += frame.nodes.size();
    report_.nodes_delta_skipped += frame.delta_skipped;
    ++report_.frames;
    bytes_shipped->Add(static_cast<int64_t>(frame.bytes));
    nodes_shipped->Add(static_cast<int64_t>(frame.nodes.size()));
    frames_shipped->Increment();
  }
  return timer.ElapsedMicros();
}

util::Result<SessionReport> MobileSession::Run(
    const std::vector<Action>& trace) {
  report_ = SessionReport();
  client_cache_.Clear();
  int64_t start = clock_->NowMicros();
  for (const auto& action : trace) {
    DRUGTREE_ASSIGN_OR_RETURN(int64_t micros, Interact(action));
    double ms = static_cast<double>(micros) / 1000.0;
    report_.latency_ms.Add(ms);
    report_.latency_by_action_ms[ActionKindName(action.kind)].Add(ms);
    // Think time between interactions (does not count as latency).
    clock_->AdvanceMicros(500'000);
  }
  report_.total_session_micros = clock_->NowMicros() - start;
  if (options_.trace_sink != nullptr) {
    // The sink may be shared (server + many sessions); attribute only this
    // session's interaction traces.
    std::vector<obs::TraceRecord> mine;
    for (obs::TraceRecord& r : options_.trace_sink->Snapshot()) {
      if (r.query_class == "mobile" && r.session_id == served_.session_id) {
        mine.push_back(std::move(r));
      }
    }
    for (const obs::TailAttribution& a : obs::ComputeTailAttribution(mine)) {
      report_.tail_attribution += a.ToString();
      report_.tail_attribution += "\n";
    }
  }
  return report_;
}

}  // namespace mobile
}  // namespace drugtree
