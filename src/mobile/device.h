// Simulated mobile device profiles (2013-era hardware, per the paper's
// setting). The profile fixes the link model, the screen, and the client
// cache budget used by the session simulator.

#ifndef DRUGTREE_MOBILE_DEVICE_H_
#define DRUGTREE_MOBILE_DEVICE_H_

#include <cstdint>
#include <string>

#include "integration/network.h"

namespace drugtree {
namespace mobile {

struct DeviceProfile {
  std::string name;
  int screen_width_px = 1024;
  int screen_height_px = 768;
  /// Link characteristics client <-> DrugTree server.
  integration::NetworkParams link;
  /// Client-side cache budget in bytes.
  uint64_t cache_bytes = 4 * 1024 * 1024;
  /// Per-node client render cost in microseconds (small CPUs hurt on big
  /// payloads, which is part of why LOD matters).
  int64_t render_micros_per_node = 30;

  /// A 2013 smartphone on 3G: ~250 ms RTT, ~1 Mbit/s.
  static DeviceProfile Phone3G();
  /// A 2013 tablet on WiFi: ~40 ms RTT, ~20 Mbit/s.
  static DeviceProfile TabletWifi();
  /// Desktop on a LAN (the no-mobile control): ~2 ms RTT, ~400 Mbit/s.
  static DeviceProfile DesktopLan();
};

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_DEVICE_H_
