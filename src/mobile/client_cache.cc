#include "mobile/client_cache.h"

namespace drugtree {
namespace mobile {

void ClientCache::Install(const std::vector<LodNode>& nodes) {
  for (const auto& n : nodes) {
    cache_.Put(n.id, n.collapsed, kBytesPerNode);
  }
}

std::unordered_set<int64_t> ClientCache::CollapsedIds() const {
  std::unordered_set<int64_t> out;
  cache_.ForEach([&](const int64_t& id, const bool& collapsed) {
    if (collapsed) out.insert(id);
  });
  return out;
}

std::unordered_set<int64_t> ClientCache::ExpandedIds() const {
  std::unordered_set<int64_t> out;
  cache_.ForEach([&](const int64_t& id, const bool& collapsed) {
    if (!collapsed) out.insert(id);
  });
  return out;
}

}  // namespace mobile
}  // namespace drugtree
