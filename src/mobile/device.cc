#include "mobile/device.h"

namespace drugtree {
namespace mobile {

DeviceProfile DeviceProfile::Phone3G() {
  DeviceProfile d;
  d.name = "phone-3g";
  d.screen_width_px = 320;
  d.screen_height_px = 480;
  d.link.latency_micros = 250'000;
  d.link.bandwidth_bytes_per_sec = 125'000;  // ~1 Mbit/s
  d.link.jitter_fraction = 0.2;
  d.cache_bytes = 2 * 1024 * 1024;
  d.render_micros_per_node = 60;
  return d;
}

DeviceProfile DeviceProfile::TabletWifi() {
  DeviceProfile d;
  d.name = "tablet-wifi";
  d.screen_width_px = 1024;
  d.screen_height_px = 768;
  d.link.latency_micros = 40'000;
  d.link.bandwidth_bytes_per_sec = 2'500'000;  // ~20 Mbit/s
  d.link.jitter_fraction = 0.15;
  d.cache_bytes = 8 * 1024 * 1024;
  d.render_micros_per_node = 30;
  return d;
}

DeviceProfile DeviceProfile::DesktopLan() {
  DeviceProfile d;
  d.name = "desktop-lan";
  d.screen_width_px = 1920;
  d.screen_height_px = 1080;
  d.link.latency_micros = 2'000;
  d.link.bandwidth_bytes_per_sec = 50'000'000;  // ~400 Mbit/s
  d.link.jitter_fraction = 0.05;
  d.cache_bytes = 64 * 1024 * 1024;
  d.render_micros_per_node = 10;
  return d;
}

}  // namespace mobile
}  // namespace drugtree
