#include "mobile/lod.h"

#include <algorithm>

namespace drugtree {
namespace mobile {

using phylo::NodeId;

namespace {

double AnnotationOf(const std::vector<double>& annotation, NodeId id) {
  return static_cast<size_t>(id) < annotation.size()
             ? annotation[static_cast<size_t>(id)]
             : 0.0;
}

// The subtree's vertical extent in layout units: its leaf count maps 1:1 to
// y span under the rectangular layout.
double SubtreeYExtent(const phylo::TreeIndex& index, NodeId id) {
  return std::max(1.0, static_cast<double>(index.SubtreeLeafCount(id)));
}

}  // namespace

util::Result<std::vector<LodNode>> ComputeLodCut(
    const phylo::Tree& tree, const phylo::TreeIndex& index,
    const phylo::TreeLayout& layout, const Viewport& viewport,
    const std::vector<double>& annotation, const LodParams& params) {
  if (params.min_subtree_pixels <= 0 || params.max_nodes < 1 ||
      params.screen_height_px < 1 || params.annotation_boost < 1.0) {
    return util::Status::InvalidArgument("invalid LOD parameters");
  }
  if (tree.Empty()) return std::vector<LodNode>{};

  double layout_h = std::max(1e-9, viewport.Height());
  double px_per_unit = static_cast<double>(params.screen_height_px) / layout_h;

  std::vector<LodNode> out;
  // (node, parent-in-cut)
  std::vector<std::pair<NodeId, NodeId>> stack = {
      {tree.root(), phylo::kInvalidNode}};
  while (!stack.empty() && static_cast<int>(out.size()) < params.max_nodes) {
    auto [id, cut_parent] = stack.back();
    stack.pop_back();
    const auto& pos = layout.position(id);
    const phylo::Node& node = tree.node(id);

    // A subtree strictly outside the viewport's y-band is skipped (x is kept
    // permissive: ancestors of visible nodes often sit left of the window).
    double y_lo = pos.y - SubtreeYExtent(index, id);
    double y_hi = pos.y + SubtreeYExtent(index, id);
    bool band_visible = y_hi >= viewport.y0 && y_lo <= viewport.y1;
    if (!band_visible && cut_parent != phylo::kInvalidNode) continue;

    LodNode ln;
    ln.id = id;
    ln.parent = cut_parent;
    ln.x = pos.x;
    ln.y = pos.y;
    ln.leaf_count = index.SubtreeLeafCount(id);
    ln.annotation = AnnotationOf(annotation, id);

    double subtree_px = SubtreeYExtent(index, id) * px_per_unit;
    double pixel_floor = params.min_subtree_pixels;
    if (params.annotation_boost > 1.0 &&
        ln.annotation >= params.annotation_hot_threshold) {
      pixel_floor /= params.annotation_boost;  // hot clades earn detail
    }
    bool expand = !node.IsLeaf() && subtree_px >= pixel_floor &&
                  pos.x <= viewport.x1;  // beyond the right edge: collapse
    ln.collapsed = !node.IsLeaf() && !expand;
    out.push_back(ln);
    if (expand) {
      for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
        stack.emplace_back(*it, id);
      }
    }
  }
  return out;
}

std::vector<LodNode> FullTreeCut(const phylo::Tree& tree,
                                 const phylo::TreeIndex& index,
                                 const phylo::TreeLayout& layout,
                                 const std::vector<double>& annotation) {
  std::vector<LodNode> out;
  out.reserve(tree.NumNodes());
  tree.PreOrder([&](NodeId id) {
    const auto& pos = layout.position(id);
    LodNode ln;
    ln.id = id;
    ln.parent = tree.node(id).parent;
    ln.x = pos.x;
    ln.y = pos.y;
    ln.collapsed = false;
    ln.leaf_count = index.SubtreeLeafCount(id);
    ln.annotation = AnnotationOf(annotation, id);
    out.push_back(ln);
  });
  return out;
}

}  // namespace mobile
}  // namespace drugtree
