// Wire protocol between the DrugTree server and the mobile client:
// payload sizing for shipped LOD nodes and delta encoding against what the
// client already holds.

#ifndef DRUGTREE_MOBILE_PROTOCOL_H_
#define DRUGTREE_MOBILE_PROTOCOL_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "mobile/lod.h"

namespace drugtree {
namespace mobile {

/// Bytes to ship one LodNode (id + parent + 2 floats + flags + aggregates +
/// a short label). A flat estimate keeps the simulation deterministic.
inline constexpr uint64_t kBytesPerNode = 48;
/// Fixed response framing overhead.
inline constexpr uint64_t kResponseOverheadBytes = 128;

/// A frame ready to send: the nodes plus delta bookkeeping.
struct Frame {
  std::vector<LodNode> nodes;        // nodes actually shipped
  size_t delta_skipped = 0;          // nodes the client already had
  uint64_t bytes = 0;                // shipped payload size
};

/// Builds the frame for a cut. With `delta` true, nodes whose id is in
/// `client_nodes` (and which are shipped in the same role, i.e. collapsed
/// state matches what the client holds) are skipped; the client re-uses its
/// cached copy.
Frame BuildFrame(const std::vector<LodNode>& cut,
                 const std::unordered_set<int64_t>& client_collapsed,
                 const std::unordered_set<int64_t>& client_expanded,
                 bool delta);

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_PROTOCOL_H_
