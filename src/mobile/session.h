// The mobile-session simulator: replays an interaction trace against the
// DrugTree server over a simulated device link and measures per-interaction
// response time. This is the reproduction of the poster's "mobile
// interaction" layer — the client is simulated, the server-side code paths
// (LOD cuts, delta frames, overlay queries) are the real ones.

#ifndef DRUGTREE_MOBILE_SESSION_H_
#define DRUGTREE_MOBILE_SESSION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "integration/network.h"
#include "mobile/client_cache.h"
#include "mobile/device.h"
#include "mobile/lod.h"
#include "mobile/trace.h"
#include "mobile/viewport.h"
#include "phylo/layout.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/result.h"

namespace drugtree {
namespace mobile {

struct SessionOptions {
  /// Progressive level-of-detail transmission vs shipping the full tree on
  /// every interaction (the pre-optimization DrugTree behaviour).
  bool progressive_lod = true;
  /// Skip nodes the client already caches.
  bool delta_encoding = true;
  LodParams lod;
};

/// Callback that runs the ligand-overlay query for a focused subtree on the
/// server and returns the response payload size in bytes. Wall-clock spent
/// inside the callback is charged to the simulated session clock.
using OverlayQueryFn =
    std::function<util::Result<uint64_t>(phylo::NodeId node)>;

struct SessionReport {
  util::Histogram latency_ms;                    // per interaction
  std::map<std::string, util::SummaryStats> latency_by_action_ms;
  uint64_t bytes_shipped = 0;
  uint64_t nodes_shipped = 0;
  uint64_t nodes_delta_skipped = 0;
  uint64_t frames = 0;
  int64_t total_session_micros = 0;

  std::string ToString() const;
};

class MobileSession {
 public:
  /// All pointers are borrowed. `annotation` may be empty. `overlay_query`
  /// may be null (overlay actions then only cost one round trip).
  MobileSession(const phylo::Tree* tree, const phylo::TreeIndex* index,
                const phylo::TreeLayout* layout,
                std::vector<double> annotation, DeviceProfile device,
                util::Clock* clock, SessionOptions options,
                OverlayQueryFn overlay_query = nullptr);

  /// Replays the trace, returning the measured report.
  util::Result<SessionReport> Run(const std::vector<Action>& trace);

 private:
  util::Result<int64_t> Interact(const Action& action);

  const phylo::Tree* tree_;
  const phylo::TreeIndex* index_;
  const phylo::TreeLayout* layout_;
  std::vector<double> annotation_;
  DeviceProfile device_;
  util::Clock* clock_;
  SessionOptions options_;
  OverlayQueryFn overlay_query_;

  integration::SimulatedNetwork network_;
  ClientCache client_cache_;
  Viewport viewport_;
  SessionReport report_;
};

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_SESSION_H_
