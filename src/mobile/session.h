// The mobile-session simulator: replays an interaction trace against the
// DrugTree server over a simulated device link and measures per-interaction
// response time. This is the reproduction of the poster's "mobile
// interaction" layer — the client is simulated, the server-side code paths
// (LOD cuts, delta frames, overlay queries) are the real ones.

#ifndef DRUGTREE_MOBILE_SESSION_H_
#define DRUGTREE_MOBILE_SESSION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "integration/network.h"
#include "mobile/client_cache.h"
#include "mobile/device.h"
#include "mobile/lod.h"
#include "mobile/trace.h"
#include "mobile/viewport.h"
#include "obs/trace_store.h"
#include "phylo/layout.h"
#include "query/planner.h"
#include "server/server.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/result.h"

namespace drugtree {
namespace mobile {

struct SessionOptions {
  /// Progressive level-of-detail transmission vs shipping the full tree on
  /// every interaction (the pre-optimization DrugTree behaviour).
  bool progressive_lod = true;
  /// Skip nodes the client already caches.
  bool delta_encoding = true;
  LodParams lod;
  /// Charge real wall-clock compute time of overlay/server work into the
  /// session clock (realistic latencies on simulated-clock builds). Turn
  /// off for bit-deterministic virtual-time runs — interactions then cost
  /// only simulated link time.
  bool charge_real_compute = true;
  /// When set (borrowed, must outlive the session), every interaction is
  /// traced as query class "mobile" on lane "session-<id>": overlay/server
  /// work as execute, LOD cut + frame encoding as serialize, device-link
  /// transfers as fetch_blocked. Finished records land here and the session
  /// report gains a tail-attribution line.
  obs::TraceStore* trace_sink = nullptr;
};

/// Callback that runs the ligand-overlay query for a focused subtree on the
/// server and returns the response payload size in bytes. Wall-clock spent
/// inside the callback is charged to the simulated session clock. This is
/// the legacy single-tenant path; served sessions (ServeVia) submit
/// QueryRequests to a DrugTreeServer instead.
using OverlayQueryFn =
    std::function<util::Result<uint64_t>(phylo::NodeId node)>;

/// Routes overlay actions through the multi-session serving layer as
/// kInteractive requests with a per-action deadline, instead of calling the
/// overlay callback directly. The facade supplies `overlay_sql` (it knows
/// the overlay relation); the session supplies session id, class, and
/// deadline. Shed or deadline-cancelled requests degrade gracefully: the
/// client gets a tiny "try again" frame and the session counts the miss.
struct ServedQueryConfig {
  server::DrugTreeServer* server = nullptr;  // borrowed; null = direct path
  uint64_t session_id = 0;
  /// Interactive budget per overlay action, on the server's clock.
  int64_t overlay_deadline_micros = 150'000;
  int priority = 0;
  query::PlannerOptions planner;
  /// Renders the overlay SQL for a focused node.
  std::function<std::string(phylo::NodeId node)> overlay_sql;
};

struct SessionReport {
  util::Histogram latency_ms;                    // per interaction
  std::map<std::string, util::SummaryStats> latency_by_action_ms;
  uint64_t bytes_shipped = 0;
  uint64_t nodes_shipped = 0;
  uint64_t nodes_delta_skipped = 0;
  uint64_t frames = 0;
  int64_t total_session_micros = 0;
  // Served-session outcomes (zero on the direct overlay-callback path).
  uint64_t overlay_queries = 0;
  uint64_t overlay_shed = 0;           // admission rejected (server busy)
  uint64_t overlay_deadline_missed = 0;  // cancelled mid-flight or expired
  /// Per-phase tail attribution of this session's interactions (empty
  /// unless SessionOptions::trace_sink was set).
  std::string tail_attribution;

  std::string ToString() const;
};

class MobileSession {
 public:
  /// All pointers are borrowed. `annotation` may be empty. `overlay_query`
  /// may be null (overlay actions then only cost one round trip).
  MobileSession(const phylo::Tree* tree, const phylo::TreeIndex* index,
                const phylo::TreeLayout* layout,
                std::vector<double> annotation, DeviceProfile device,
                util::Clock* clock, SessionOptions options,
                OverlayQueryFn overlay_query = nullptr,
                ServedQueryConfig served = ServedQueryConfig());

  /// Switches overlay actions onto the serving layer. Call before Run();
  /// `config.server` and `config.overlay_sql` must both be set.
  void ServeVia(ServedQueryConfig config);

  /// Replays the trace, returning the measured report.
  util::Result<SessionReport> Run(const std::vector<Action>& trace);

 private:
  util::Result<int64_t> Interact(const Action& action);

  /// The interaction body Interact wraps with per-interaction tracing.
  util::Result<int64_t> InteractInner(const Action& action);

  /// Runs one overlay action through the server (served sessions) and
  /// returns the payload size; shed/deadline outcomes degrade to a small
  /// error frame and bump the report counters.
  util::Result<uint64_t> ServedOverlayQuery(phylo::NodeId node);

  const phylo::Tree* tree_;
  const phylo::TreeIndex* index_;
  const phylo::TreeLayout* layout_;
  std::vector<double> annotation_;
  DeviceProfile device_;
  util::Clock* clock_;
  SessionOptions options_;
  OverlayQueryFn overlay_query_;
  ServedQueryConfig served_;

  integration::SimulatedNetwork network_;
  ClientCache client_cache_;
  Viewport viewport_;
  SessionReport report_;
  uint64_t trace_seq_ = 0;  // per-session trace id counter
};

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_SESSION_H_
