// Simulated client-side node cache: which LOD nodes the device currently
// holds, bounded by the device's cache budget (LRU by byte charge).

#ifndef DRUGTREE_MOBILE_CLIENT_CACHE_H_
#define DRUGTREE_MOBILE_CLIENT_CACHE_H_

#include <cstdint>
#include <unordered_set>

#include "mobile/protocol.h"
#include "storage/lru_cache.h"

namespace drugtree {
namespace mobile {

class ClientCache {
 public:
  explicit ClientCache(uint64_t capacity_bytes)
      : cache_(capacity_bytes) {
    cache_.EnableMetrics("mobile.client_cache");
  }

  /// Installs shipped nodes (called after a frame arrives).
  void Install(const std::vector<LodNode>& nodes);

  /// The node-id sets the delta encoder consults. Rebuilt lazily from the
  /// LRU state on each call.
  std::unordered_set<int64_t> CollapsedIds() const;
  std::unordered_set<int64_t> ExpandedIds() const;

  size_t size() const { return cache_.size(); }
  const storage::CacheStats& stats() const { return cache_.stats(); }
  void Clear() { cache_.Clear(); }

 private:
  // Key: node id; value: collapsed flag. Charge = kBytesPerNode.
  mutable storage::LruCache<int64_t, bool> cache_;
};

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_CLIENT_CACHE_H_
