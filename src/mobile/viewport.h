// Viewport: the window into layout space the client is currently showing.
// Layout coordinates come from phylo::TreeLayout (x = evolutionary distance,
// y = leaf rank).

#ifndef DRUGTREE_MOBILE_VIEWPORT_H_
#define DRUGTREE_MOBILE_VIEWPORT_H_

#include "phylo/layout.h"

namespace drugtree {
namespace mobile {

struct Viewport {
  double x0 = 0.0, y0 = 0.0;  // top-left in layout coordinates
  double x1 = 1.0, y1 = 1.0;  // bottom-right

  double Width() const { return x1 - x0; }
  double Height() const { return y1 - y0; }

  bool Contains(double x, double y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }

  /// Shifts the viewport by (dx, dy), clamped to the layout bounds.
  void Pan(double dx, double dy, const phylo::TreeLayout& layout);

  /// Zooms by `factor` (< 1 zooms in) around the viewport center, clamped.
  void Zoom(double factor, const phylo::TreeLayout& layout);

  /// Centers on a node with a window of (w, h), clamped.
  void CenterOn(const phylo::NodePosition& pos, double w, double h,
                const phylo::TreeLayout& layout);

  /// Full-extent viewport over a layout.
  static Viewport FullExtent(const phylo::TreeLayout& layout);
};

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_VIEWPORT_H_
