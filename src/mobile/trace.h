// Interaction traces: the scripted analyst behaviour the session simulator
// replays. Generated traces model phylogenetic locality (an analyst drills
// into a clade, inspects neighbours, occasionally jumps).

#ifndef DRUGTREE_MOBILE_TRACE_H_
#define DRUGTREE_MOBILE_TRACE_H_

#include <string>
#include <vector>

#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "util/rng.h"

namespace drugtree {
namespace mobile {

enum class ActionKind {
  kInitialLoad,   // open the tool: full-extent view
  kZoomIn,        // zoom toward the current focus
  kZoomOut,
  kPan,           // shift within the current zoom level
  kFocusNode,     // tap a clade: center + zoom onto a node
  kOverlayQuery,  // run the ligand-overlay query for the focused subtree
};

const char* ActionKindName(ActionKind kind);

struct Action {
  ActionKind kind = ActionKind::kInitialLoad;
  phylo::NodeId node = phylo::kInvalidNode;  // focus target
  double dx = 0.0, dy = 0.0;                 // pan deltas (viewport fractions)
};

struct TraceParams {
  int num_actions = 50;
  /// Probability that the next focus stays within the current clade
  /// (locality); the complement jumps to a random node.
  double locality = 0.8;
  double p_zoom = 0.3;
  double p_pan = 0.3;
  double p_focus = 0.25;
  double p_query = 0.15;
};

/// Generates a trace over the given tree. Always starts with kInitialLoad.
std::vector<Action> GenerateTrace(const phylo::Tree& tree,
                                  const phylo::TreeIndex& index,
                                  const TraceParams& params, util::Rng* rng);

}  // namespace mobile
}  // namespace drugtree

#endif  // DRUGTREE_MOBILE_TRACE_H_
