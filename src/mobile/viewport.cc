#include "mobile/viewport.h"

#include <algorithm>

namespace drugtree {
namespace mobile {

namespace {

// Clamps the window [lo, hi) of width w into [0, max].
void ClampAxis(double* lo, double* hi, double max_extent) {
  double w = *hi - *lo;
  if (w > max_extent) {
    *lo = 0;
    *hi = max_extent;
    return;
  }
  if (*lo < 0) {
    *hi -= *lo;
    *lo = 0;
  }
  if (*hi > max_extent) {
    *lo -= *hi - max_extent;
    *hi = max_extent;
  }
}

}  // namespace

void Viewport::Pan(double dx, double dy, const phylo::TreeLayout& layout) {
  x0 += dx;
  x1 += dx;
  y0 += dy;
  y1 += dy;
  ClampAxis(&x0, &x1, layout.max_x());
  ClampAxis(&y0, &y1, layout.max_y());
}

void Viewport::Zoom(double factor, const phylo::TreeLayout& layout) {
  factor = std::clamp(factor, 0.05, 20.0);
  double cx = (x0 + x1) / 2, cy = (y0 + y1) / 2;
  double w = Width() * factor, h = Height() * factor;
  // Lower bound keeps the viewport from degenerating.
  w = std::max(w, layout.max_x() / 1024.0 + 1e-9);
  h = std::max(h, layout.max_y() / 1024.0 + 1e-9);
  x0 = cx - w / 2;
  x1 = cx + w / 2;
  y0 = cy - h / 2;
  y1 = cy + h / 2;
  ClampAxis(&x0, &x1, layout.max_x());
  ClampAxis(&y0, &y1, layout.max_y());
}

void Viewport::CenterOn(const phylo::NodePosition& pos, double w, double h,
                        const phylo::TreeLayout& layout) {
  x0 = pos.x - w / 2;
  x1 = pos.x + w / 2;
  y0 = pos.y - h / 2;
  y1 = pos.y + h / 2;
  ClampAxis(&x0, &x1, layout.max_x());
  ClampAxis(&y0, &y1, layout.max_y());
}

Viewport Viewport::FullExtent(const phylo::TreeLayout& layout) {
  Viewport v;
  v.x0 = 0;
  v.y0 = 0;
  v.x1 = layout.max_x();
  v.y1 = std::max(1.0, layout.max_y());
  return v;
}

}  // namespace mobile
}  // namespace drugtree
