#include "mobile/protocol.h"

namespace drugtree {
namespace mobile {

Frame BuildFrame(const std::vector<LodNode>& cut,
                 const std::unordered_set<int64_t>& client_collapsed,
                 const std::unordered_set<int64_t>& client_expanded,
                 bool delta) {
  Frame frame;
  frame.bytes = kResponseOverheadBytes;
  for (const auto& node : cut) {
    if (delta) {
      const auto& held = node.collapsed ? client_collapsed : client_expanded;
      if (held.count(node.id)) {
        ++frame.delta_skipped;
        continue;
      }
    }
    frame.nodes.push_back(node);
    frame.bytes += kBytesPerNode;
  }
  return frame;
}

}  // namespace mobile
}  // namespace drugtree
