#include "mobile/trace.h"

namespace drugtree {
namespace mobile {

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kInitialLoad: return "initial-load";
    case ActionKind::kZoomIn: return "zoom-in";
    case ActionKind::kZoomOut: return "zoom-out";
    case ActionKind::kPan: return "pan";
    case ActionKind::kFocusNode: return "focus-node";
    case ActionKind::kOverlayQuery: return "overlay-query";
  }
  return "?";
}

std::vector<Action> GenerateTrace(const phylo::Tree& tree,
                                  const phylo::TreeIndex& index,
                                  const TraceParams& params, util::Rng* rng) {
  std::vector<Action> trace;
  trace.push_back({ActionKind::kInitialLoad, tree.root(), 0, 0});
  if (tree.Empty()) return trace;

  phylo::NodeId focus = tree.root();
  auto total = static_cast<int64_t>(tree.NumNodes());
  for (int i = 1; i < params.num_actions; ++i) {
    double total_p =
        params.p_zoom + params.p_pan + params.p_focus + params.p_query;
    double u = rng->NextDouble() * total_p;
    Action a;
    if (u < params.p_zoom) {
      a.kind = rng->Bernoulli(0.65) ? ActionKind::kZoomIn
                                    : ActionKind::kZoomOut;
      a.node = focus;
    } else if (u < params.p_zoom + params.p_pan) {
      a.kind = ActionKind::kPan;
      a.dx = rng->UniformDouble(-0.4, 0.4);
      a.dy = rng->UniformDouble(-0.4, 0.4);
    } else if (u < params.p_zoom + params.p_pan + params.p_focus) {
      a.kind = ActionKind::kFocusNode;
      if (rng->Bernoulli(params.locality) && !tree.node(focus).IsLeaf()) {
        // Stay local: a random node within the focused subtree.
        auto subtree = index.SubtreeNodes(focus);
        a.node = subtree[rng->Uniform(subtree.size())];
      } else {
        a.node = static_cast<phylo::NodeId>(rng->Uniform(
            static_cast<uint64_t>(total)));
      }
      focus = a.node;
    } else {
      a.kind = ActionKind::kOverlayQuery;
      a.node = focus;
    }
    trace.push_back(a);
  }
  return trace;
}

}  // namespace mobile
}  // namespace drugtree
