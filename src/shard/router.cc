#include "shard/router.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>
#include <string>
#include <utility>

#include "query/expr.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/string_util.h"

namespace drugtree {
namespace shard {

namespace {

/// The partitioned relations and, per relation, the columns an equi-join may
/// use without crossing shards: equal values imply the same owner shard
/// (accession via the activities co-partition; node_id / pre because a
/// node's rows all carry that node's pre number).
const std::map<std::string, std::set<std::string>>& PartitionedLinkColumns() {
  static const auto* kColumns = new std::map<std::string, std::set<std::string>>{
      {"proteins", {"accession", "node_id", "pre"}},
      {"activities", {"accession"}},
      {"tree_nodes", {"node_id", "pre"}},
      {"node_overlay", {"node_id", "pre"}},
  };
  return *kColumns;
}

bool SplitQualified(const std::string& qualified, std::string* alias,
                    std::string* column) {
  size_t dot = qualified.find('.');
  if (dot == std::string::npos) return false;
  *alias = qualified.substr(0, dot);
  *column = qualified.substr(dot + 1);
  return true;
}

std::string StatusLabel(const util::Status& status) {
  if (status.ok()) return "ok";
  if (status.IsResourceExhausted()) return "shed";
  if (status.IsCancelled()) return "cancelled";
  return status.ToString();
}

}  // namespace

const char* RouteKindName(RouteKind kind) {
  switch (kind) {
    case RouteKind::kRouted: return "routed";
    case RouteKind::kScatter: return "scatter";
    case RouteKind::kBroadcast: return "broadcast";
    case RouteKind::kFallback: return "fallback";
  }
  return "unknown";
}

std::string RouteDecision::ToString() const {
  return util::StringPrintf("shards=%d %s (%s)",
                            static_cast<int>(shards.size()),
                            RouteKindName(kind), reason.c_str());
}

util::Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    const phylo::Tree* tree, const phylo::TreeIndex* index,
    const ShardSourceTables& sources, query::Catalog* full_catalog,
    util::Clock* clock, const RouterOptions& options) {
  if (tree == nullptr || index == nullptr || full_catalog == nullptr ||
      clock == nullptr) {
    return util::Status::InvalidArgument(
        "tree, index, full catalog, and clock are required");
  }
  if (options.replicas_per_shard < 1) {
    return util::Status::InvalidArgument("replicas_per_shard must be >= 1");
  }
  DRUGTREE_ASSIGN_OR_RETURN(
      auto partitions,
      IntervalPartitioner::Partition(*tree, *index, sources,
                                     options.num_shards));

  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->tree_ = tree;
  router->index_ = index;
  router->full_catalog_ = full_catalog;
  router->clock_ = clock;
  router->options_ = options;
  for (const auto& p : partitions) router->ranges_.push_back(p->range);

  // One channel per replica so concurrent fan-out hops overlap in virtual
  // time instead of serializing on the historical single-channel link.
  integration::NetworkParams hop = options.hop;
  hop.max_concurrency = std::max(
      hop.max_concurrency, options.num_shards * options.replicas_per_shard);
  router->hop_network_ =
      std::make_unique<integration::SimulatedNetwork>(clock, hop);
  router->trace_store_ =
      std::make_unique<obs::TraceStore>(options.trace_store_capacity, 0);

  auto* registry = obs::MetricRegistry::Default();
  static const char* kKinds[] = {"routed", "scatter", "broadcast", "fallback"};
  for (int k = 0; k < 4; ++k) {
    router->decision_counters_[k] =
        registry->GetCounter("router.requests", {{"decision", kKinds[k]}});
  }
  router->failed_counter_ =
      registry->GetCounter("router.requests", {{"decision", "failed"}});

  router->shard_counters_.resize(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->partition = std::move(partitions[static_cast<size_t>(s)]);
    obs::Labels labels = {{"shard", util::StringPrintf("s%d", s)}};
    shard->sub_requests = registry->GetCounter("router.shard.requests", labels);
    shard->shed = registry->GetCounter("router.shard.shed", labels);
    shard->deadline_missed =
        registry->GetCounter("router.shard.deadline_missed", labels);
    shard->failovers = registry->GetCounter("router.shard.failover", labels);
    shard->gather_ms =
        registry->GetHistogram("router.shard.gather_ms", labels);
    for (int r = 0; r < options.replicas_per_shard; ++r) {
      auto replica = std::make_unique<Replica>();
      replica->id = util::StringPrintf("s%dr%d", s, r);
      server::ServerOptions so = options.replica;
      so.shard_id = replica->id;
      replica->server = std::make_unique<server::DrugTreeServer>(
          shard->partition->catalog.get(), clock, so);
      shard->replicas.push_back(std::move(replica));
    }
    router->shards_.push_back(std::move(shard));
  }

  server::ServerOptions co = options.coordinator;
  co.shard_id = "coord";
  router->coordinator_ =
      std::make_unique<server::DrugTreeServer>(full_catalog, clock, co);
  return router;
}

ShardRouter::~ShardRouter() = default;

std::vector<ShardRange> ShardRouter::ranges() const { return ranges_; }

server::DrugTreeServer* ShardRouter::replica_server(int shard, int replica) {
  if (shard < 0 || shard >= num_shards() || replica < 0 ||
      replica >= static_cast<int>(shards_[static_cast<size_t>(shard)]
                                      ->replicas.size())) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->server.get();
}

RouteDecision ShardRouter::Route(const std::string& sql) const {
  auto parsed = query::ParseStatement(sql);
  if (!parsed.ok()) {
    RouteDecision d;
    d.kind = RouteKind::kFallback;
    d.reason = "parse error";
    return d;
  }
  return RouteSelect(parsed->select);
}

RouteDecision ShardRouter::RouteSelect(
    const query::SelectStatement& select) const {
  RouteDecision d;
  const int n = static_cast<int>(ranges_.size());

  std::map<std::string, std::string> alias_to_table;
  std::vector<std::string> part_aliases;
  for (const auto& t : select.tables) {
    const std::string& alias = t.alias.empty() ? t.table : t.alias;
    alias_to_table[alias] = t.table;
    if (PartitionedLinkColumns().count(t.table) > 0) {
      part_aliases.push_back(alias);
    }
  }
  if (part_aliases.empty()) {
    d.kind = RouteKind::kFallback;
    d.reason = "no partitioned tables";
    return d;
  }

  // Union-find over the partitioned aliases: an equi-join on link columns
  // keeps both sides in one co-partitioned group (matching rows share an
  // owner shard), so one group member's interval constraint confines the
  // whole group.
  std::map<std::string, int> alias_idx;
  for (size_t i = 0; i < part_aliases.size(); ++i) {
    alias_idx[part_aliases[i]] = static_cast<int>(i);
  }
  std::vector<int> parent(part_aliases.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    parent[static_cast<size_t>(find(a))] = find(b);
  };
  auto is_link = [&](const std::string& alias, const std::string& column,
                     int* idx) {
    auto ai = alias_idx.find(alias);
    if (ai == alias_idx.end()) return false;
    const auto& links = PartitionedLinkColumns().at(alias_to_table[alias]);
    if (links.count(column) == 0) return false;
    *idx = ai->second;
    return true;
  };

  // Per-alias shard cover: shard s stays true while it may hold rows
  // matching every conjunct on that alias. Supersets are always exact (each
  // shard still evaluates the full predicate), so anything we cannot
  // analyze simply leaves the cover wide.
  std::vector<std::vector<bool>> cover(part_aliases.size(),
                                       std::vector<bool>(n, true));

  for (const auto& c : query::SplitConjuncts(select.where)) {
    if (!c) continue;
    if (c->kind == query::ExprKind::kBinary &&
        c->bin_op == query::BinaryOp::kEq && c->children.size() == 2 &&
        c->children[0]->kind == query::ExprKind::kColumnRef &&
        c->children[1]->kind == query::ExprKind::kColumnRef) {
      std::string la, lc, ra, rc;
      int li = 0, ri = 0;
      if (SplitQualified(c->children[0]->column, &la, &lc) &&
          SplitQualified(c->children[1]->column, &ra, &rc) &&
          is_link(la, lc, &li) && is_link(ra, rc, &ri)) {
        // accession joins accession (the activities co-partition);
        // node_id/pre join their own kind (same node -> same pre -> same
        // shard). Mixed pairs prove nothing.
        const bool l_acc = (lc == "accession"), r_acc = (rc == "accession");
        if (l_acc == r_acc && (l_acc || lc == rc)) unite(li, ri);
      }
      continue;
    }
    if (c->kind == query::ExprKind::kFunction &&
        (c->function == "SUBTREE" || c->function == "ANCESTOR_OF") &&
        c->children.size() == 2 &&
        c->children[0]->kind == query::ExprKind::kColumnRef &&
        c->children[1]->kind == query::ExprKind::kLiteral) {
      std::string alias, column;
      if (!SplitQualified(c->children[0]->column, &alias, &column)) continue;
      auto ai = alias_idx.find(alias);
      auto at = alias_to_table.find(alias);
      if (ai == alias_idx.end() || at == alias_to_table.end()) continue;
      const query::TreeBinding* binding =
          full_catalog_->GetTreeBinding(at->second);
      if (binding == nullptr || binding->node_col != column) continue;
      // Resolve the literal node exactly like the optimizer rewrite does.
      const storage::Value& lit = c->children[1]->literal;
      phylo::NodeId node = phylo::kInvalidNode;
      if (lit.type() == storage::ValueType::kString) {
        node = tree_->FindByName(lit.AsString());
      } else if (lit.type() == storage::ValueType::kInt64) {
        auto id = static_cast<phylo::NodeId>(lit.AsInt64());
        if (tree_->Contains(id)) node = id;
      }
      if (node == phylo::kInvalidNode) {
        // Let the coordinator reproduce the single-server plan-time
        // "tree node not found" error verbatim.
        d.kind = RouteKind::kFallback;
        d.reason = "unresolvable tree node";
        return d;
      }
      std::vector<bool> pred(static_cast<size_t>(n), false);
      if (c->function == "SUBTREE") {
        // Matching rows carry pre numbers inside [pre(X), post(X)].
        const int32_t lo = index_->Pre(node);
        const int32_t hi = index_->Post(node);
        for (int s = 0; s < n; ++s) {
          pred[static_cast<size_t>(s)] =
              ranges_[static_cast<size_t>(s)].Overlaps(lo, hi);
        }
      } else {
        // ANCESTOR_OF: matching rows sit on the root..X path.
        for (phylo::NodeId a = node; a != phylo::kInvalidNode;
             a = tree_->node(a).parent) {
          pred[static_cast<size_t>(
              IntervalPartitioner::OwnerOf(ranges_, index_->Pre(a)))] = true;
        }
      }
      auto& cv = cover[static_cast<size_t>(ai->second)];
      for (int s = 0; s < n; ++s) {
        cv[static_cast<size_t>(s)] =
            cv[static_cast<size_t>(s)] && pred[static_cast<size_t>(s)];
      }
    }
  }

  // Group cover = intersection of member covers.
  std::map<int, std::vector<bool>> group_cover;
  for (size_t i = 0; i < part_aliases.size(); ++i) {
    int root = find(static_cast<int>(i));
    auto it =
        group_cover.emplace(root, std::vector<bool>(static_cast<size_t>(n),
                                                    true))
            .first;
    for (int s = 0; s < n; ++s) {
      it->second[static_cast<size_t>(s)] =
          it->second[static_cast<size_t>(s)] && cover[i][static_cast<size_t>(s)];
    }
  }
  std::vector<int> target;
  if (group_cover.size() == 1) {
    const auto& cv = group_cover.begin()->second;
    for (int s = 0; s < n; ++s) {
      if (cv[static_cast<size_t>(s)]) target.push_back(s);
    }
  } else {
    // Unlinked partitioned groups join across the partition axis; only
    // provably shard-local when every group is confined to one identical
    // shard.
    bool first = true;
    bool same_single = true;
    std::vector<int> candidate;
    for (const auto& entry : group_cover) {
      std::vector<int> t;
      for (int s = 0; s < n; ++s) {
        if (entry.second[static_cast<size_t>(s)]) t.push_back(s);
      }
      if (first) {
        candidate = t;
        first = false;
      }
      same_single = same_single && t.size() == 1 && t == candidate;
    }
    if (!same_single) {
      d.kind = RouteKind::kFallback;
      d.reason = "cross-shard join (unlinked partitioned tables)";
      return d;
    }
    target = candidate;
  }

  if (target.empty()) {
    // Disjoint interval covers: no shard can hold a matching row, so any
    // single shard computes the global (empty-input) result exactly.
    d.kind = RouteKind::kRouted;
    d.shards = {0};
    d.reason = "disjoint interval covers";
    return d;
  }
  if (target.size() == 1) {
    // The owning shard's matching rows ARE the global matching rows, so
    // every query shape (aggregates included) is exact on it.
    d.kind = RouteKind::kRouted;
    d.shards = std::move(target);
    d.reason = "interval confined to one shard";
    return d;
  }

  // Multi-shard output is merged by concat + stable re-sort + LIMIT; that
  // is only exact for plans this merge can reproduce.
  auto fallback = [&d](std::string why) {
    d.kind = RouteKind::kFallback;
    d.shards.clear();
    d.reason = std::move(why);
    return d;
  };
  if (!select.group_by.empty()) {
    return fallback("group by needs global aggregation");
  }
  if (select.distinct) return fallback("distinct needs global dedup");
  for (const auto& item : select.select) {
    if (!item.star && item.expr->ContainsAggregate()) {
      return fallback("aggregate needs global state");
    }
  }
  if (select.order_by.empty()) return fallback("unordered multi-shard output");

  // Merge sort keys must be computable from the output columns alone.
  std::vector<storage::Column> columns;
  for (const auto& item : select.select) {
    if (item.star) {
      for (const auto& t : select.tables) {
        const std::string& alias = t.alias.empty() ? t.table : t.alias;
        auto table = full_catalog_->Lookup(t.table);
        if (!table.ok()) return fallback("unknown table");
        for (const auto& col : (*table)->schema().columns()) {
          columns.push_back(
              {alias + "." + col.name, storage::ValueType::kString, true});
        }
      }
    } else {
      columns.push_back({item.alias, storage::ValueType::kString, true});
    }
  }
  auto schema = storage::Schema::Create(std::move(columns));
  if (!schema.ok()) return fallback("ambiguous output columns");
  for (const auto& key : select.order_by) {
    if (key.expr->ContainsAggregate()) return fallback("aggregate order key");
    auto bound = key.expr->Clone();
    if (!query::BindExpr(bound.get(), *schema).ok()) {
      return fallback("order key not named in output");
    }
  }

  d.shards = std::move(target);
  if (static_cast<int>(d.shards.size()) == n) {
    d.kind = RouteKind::kBroadcast;
    d.reason = "no confining interval";
  } else {
    d.kind = RouteKind::kScatter;
    d.reason = util::StringPrintf("interval spans %d shards",
                                  static_cast<int>(d.shards.size()));
  }
  return d;
}

int ShardRouter::PickReplica(const Shard& shard) const {
  // Health-then-load ordering: a replica whose alert-derived health is worse
  // (degraded, critical) only takes traffic when every healthier sibling is
  // down. Within a health tier the least-loaded replica wins; ties keep the
  // lowest index so traffic deterministically returns after recovery.
  int best = -1;
  int best_health = 0;
  int64_t best_load = 0;
  for (size_t i = 0; i < shard.replicas.size(); ++i) {
    const Replica& r = *shard.replicas[i];
    if (r.down.load(std::memory_order_acquire)) continue;
    int health = static_cast<int>(r.server->health());
    int64_t load = r.in_flight.load(std::memory_order_relaxed);
    if (best < 0 || health < best_health ||
        (health == best_health && load < best_load)) {
      best = static_cast<int>(i);
      best_health = health;
      best_load = load;
    }
  }
  return best;
}

server::QueryRequest ShardRouter::MakeSubRequest(
    const server::QueryRequest& request, int shard) const {
  server::QueryRequest sub = request;
  if (request.deadline_micros > 0) {
    // The sub-deadline leaves room to ship the partial back: request
    // deadline minus the shard's observed round-trip hop cost (cost-model
    // estimate until the first observation). An already-expired
    // sub-deadline cancels on the shard before dispatch, deterministically.
    int64_t hop = shards_[static_cast<size_t>(shard)]->hop_cost_ewma.load(
        std::memory_order_relaxed);
    if (hop == 0) {
      hop = 2 * hop_network_->EstimateMicros(options_.hop_request_bytes);
    }
    sub.deadline_micros = request.deadline_micros - hop;
  }
  return sub;
}

server::ResponseHandle ShardRouter::SubmitTracked(Replica& replica,
                                                  server::QueryRequest sub,
                                                  uint64_t* token) {
  server::ResponseHandle handle = replica.server->SubmitAsync(std::move(sub));
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    *token = replica.next_token++;
    replica.handles.emplace(*token, handle);
  }
  replica.in_flight.fetch_add(1, std::memory_order_relaxed);
  // Down-mark racing with the submit: make sure the new handle is cancelled
  // too, so the failover path picks it up.
  if (replica.down.load(std::memory_order_acquire)) handle.Cancel();
  return handle;
}

void ShardRouter::FinishSub(Replica& replica, uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    replica.handles.erase(token);
  }
  replica.in_flight.fetch_sub(1, std::memory_order_relaxed);
}

int64_t UpdateHopCostEwma(std::atomic<int64_t>& ewma, int64_t micros) {
  int64_t prev = ewma.load(std::memory_order_relaxed);
  int64_t next;
  do {
    next = prev == 0 ? micros : (3 * prev + micros) / 4;
  } while (!ewma.compare_exchange_weak(prev, next,
                                       std::memory_order_relaxed));
  return next;
}

void ShardRouter::ObserveHopCost(Shard& shard, int64_t micros) {
  UpdateHopCostEwma(shard.hop_cost_ewma, micros);
}

util::Result<query::QueryOutcome> ShardRouter::Submit(
    server::QueryRequest request) {
  // Tick every member's telemetry before routing: a replica that alerts
  // divert traffic away from would otherwise never sample again, so its
  // burn-rate window could not roll over and the alert would stick firing.
  TickTelemetry();
  std::unique_ptr<obs::TraceContext> trace;
  if (options_.enable_tracing) {
    trace = std::make_unique<obs::TraceContext>(
        next_trace_id_.fetch_add(1, std::memory_order_relaxed), clock_);
    trace->set_session_id(request.session_id);
    trace->set_query_class(server::QueryClassName(request.query_class));
    trace->set_lane("router");
    trace->set_sql(request.sql);
  }

  if (trace) trace->BeginPhase(obs::TracePhase::kRoute);
  auto parsed = query::ParseStatement(request.sql);
  RouteDecision decision;
  bool explain = false;
  if (!parsed.ok()) {
    decision.kind = RouteKind::kFallback;
    decision.reason = "parse error";
  } else {
    explain = parsed->explain != query::ExplainMode::kNone;
    decision = RouteSelect(parsed->select);
  }
  if (trace) trace->EndPhase(obs::TracePhase::kRoute);

  decision_counters_[static_cast<int>(decision.kind)]->Increment();
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    switch (decision.kind) {
      case RouteKind::kRouted: ++route_counters_.routed; break;
      case RouteKind::kScatter: ++route_counters_.scatter; break;
      case RouteKind::kBroadcast: ++route_counters_.broadcast; break;
      case RouteKind::kFallback: ++route_counters_.fallback; break;
    }
  }

  util::Result<query::QueryOutcome> out = util::Status::Internal("unreached");
  if (explain || decision.kind == RouteKind::kFallback) {
    // EXPLAIN always plans on the coordinator (it sees the full catalog and
    // never executes); the route line below still reports the decision the
    // statement would get.
    out = coordinator_->Submit(std::move(request));
  } else {
    out = ScatterGather(decision, request, parsed->select, trace.get());
  }

  if (out.ok()) {
    out->physical_plan =
        "route: " + decision.ToString() + "\n" + out->physical_plan;
  } else {
    failed_counter_->Increment();
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++route_counters_.failed;
  }
  if (trace) {
    trace_store_->Record(trace->Finish(StatusLabel(out.status()), out.ok()));
  }
  return out;
}

util::Result<query::QueryOutcome> ShardRouter::ScatterGather(
    const RouteDecision& decision, const server::QueryRequest& request,
    const query::SelectStatement& select, obs::TraceContext* trace) {
  // Install the router trace so hop fetch events and blocked time attribute
  // to this request.
  obs::ScopedTraceContext install(trace);
  if (trace) trace->BeginPhase(obs::TracePhase::kGather);
  auto finish = [&trace](util::Result<query::QueryOutcome> r)
      -> util::Result<query::QueryOutcome> {
    if (trace != nullptr) trace->EndPhase(obs::TracePhase::kGather);
    return r;
  };

  struct Sub {
    int shard = -1;
    Replica* replica = nullptr;
    uint64_t token = 0;
    server::ResponseHandle handle;
    int64_t hop_charged = 0;
    int64_t start_micros = 0;
  };

  // 1. Pick a replica per target shard and charge every request hop before
  //    advancing the clock once: the fan-out overlaps in virtual time.
  std::vector<Sub> subs;
  subs.reserve(decision.shards.size());
  int64_t max_ready = 0;
  for (int s : decision.shards) {
    Shard& shard = *shards_[static_cast<size_t>(s)];
    int ri = PickReplica(shard);
    if (ri < 0) {
      return finish(util::Status::Aborted(
          util::StringPrintf("shard %d has no healthy replica", s)));
    }
    Sub sub;
    sub.shard = s;
    sub.replica = shard.replicas[static_cast<size_t>(ri)].get();
    sub.start_micros = clock_->NowMicros();
    auto hop = hop_network_->SubmitRequest(options_.hop_request_bytes);
    sub.hop_charged = hop.charged_micros;
    max_ready = std::max(max_ready, hop.ready_micros);
    subs.push_back(std::move(sub));
  }
  hop_network_->WaitUntil(max_ready);

  // 2. Dispatch every sub-request, then gather in shard order. On a
  //    SimulatedClock the clock is frozen while replicas execute, so the
  //    scatter timeline is deterministic regardless of worker interleaving.
  for (Sub& sub : subs) {
    Shard& shard = *shards_[static_cast<size_t>(sub.shard)];
    sub.handle = SubmitTracked(*sub.replica,
                               MakeSubRequest(request, sub.shard), &sub.token);
    shard.sub_requests->Increment();
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++shard_counters_[static_cast<size_t>(sub.shard)].sub_requests;
  }

  std::vector<query::QueryOutcome> outcomes;
  outcomes.reserve(subs.size());
  util::Status first_error;
  for (Sub& sub : subs) {
    Shard& shard = *shards_[static_cast<size_t>(sub.shard)];
    auto res = sub.handle.Wait();
    FinishSub(*sub.replica, sub.token);

    // Failover: a sub-request that failed because its replica was marked
    // down retries on a healthy sibling (fresh hop, fresh deadline).
    while (!res.ok() && sub.replica->down.load(std::memory_order_acquire)) {
      int ri = PickReplica(shard);
      if (ri < 0) break;
      sub.replica = shard.replicas[static_cast<size_t>(ri)].get();
      shard.failovers->Increment();
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++shard_counters_[static_cast<size_t>(sub.shard)].failovers;
      }
      auto hop = hop_network_->SubmitRequest(options_.hop_request_bytes);
      hop_network_->WaitUntil(hop.ready_micros);
      sub.hop_charged += hop.charged_micros;
      sub.handle = SubmitTracked(
          *sub.replica, MakeSubRequest(request, sub.shard), &sub.token);
      shard.sub_requests->Increment();
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++shard_counters_[static_cast<size_t>(sub.shard)].sub_requests;
      }
      res = sub.handle.Wait();
      FinishSub(*sub.replica, sub.token);
    }

    if (!res.ok()) {
      if (res.status().IsResourceExhausted()) {
        shard.shed->Increment();
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++shard_counters_[static_cast<size_t>(sub.shard)].shed;
      } else if (res.status().IsCancelled()) {
        shard.deadline_missed->Increment();
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++shard_counters_[static_cast<size_t>(sub.shard)].deadline_missed;
      }
      if (first_error.ok()) {
        first_error = res.status().WithContext(
            util::StringPrintf("shard %d", sub.shard));
      }
      continue;  // keep gathering so in-flight siblings complete cleanly
    }

    // Response hop, sized by the partial result.
    auto hop = hop_network_->SubmitRequest(res->result.ApproxBytes());
    hop_network_->WaitUntil(hop.ready_micros);
    ObserveHopCost(shard, sub.hop_charged + hop.charged_micros);
    shard.gather_ms->Observe(
        static_cast<double>(clock_->NowMicros() - sub.start_micros) / 1000.0);
    outcomes.push_back(std::move(res).ValueUnsafe());
  }
  if (!first_error.ok()) return finish(std::move(first_error));
  if (trace) trace->EndPhase(obs::TracePhase::kGather);

  // 3. Merge (identity for a single shard).
  obs::TracePhaseScope serialize(obs::TracePhase::kSerialize);
  if (outcomes.size() == 1) return std::move(outcomes.front());
  query::QueryOutcome merged;
  merged.logical_plan = outcomes.front().logical_plan;
  merged.physical_plan = outcomes.front().physical_plan;
  std::vector<query::QueryResult> partials;
  partials.reserve(outcomes.size());
  for (auto& o : outcomes) {
    merged.stats.rows_scanned += o.stats.rows_scanned;
    merged.stats.rows_index_fetched += o.stats.rows_index_fetched;
    merged.stats.rows_joined += o.stats.rows_joined;
    merged.stats.predicate_evals += o.stats.predicate_evals;
    merged.stats.bytes_scanned += o.stats.bytes_scanned;
    partials.push_back(std::move(o.result));
  }
  auto result = MergePartials(std::move(partials), select, tree_, index_);
  if (!result.ok()) return result.status();
  merged.result = std::move(result).ValueUnsafe();
  return merged;
}

util::Result<query::QueryResult> MergePartials(
    std::vector<query::QueryResult> partials,
    const query::SelectStatement& select, const phylo::Tree* tree,
    const phylo::TreeIndex* index) {
  if (partials.empty()) {
    return util::Status::InvalidArgument("no partial results to merge");
  }
  query::QueryResult merged;
  merged.columns = partials.front().columns;
  size_t total = 0;
  for (const auto& p : partials) total += p.rows.size();
  merged.rows.reserve(total);
  for (auto& p : partials) {
    if (p.columns != merged.columns) {
      return util::Status::Internal("partial results disagree on columns");
    }
    for (auto& row : p.rows) merged.rows.push_back(std::move(row));
  }

  if (!select.order_by.empty()) {
    std::vector<storage::Column> columns;
    columns.reserve(merged.columns.size());
    for (const auto& name : merged.columns) {
      columns.push_back({name, storage::ValueType::kString, true});
    }
    DRUGTREE_ASSIGN_OR_RETURN(storage::Schema schema,
                              storage::Schema::Create(std::move(columns)));
    struct Key {
      bool ascending;
      query::ExprPtr expr;
    };
    std::vector<Key> keys;
    keys.reserve(select.order_by.size());
    for (const auto& k : select.order_by) {
      auto bound = k.expr->Clone();
      DRUGTREE_RETURN_IF_ERROR(query::BindExpr(bound.get(), schema));
      keys.push_back({k.ascending, std::move(bound)});
    }
    query::EvalContext ctx{tree, index};
    std::vector<std::pair<storage::Row, storage::Row>> decorated;
    decorated.reserve(merged.rows.size());
    for (auto& row : merged.rows) {
      storage::Row key_values;
      key_values.reserve(keys.size());
      for (const auto& k : keys) {
        DRUGTREE_ASSIGN_OR_RETURN(storage::Value v,
                                  query::EvalExpr(*k.expr, row, ctx));
        key_values.push_back(std::move(v));
      }
      decorated.emplace_back(std::move(key_values), std::move(row));
    }
    // SortOp's exact comparator, so the merged order matches a single
    // server's sort of the same rows (stable over the concat order, which
    // itself preserves per-shard insertion order).
    std::stable_sort(
        decorated.begin(), decorated.end(),
        [&keys](const std::pair<storage::Row, storage::Row>& a,
                const std::pair<storage::Row, storage::Row>& b) {
          for (size_t k = 0; k < keys.size(); ++k) {
            int c = a.first[k].Compare(b.first[k]);
            if (c != 0) return keys[k].ascending ? c < 0 : c > 0;
          }
          return false;
        });
    merged.rows.clear();
    for (auto& d : decorated) merged.rows.push_back(std::move(d.second));
  }

  if (select.limit.has_value() && *select.limit >= 0 &&
      merged.rows.size() > static_cast<size_t>(*select.limit)) {
    merged.rows.resize(static_cast<size_t>(*select.limit));
  }
  return merged;
}

void ShardRouter::MarkReplicaDown(int shard, int replica) {
  server::DrugTreeServer* server = replica_server(shard, replica);
  if (server == nullptr) return;
  Replica& r = *shards_[static_cast<size_t>(shard)]
                     ->replicas[static_cast<size_t>(replica)];
  r.down.store(true, std::memory_order_release);
  std::vector<server::ResponseHandle> in_flight;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    in_flight.reserve(r.handles.size());
    for (auto& entry : r.handles) in_flight.push_back(entry.second);
  }
  for (auto& handle : in_flight) handle.Cancel();
}

void ShardRouter::MarkReplicaUp(int shard, int replica) {
  if (replica_server(shard, replica) == nullptr) return;
  shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->down.store(false, std::memory_order_release);
}

bool ShardRouter::replica_down(int shard, int replica) const {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return false;
  const auto& reps = shards_[static_cast<size_t>(shard)]->replicas;
  if (replica < 0 || replica >= static_cast<int>(reps.size())) return false;
  return reps[static_cast<size_t>(replica)]->down.load(
      std::memory_order_acquire);
}

ShardRouter::RouteCounters ShardRouter::route_counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return route_counters_;
}

ShardRouter::ShardCounters ShardRouter::shard_counters(int shard) const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  if (shard < 0 || shard >= static_cast<int>(shard_counters_.size())) {
    return {};
  }
  return shard_counters_[static_cast<size_t>(shard)];
}

int64_t ShardRouter::hop_cost_micros(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return 0;
  return shards_[static_cast<size_t>(shard)]->hop_cost_ewma.load(
      std::memory_order_relaxed);
}

std::string ShardRouter::Statusz() {
  RouteCounters rc = route_counters();
  std::string out = util::StringPrintf(
      "{\"router\":{\"num_shards\":%d,\"replicas_per_shard\":%d,"
      "\"decisions\":{\"routed\":%lld,\"scatter\":%lld,\"broadcast\":%lld,"
      "\"fallback\":%lld,\"failed\":%lld},"
      "\"trace_store\":{\"recorded\":%lld,\"dropped\":%lld},\"topology\":[",
      num_shards(), replicas_per_shard(), static_cast<long long>(rc.routed),
      static_cast<long long>(rc.scatter),
      static_cast<long long>(rc.broadcast),
      static_cast<long long>(rc.fallback), static_cast<long long>(rc.failed),
      static_cast<long long>(trace_store_->total_recorded()),
      static_cast<long long>(trace_store_->dropped()));
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardCounters sc = shard_counters(static_cast<int>(s));
    if (s > 0) out += ",";
    out += util::StringPrintf(
        "{\"shard\":%d,\"pre_lo\":%d,\"pre_hi\":%d,\"leaves\":%lld,"
        "\"hop_cost_micros\":%lld,\"sub_requests\":%lld,\"shed\":%lld,"
        "\"deadline_missed\":%lld,\"failovers\":%lld,\"replicas\":[",
        shard.partition->range.shard, shard.partition->range.pre_lo,
        shard.partition->range.pre_hi,
        static_cast<long long>(shard.partition->range.leaves),
        static_cast<long long>(hop_cost_micros(static_cast<int>(s))),
        static_cast<long long>(sc.sub_requests),
        static_cast<long long>(sc.shed),
        static_cast<long long>(sc.deadline_missed),
        static_cast<long long>(sc.failovers));
    for (size_t r = 0; r < shard.replicas.size(); ++r) {
      Replica& replica = *shard.replicas[r];
      if (r > 0) out += ",";
      out += util::StringPrintf(
          "{\"id\":\"%s\",\"down\":%s,\"health\":\"%s\",\"statusz\":",
          replica.id.c_str(),
          replica.down.load(std::memory_order_acquire) ? "true" : "false",
          obs::HealthStateName(replica.server->health()));
      out += replica.server->Statusz();
      out += "}";
    }
    out += "]}";
  }
  out += "],\"coordinator\":";
  out += coordinator_->Statusz();
  out += "}}";
  return out;
}

std::string ShardRouter::TailAttributionReport() {
  auto records = trace_store_->Snapshot();
  std::string out;
  for (const auto& a : obs::ComputeTailAttribution(records)) {
    out += a.ToString();
    out += "\n";
  }
  auto* registry = obs::MetricRegistry::Default();
  int slowest = -1;
  double slowest_p99 = -1.0;
  for (int s = 0; s < num_shards(); ++s) {
    double p99_ms =
        shards_[static_cast<size_t>(s)]->gather_ms->ValueAtPercentile(99.0);
    registry
        ->GetGauge("router.tail.shard_p99_micros",
                   {{"shard", util::StringPrintf("s%d", s)}})
        ->Set(static_cast<int64_t>(p99_ms * 1000.0));
    out += util::StringPrintf("shard s%d gather p99=%.2fms\n", s, p99_ms);
    if (p99_ms > slowest_p99) {
      slowest_p99 = p99_ms;
      slowest = s;
    }
  }
  if (slowest >= 0) {
    out += util::StringPrintf("slowest shard: s%d (gather p99=%.2fms)\n",
                              slowest, slowest_p99);
  }
  return out;
}

std::string ShardRouter::ExportChromeTrace() {
  std::vector<obs::TraceRecord> all = trace_store_->Snapshot();
  std::vector<obs::TraceInstant> instants;
  auto add = [&](server::DrugTreeServer* server, const std::string& prefix) {
    for (auto& rec : server->trace_store()->Snapshot()) {
      rec.lane = prefix + "/" + rec.lane;
      all.push_back(std::move(rec));
    }
    if (server->alert_engine() != nullptr) {
      for (auto& inst : server->alert_engine()->TraceInstants()) {
        inst.lane = prefix + "/" + inst.lane;
        instants.push_back(std::move(inst));
      }
    }
  };
  for (const auto& shard : shards_) {
    for (const auto& replica : shard->replicas) {
      add(replica->server.get(), replica->id);
    }
  }
  add(coordinator_.get(), "coord");
  return obs::ExportChromeTrace(all, instants);
}

void ShardRouter::TickTelemetry() {
  for (const auto& shard : shards_) {
    for (const auto& replica : shard->replicas) {
      replica->server->TelemetryTick();
    }
  }
  coordinator_->TelemetryTick();
}

void ShardRouter::Drain() {
  for (const auto& shard : shards_) {
    for (const auto& replica : shard->replicas) replica->server->Drain();
  }
  coordinator_->Drain();
}

}  // namespace shard
}  // namespace drugtree
