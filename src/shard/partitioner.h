// IntervalPartitioner: splits the DrugTree relations into N shards by
// contiguous pre-order interval ranges. Because the interval index gives
// every node one pre number and every subtree one contiguous [pre, post]
// range, cutting the pre axis into N contiguous ranges makes subtree and
// ancestor predicates *range-partitionable*: a predicate whose interval
// falls inside one range is answerable by that shard alone, and any other
// interval names exactly the shard subset that can hold matching rows.
//
// Partitioning rule per relation:
//   * proteins / tree_nodes / node_overlay — partitioned by the row's own
//     `pre` column (rows with NULL pre, i.e. proteins off the tree, land on
//     shard 0 so every row has exactly one owner);
//   * activities — co-partitioned with proteins via accession -> leaf pre,
//     so the screening equi-join p.accession = a.accession is always
//     shard-local (accessions off the tree land on shard 0);
//   * ligands — a small dimension table, replicated: every shard catalog
//     registers the same shared Table*.
//
// Every shard catalog carries the FULL tree + TreeIndex (tree metadata is
// tiny next to the relations), so per-shard planners rewrite and evaluate
// tree predicates exactly like the single-server catalog does.

#ifndef DRUGTREE_SHARD_PARTITIONER_H_
#define DRUGTREE_SHARD_PARTITIONER_H_

#include <memory>
#include <vector>

#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "query/catalog.h"
#include "storage/table.h"
#include "util/result.h"

namespace drugtree {
namespace shard {

/// One shard's contiguous slice of the pre-order axis (both ends inclusive).
struct ShardRange {
  int shard = 0;
  int32_t pre_lo = 0;
  int32_t pre_hi = 0;
  int64_t leaves = 0;  // leaf count inside the range (the balance target)

  bool Contains(int32_t pre) const { return pre >= pre_lo && pre <= pre_hi; }
  bool Overlaps(int32_t lo, int32_t hi) const {
    return lo <= pre_hi && hi >= pre_lo;
  }
};

/// The single-server relations a partitioning is extracted from. All
/// borrowed; `ligands` is registered as-is (replicated) in every shard
/// catalog and must outlive the partitions.
struct ShardSourceTables {
  const storage::Table* proteins = nullptr;      // overlay proteins (has pre)
  const storage::Table* tree_nodes = nullptr;
  const storage::Table* node_overlay = nullptr;
  const storage::Table* activities = nullptr;
  storage::Table* ligands = nullptr;             // replicated dimension
};

/// One shard's owned slice: partitioned tables plus a ready-to-serve
/// catalog (partition tables + shared ligands + full tree bindings).
struct ShardPartition {
  ShardRange range;
  std::unique_ptr<storage::Table> proteins;
  std::unique_ptr<storage::Table> tree_nodes;
  std::unique_ptr<storage::Table> node_overlay;
  std::unique_ptr<storage::Table> activities;
  std::unique_ptr<query::Catalog> catalog;
};

class IntervalPartitioner {
 public:
  /// Cuts [0, NumNodes) into `num_shards` contiguous pre ranges, balanced
  /// by subtree leaf count (leaves are where the rows live: proteins and
  /// activities both key on leaf pre numbers). Fails if num_shards < 1 or
  /// exceeds the node count.
  static util::Result<std::vector<ShardRange>> Split(
      const phylo::Tree& tree, const phylo::TreeIndex& index, int num_shards);

  /// The owning shard of a pre number (ranges must come from Split).
  static int OwnerOf(const std::vector<ShardRange>& ranges, int32_t pre);

  /// Extracts per-shard partitions: copies each source row into its owner
  /// shard's table (insertion order preserved, so filtered scans return
  /// rows in the same relative order as the single-server tables), mirrors
  /// the single-server secondary indexes, analyzes, and builds encoded
  /// segments. `tree`/`index`/`sources.ligands` are borrowed by the
  /// returned partitions' catalogs and must outlive them.
  static util::Result<std::vector<std::unique_ptr<ShardPartition>>> Partition(
      const phylo::Tree& tree, const phylo::TreeIndex& index,
      const ShardSourceTables& sources, int num_shards);
};

}  // namespace shard
}  // namespace drugtree

#endif  // DRUGTREE_SHARD_PARTITIONER_H_
