#include "shard/partitioner.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>

#include "storage/value.h"
#include "util/string_util.h"

namespace drugtree {
namespace shard {

using storage::Value;
using storage::ValueType;

util::Result<std::vector<ShardRange>> IntervalPartitioner::Split(
    const phylo::Tree& tree, const phylo::TreeIndex& index, int num_shards) {
  const auto num_nodes = static_cast<int32_t>(index.NumNodes());
  if (num_shards < 1) {
    return util::Status::InvalidArgument("num_shards must be >= 1");
  }
  if (num_shards > num_nodes) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "num_shards %d exceeds node count %d", num_shards, num_nodes));
  }
  // Prefix leaf counts along the pre axis; cut at the proportional leaf
  // targets so every shard owns about the same number of leaves (rows key
  // on leaf pre numbers, so leaves — not nodes — are the load proxy).
  int64_t total_leaves = 0;
  std::vector<int64_t> prefix(static_cast<size_t>(num_nodes));
  for (int32_t pre = 0; pre < num_nodes; ++pre) {
    if (tree.node(index.NodeAtPre(pre)).IsLeaf()) ++total_leaves;
    prefix[static_cast<size_t>(pre)] = total_leaves;
  }

  std::vector<ShardRange> ranges;
  ranges.reserve(static_cast<size_t>(num_shards));
  int32_t lo = 0;
  for (int s = 0; s < num_shards; ++s) {
    int32_t hi;
    if (s == num_shards - 1) {
      hi = num_nodes - 1;
    } else {
      const int64_t target = total_leaves * (s + 1) / num_shards;
      hi = lo;
      // Smallest hi >= lo reaching the cumulative leaf target, but leave at
      // least one pre number per remaining shard.
      const int32_t max_hi = num_nodes - 1 - (num_shards - 1 - s);
      while (hi < max_hi && prefix[static_cast<size_t>(hi)] < target) ++hi;
      hi = std::min(hi, max_hi);
    }
    ShardRange r;
    r.shard = s;
    r.pre_lo = lo;
    r.pre_hi = hi;
    r.leaves = prefix[static_cast<size_t>(hi)] -
               (lo > 0 ? prefix[static_cast<size_t>(lo - 1)] : 0);
    ranges.push_back(r);
    lo = hi + 1;
  }
  return ranges;
}

int IntervalPartitioner::OwnerOf(const std::vector<ShardRange>& ranges,
                                 int32_t pre) {
  for (const ShardRange& r : ranges) {
    if (r.Contains(pre)) return r.shard;
  }
  return 0;
}

namespace {

/// Copies every live source row into its owner shard's table, routing by
/// `owner_of(row)`. Insertion order within each shard matches the source
/// scan order, which is what keeps filtered scans (and therefore stable
/// sorts over them) row-for-row identical to the single-server path.
util::Status ScatterRows(
    const storage::Table& source,
    const std::vector<std::unique_ptr<ShardPartition>>& shards,
    const std::function<int(const storage::Row&)>& owner_of,
    std::unique_ptr<storage::Table> ShardPartition::*member) {
  for (storage::RowId rid : source.LiveRows()) {
    const storage::Row& row = source.row(rid);
    int owner = owner_of(row);
    storage::Table* dest = ((*shards[static_cast<size_t>(owner)]).*member).get();
    DRUGTREE_RETURN_IF_ERROR(dest->Insert(row).status());
  }
  return util::Status::OK();
}

}  // namespace

util::Result<std::vector<std::unique_ptr<ShardPartition>>>
IntervalPartitioner::Partition(const phylo::Tree& tree,
                               const phylo::TreeIndex& index,
                               const ShardSourceTables& sources,
                               int num_shards) {
  if (sources.proteins == nullptr || sources.tree_nodes == nullptr ||
      sources.node_overlay == nullptr || sources.activities == nullptr ||
      sources.ligands == nullptr) {
    return util::Status::InvalidArgument("all source tables must be set");
  }
  DRUGTREE_ASSIGN_OR_RETURN(std::vector<ShardRange> ranges,
                            Split(tree, index, num_shards));

  std::vector<std::unique_ptr<ShardPartition>> shards;
  shards.reserve(ranges.size());
  for (const ShardRange& r : ranges) {
    auto p = std::make_unique<ShardPartition>();
    p->range = r;
    // Same relation names as the single-server catalog, so identical SQL
    // plans against either.
    p->proteins = std::make_unique<storage::Table>("proteins",
                                                   sources.proteins->schema());
    p->tree_nodes = std::make_unique<storage::Table>(
        "tree_nodes", sources.tree_nodes->schema());
    p->node_overlay = std::make_unique<storage::Table>(
        "node_overlay", sources.node_overlay->schema());
    p->activities = std::make_unique<storage::Table>(
        "activities", sources.activities->schema());
    shards.push_back(std::move(p));
  }

  // Rows partitioned by their own pre column. NULL pre (a protein that did
  // not match any tree leaf) is not reachable by an interval predicate, so
  // any fixed owner is exact; shard 0 by convention.
  auto by_pre_column = [&](const storage::Table& src)
      -> util::Result<std::function<int(const storage::Row&)>> {
    DRUGTREE_ASSIGN_OR_RETURN(size_t pre_col, src.schema().IndexOf("pre"));
    return std::function<int(const storage::Row&)>(
        [&ranges, pre_col](const storage::Row& row) {
          const Value& v = row[pre_col];
          if (v.is_null()) return 0;
          return OwnerOf(ranges, static_cast<int32_t>(v.AsInt64()));
        });
  };
  {
    DRUGTREE_ASSIGN_OR_RETURN(auto owner, by_pre_column(*sources.proteins));
    DRUGTREE_RETURN_IF_ERROR(ScatterRows(*sources.proteins, shards, owner,
                                         &ShardPartition::proteins));
  }
  {
    DRUGTREE_ASSIGN_OR_RETURN(auto owner, by_pre_column(*sources.tree_nodes));
    DRUGTREE_RETURN_IF_ERROR(ScatterRows(*sources.tree_nodes, shards, owner,
                                         &ShardPartition::tree_nodes));
  }
  {
    DRUGTREE_ASSIGN_OR_RETURN(auto owner, by_pre_column(*sources.node_overlay));
    DRUGTREE_RETURN_IF_ERROR(ScatterRows(*sources.node_overlay, shards, owner,
                                         &ShardPartition::node_overlay));
  }

  // Activities co-partition with their protein: accession -> leaf pre ->
  // owner shard, so the accession equi-join never crosses shards.
  {
    DRUGTREE_ASSIGN_OR_RETURN(size_t p_acc,
                              sources.proteins->schema().IndexOf("accession"));
    DRUGTREE_ASSIGN_OR_RETURN(size_t p_pre,
                              sources.proteins->schema().IndexOf("pre"));
    std::unordered_map<std::string, int> accession_owner;
    for (storage::RowId rid : sources.proteins->LiveRows()) {
      const storage::Row& row = sources.proteins->row(rid);
      if (row[p_acc].type() != ValueType::kString) continue;
      int owner = row[p_pre].is_null()
                      ? 0
                      : OwnerOf(ranges,
                                static_cast<int32_t>(row[p_pre].AsInt64()));
      accession_owner.emplace(row[p_acc].AsString(), owner);
    }
    DRUGTREE_ASSIGN_OR_RETURN(size_t a_acc,
                              sources.activities->schema().IndexOf("accession"));
    auto owner_of = [&accession_owner, a_acc](const storage::Row& row) {
      if (row[a_acc].type() != ValueType::kString) return 0;
      auto it = accession_owner.find(row[a_acc].AsString());
      return it == accession_owner.end() ? 0 : it->second;
    };
    DRUGTREE_RETURN_IF_ERROR(ScatterRows(*sources.activities, shards, owner_of,
                                         &ShardPartition::activities));
  }

  // Mirror the single-server secondary indexes (Overlay::Build +
  // DrugTree::FinishWiring), then wire each shard's catalog.
  for (auto& p : shards) {
    DRUGTREE_RETURN_IF_ERROR(
        p->proteins->CreateIndex("accession", storage::IndexKind::kHash));
    DRUGTREE_RETURN_IF_ERROR(
        p->proteins->CreateIndex("pre", storage::IndexKind::kBTree));
    DRUGTREE_RETURN_IF_ERROR(
        p->tree_nodes->CreateIndex("pre", storage::IndexKind::kBTree));
    DRUGTREE_RETURN_IF_ERROR(
        p->tree_nodes->CreateIndex("node_id", storage::IndexKind::kHash));
    DRUGTREE_RETURN_IF_ERROR(
        p->node_overlay->CreateIndex("pre", storage::IndexKind::kBTree));
    DRUGTREE_RETURN_IF_ERROR(
        p->node_overlay->CreateIndex("node_id", storage::IndexKind::kHash));
    DRUGTREE_RETURN_IF_ERROR(
        p->activities->CreateIndex("accession", storage::IndexKind::kHash));
    DRUGTREE_RETURN_IF_ERROR(
        p->activities->CreateIndex("affinity_nm", storage::IndexKind::kBTree));
    for (storage::Table* t : {p->proteins.get(), p->tree_nodes.get(),
                              p->node_overlay.get(), p->activities.get()}) {
      DRUGTREE_RETURN_IF_ERROR(t->Analyze());
      DRUGTREE_RETURN_IF_ERROR(t->BuildEncodedSegments());
    }

    p->catalog = std::make_unique<query::Catalog>();
    DRUGTREE_RETURN_IF_ERROR(p->catalog->Register(p->proteins.get()));
    DRUGTREE_RETURN_IF_ERROR(p->catalog->Register(sources.ligands));
    DRUGTREE_RETURN_IF_ERROR(p->catalog->Register(p->activities.get()));
    DRUGTREE_RETURN_IF_ERROR(p->catalog->Register(p->tree_nodes.get()));
    DRUGTREE_RETURN_IF_ERROR(p->catalog->Register(p->node_overlay.get()));
    p->catalog->SetTree(&tree, &index);
    DRUGTREE_RETURN_IF_ERROR(
        p->catalog->BindTree("proteins", {"node_id", "pre", ""}));
    DRUGTREE_RETURN_IF_ERROR(
        p->catalog->BindTree("tree_nodes", {"node_id", "pre", "post"}));
    DRUGTREE_RETURN_IF_ERROR(
        p->catalog->BindTree("node_overlay", {"node_id", "pre", "post"}));
  }
  return shards;
}

}  // namespace shard
}  // namespace drugtree
