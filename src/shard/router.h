// ShardRouter: the front door of the sharded, replicated serving tier.
//
//   client -> ShardRouter::Submit
//          -> route analysis (parse, interval extraction, co-partition check)
//          -> one of
//             * routed:    the single owning shard's least-loaded replica
//             * scatter:   the shard subset overlapping the predicate interval
//             * broadcast: every shard (predicate not provably partitionable)
//             * fallback:  the coordinator (a full-data replica) for plans
//                          that cannot be merged exactly (global aggregates,
//                          DISTINCT, order-less multi-shard output, ...)
//          -> per-shard sub-requests through each replica's own admission /
//             scheduler / memory subtree, inter-shard hops charged on a
//             SimulatedNetwork (virtual-clock deterministic)
//          -> merge (identity for routed; ordered stable merge + LIMIT for
//             scatter) with exact row-for-row equivalence to a single server.
//
// Replicas: each shard range has R read replicas. Sub-requests go to the
// least-loaded healthy replica; a replica marked down is excluded from
// routing, its in-flight sub-requests are cancelled, and the router retries
// the sub-request on a healthy sibling (failover).
//
// Observability: every routed request carries a router-side TraceContext
// with the kRoute / kGather phases and one fetch event per inter-shard hop;
// ExportChromeTrace() merges the router's lanes with every replica's lanes
// (prefixed "s<shard>r<replica>/"), and TailAttributionReport() extends the
// per-phase attribution with per-shard gather p99s and names the slowest
// shard.

#ifndef DRUGTREE_SHARD_ROUTER_H_
#define DRUGTREE_SHARD_ROUTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "integration/network.h"
#include "obs/metrics.h"
#include "obs/trace_store.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/server.h"
#include "shard/partitioner.h"
#include "util/clock.h"
#include "util/result.h"

namespace drugtree {
namespace shard {

enum class RouteKind {
  kRouted,     // single owning shard
  kScatter,    // proper subset of shards, merged
  kBroadcast,  // every shard, merged
  kFallback,   // coordinator (full-data replica)
};

const char* RouteKindName(RouteKind kind);

/// Folds one round-trip observation into an atomic hop-cost EWMA
/// (alpha = 1/4) and returns the stored value. The first observation seeds
/// the average directly (0 means "never observed", so cold shards don't
/// spend their first several requests averaging up from zero), and the
/// whole read-modify-write is a CAS loop: concurrent gathers on the same
/// shard each fold in exactly one observation instead of silently
/// overwriting each other.
int64_t UpdateHopCostEwma(std::atomic<int64_t>& ewma, int64_t micros);

/// The routing decision for one statement — what EXPLAIN surfaces.
struct RouteDecision {
  RouteKind kind = RouteKind::kFallback;
  std::vector<int> shards;  // target shard ids, ascending (empty = coord)
  std::string reason;       // why this kind was chosen

  /// "shards=4 broadcast (no interval constraint)" — the EXPLAIN line.
  std::string ToString() const;
};

struct RouterOptions {
  int num_shards = 4;
  int replicas_per_shard = 1;
  /// Per-replica server knobs. shard_id is stamped per replica by the
  /// router; worker_threads/slots size each replica's own pool.
  server::ServerOptions replica;
  /// Coordinator (full-data fallback replica) server knobs.
  server::ServerOptions coordinator;
  /// Inter-shard hop cost model; rides a router-owned SimulatedNetwork so
  /// virtual-clock determinism and net-channel trace lanes survive. The
  /// channel count is sized to the replica fleet automatically.
  integration::NetworkParams hop;
  /// Request-hop payload (the serialized sub-request).
  uint64_t hop_request_bytes = 256;
  /// Router-side tracing (kRoute/kGather phases + hop fetch events).
  bool enable_tracing = true;
  size_t trace_store_capacity = 4096;
};

class ShardRouter {
 public:
  /// Builds the full topology: partitions the source tables into
  /// `options.num_shards` ranges, spins up num_shards x replicas_per_shard
  /// DrugTreeServer replicas over the per-shard catalogs, plus one
  /// coordinator server over `full_catalog`. `tree`, `index`, `sources`
  /// (including the shared ligands table) and `full_catalog` are borrowed
  /// and must outlive the router. `clock` times everything (SimulatedClock
  /// -> deterministic scatter-gather timelines).
  static util::Result<std::unique_ptr<ShardRouter>> Create(
      const phylo::Tree* tree, const phylo::TreeIndex* index,
      const ShardSourceTables& sources, query::Catalog* full_catalog,
      util::Clock* clock, const RouterOptions& options);

  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes, executes, and merges one request. Blocks until the merged
  /// result is ready (sub-requests themselves run asynchronously on the
  /// replicas' worker pools). The merged outcome's physical_plan is
  /// prefixed with the routing line ("route: shards=2 scatter ...").
  util::Result<query::QueryOutcome> Submit(server::QueryRequest request);

  /// The routing decision for a statement, without executing it.
  RouteDecision Route(const std::string& sql) const;

  // Replica health -------------------------------------------------------

  /// Marks a replica down: it is excluded from routing and every tracked
  /// in-flight sub-request on it is cancelled (the router fails those over
  /// to a healthy sibling).
  void MarkReplicaDown(int shard, int replica);
  void MarkReplicaUp(int shard, int replica);
  bool replica_down(int shard, int replica) const;

  // Introspection --------------------------------------------------------

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int replicas_per_shard() const { return options_.replicas_per_shard; }
  std::vector<ShardRange> ranges() const;
  server::DrugTreeServer* replica_server(int shard, int replica);
  server::DrugTreeServer* coordinator() { return coordinator_.get(); }
  integration::SimulatedNetwork* hop_network() { return hop_network_.get(); }
  util::Clock* clock() const { return clock_; }

  /// Router-side completed request traces (route/gather timelines).
  obs::TraceStore* trace_store() { return trace_store_.get(); }

  struct RouteCounters {
    int64_t routed = 0;
    int64_t scatter = 0;
    int64_t broadcast = 0;
    int64_t fallback = 0;
    int64_t failed = 0;  // requests whose merged result was an error
  };
  RouteCounters route_counters() const;

  struct ShardCounters {
    int64_t sub_requests = 0;
    int64_t shed = 0;             // sub-requests rejected at shard admission
    int64_t deadline_missed = 0;  // sub-requests cancelled past deadline
    int64_t failovers = 0;        // retries on a sibling after a down replica
  };
  ShardCounters shard_counters(int shard) const;

  /// Smoothed per-shard round-trip hop cost (micros) — what per-shard
  /// deadlines are derived from.
  int64_t hop_cost_micros(int shard) const;

  /// Aggregated JSON: topology (ranges, replica fleet), router counters,
  /// per-shard counters + hop costs, and every replica's (and the
  /// coordinator's) full DrugTreeServer::Statusz() snapshot.
  std::string Statusz();

  /// Router-phase tail attribution (route/gather/fetch_blocked shares) plus
  /// per-shard gather p99s and the slowest shard. Publishes
  /// router.tail.shard_p99_micros{shard=} gauges.
  std::string TailAttributionReport();

  /// Chrome trace of the whole tier: router lanes plus every replica's
  /// lanes prefixed "s<shard>r<replica>/" and the coordinator's "coord/".
  std::string ExportChromeTrace();

  /// Drains every replica and the coordinator.
  void Drain();

 private:
  struct Replica {
    std::string id;  // "s2r0"
    std::unique_ptr<server::DrugTreeServer> server;
    std::atomic<bool> down{false};
    std::atomic<int64_t> in_flight{0};
    std::mutex mu;  // guards handles
    uint64_t next_token = 0;
    std::map<uint64_t, server::ResponseHandle> handles;  // in-flight
  };

  struct Shard {
    std::unique_ptr<ShardPartition> partition;
    std::vector<std::unique_ptr<Replica>> replicas;
    std::atomic<int64_t> hop_cost_ewma{0};
    obs::Counter* sub_requests = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Counter* failovers = nullptr;
    obs::HistogramMetric* gather_ms = nullptr;
  };

  ShardRouter() = default;

  /// Routing analysis over a parsed SELECT (interval extraction,
  /// co-partition grouping, scatter-safety).
  RouteDecision RouteSelect(const query::SelectStatement& select) const;
  /// Healthy least-loaded replica index, or -1 when all are down. Orders
  /// candidates by alert-derived health before in-flight load, so a
  /// browned-out (degraded/critical) replica sheds traffic to siblings.
  int PickReplica(const Shard& shard) const;
  /// Advances telemetry (sample + alert evaluation) on every replica and
  /// the coordinator; called once per routed request.
  void TickTelemetry();
  /// Sub-request with the per-shard deadline (request deadline minus the
  /// shard's smoothed hop cost).
  server::QueryRequest MakeSubRequest(const server::QueryRequest& request,
                                      int shard) const;
  /// Tracked submit on a replica; paired with FinishSub after Wait.
  server::ResponseHandle SubmitTracked(Replica& replica,
                                       server::QueryRequest sub,
                                       uint64_t* token);
  void FinishSub(Replica& replica, uint64_t token);
  util::Result<query::QueryOutcome> ScatterGather(
      const RouteDecision& decision, const server::QueryRequest& request,
      const query::SelectStatement& select, obs::TraceContext* trace);
  void ObserveHopCost(Shard& shard, int64_t micros);

  const phylo::Tree* tree_ = nullptr;
  const phylo::TreeIndex* index_ = nullptr;
  query::Catalog* full_catalog_ = nullptr;
  util::Clock* clock_ = nullptr;
  RouterOptions options_;
  std::vector<ShardRange> ranges_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<server::DrugTreeServer> coordinator_;
  std::unique_ptr<integration::SimulatedNetwork> hop_network_;
  std::unique_ptr<obs::TraceStore> trace_store_;
  std::atomic<uint64_t> next_trace_id_{1};

  obs::Counter* decision_counters_[4] = {};  // indexed by RouteKind
  obs::Counter* failed_counter_ = nullptr;

  mutable std::mutex counters_mu_;
  RouteCounters route_counters_;
  std::vector<ShardCounters> shard_counters_;
};

/// Merges scatter partials into one exact result: concatenates the per-shard
/// rows in shard order, stable-sorts by the statement's ORDER BY keys with
/// the same comparator the single-server SortOp uses, and applies LIMIT.
/// Exposed for tests.
util::Result<query::QueryResult> MergePartials(
    std::vector<query::QueryResult> partials,
    const query::SelectStatement& select, const phylo::Tree* tree,
    const phylo::TreeIndex* index);

}  // namespace shard
}  // namespace drugtree

#endif  // DRUGTREE_SHARD_ROUTER_H_
