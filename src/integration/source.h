// Data-source interfaces and record types for the federated layer.
//
// DrugTree integrated live web databases; here each source is a simulated
// remote service: it owns synthetic ground-truth data and charges the
// SimulatedNetwork for every request (per-request latency + payload bytes),
// so the federation costs behave like the real system's.

#ifndef DRUGTREE_INTEGRATION_SOURCE_H_
#define DRUGTREE_INTEGRATION_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "integration/network.h"
#include "util/result.h"

namespace drugtree {
namespace integration {

/// A protein entry as served by the (simulated) protein database.
struct ProteinRecord {
  std::string accession;  // "P0001"
  std::string name;       // "protein P0001"
  std::string family;     // enzyme family label
  std::string organism;
  std::string sequence;   // residues

  /// Approximate wire size in bytes (drives transfer cost).
  uint64_t ApproxBytes() const;
};

/// A binding/assay measurement linking a protein to a ligand.
struct ActivityRecord {
  std::string accession;
  std::string ligand_id;
  double affinity_nm = 0.0;   // dissociation-ish constant, lower = stronger
  std::string assay_type;     // "IC50", "Ki", "Kd"
  std::string source_db;      // provenance label

  uint64_t ApproxBytes() const;
};

/// A fetch whose response payload is known (the data is simulated) but
/// whose network completion lies in the virtual future. `ready_micros` is
/// the absolute virtual time the response lands; callers overlap fetches by
/// submitting several before waiting on any (see FetchWindow).
template <typename T>
struct Deferred {
  T value{};
  int64_t ready_micros = 0;
};

/// Common behaviour of a simulated remote source.
class RemoteSource {
 public:
  RemoteSource(std::string name, SimulatedNetwork* network)
      : name_(std::move(name)), network_(network) {}
  virtual ~RemoteSource() = default;

  const std::string& name() const { return name_; }
  uint64_t num_requests() const { return requests_; }

  /// The link this source charges (null in offline tests).
  SimulatedNetwork* network() { return network_; }

 protected:
  /// Charges one request of `payload_bytes` to the network (blocking in
  /// virtual time).
  void Charge(uint64_t payload_bytes) {
    ++requests_;
    if (network_ != nullptr) network_->Request(payload_bytes);
  }

  /// Schedules one request without blocking; returns the absolute virtual
  /// completion time (0 when there is no network).
  int64_t ChargeAsync(uint64_t payload_bytes) {
    ++requests_;
    if (network_ == nullptr) return 0;
    return network_->SubmitRequest(payload_bytes).ready_micros;
  }

 private:
  std::string name_;
  SimulatedNetwork* network_;
  uint64_t requests_ = 0;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_SOURCE_H_
