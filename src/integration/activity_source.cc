#include "integration/activity_source.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace drugtree {
namespace integration {

namespace {
const char* kAssayTypes[] = {"IC50", "Ki", "Kd"};
const char* kSourceDbs[] = {"assaydb-A", "assaydb-B"};
}  // namespace

util::Result<ActivitySource> ActivitySource::Create(
    const std::vector<std::string>& accessions,
    const std::vector<std::string>& ligand_ids,
    const ActivityGenParams& params, SimulatedNetwork* network,
    util::Rng* rng) {
  if (accessions.empty() || ligand_ids.empty()) {
    return util::Status::InvalidArgument(
        "need at least one protein and one ligand");
  }
  if (params.activities_per_protein <= 0) {
    return util::Status::InvalidArgument(
        "activities_per_protein must be positive");
  }
  ActivitySource src("activity-db", network);
  for (const auto& acc : accessions) {
    // Poisson-ish count via rounded exponential arrivals.
    int count = 0;
    double t = 0;
    while (true) {
      t += rng->NextExponential(1.0);
      if (t > params.activities_per_protein) break;
      ++count;
    }
    count = std::max(1, count);
    for (int i = 0; i < count; ++i) {
      ActivityRecord rec;
      rec.accession = acc;
      // Zipf over ligands: a few promiscuous compounds dominate, as in real
      // assay data.
      rec.ligand_id = ligand_ids[rng->Zipf(
          std::min<uint64_t>(ligand_ids.size(), 200), 0.8)];
      // Log-normal affinity in roughly [1, 100000] nM.
      double logv = rng->NextGaussian() * 1.5 + 5.5;
      rec.affinity_nm = std::clamp(std::exp(logv), 1.0, 100'000.0);
      rec.assay_type = kAssayTypes[rng->Uniform(std::size(kAssayTypes))];
      rec.source_db = kSourceDbs[0];
      size_t idx = src.records_.size();
      src.by_accession_[rec.accession].push_back(idx);
      src.by_ligand_[rec.ligand_id].push_back(idx);
      src.records_.push_back(rec);
      // Conflicting duplicate from the second database.
      if (rng->Bernoulli(params.duplicate_fraction)) {
        ActivityRecord dup = rec;
        dup.source_db = kSourceDbs[1];
        dup.affinity_nm *= rng->UniformDouble(0.8, 1.25);
        size_t didx = src.records_.size();
        src.by_accession_[dup.accession].push_back(didx);
        src.by_ligand_[dup.ligand_id].push_back(didx);
        src.records_.push_back(std::move(dup));
      }
    }
  }
  return src;
}

std::vector<ActivityRecord> ActivitySource::FetchByAccession(
    const std::string& accession) {
  std::vector<ActivityRecord> out;
  uint64_t bytes = 64;
  auto it = by_accession_.find(accession);
  if (it != by_accession_.end()) {
    for (size_t i : it->second) {
      out.push_back(records_[i]);
      bytes += out.back().ApproxBytes();
    }
  }
  Charge(bytes);
  return out;
}

Deferred<std::vector<ActivityRecord>> ActivitySource::FetchByAccessionAsync(
    const std::string& accession) {
  Deferred<std::vector<ActivityRecord>> out;
  uint64_t bytes = 64;
  auto it = by_accession_.find(accession);
  if (it != by_accession_.end()) {
    for (size_t i : it->second) {
      out.value.push_back(records_[i]);
      bytes += out.value.back().ApproxBytes();
    }
  }
  out.ready_micros = ChargeAsync(bytes);
  return out;
}

std::vector<ActivityRecord> ActivitySource::FetchByLigand(
    const std::string& ligand_id) {
  std::vector<ActivityRecord> out;
  uint64_t bytes = 64;
  auto it = by_ligand_.find(ligand_id);
  if (it != by_ligand_.end()) {
    for (size_t i : it->second) {
      out.push_back(records_[i]);
      bytes += out.back().ApproxBytes();
    }
  }
  Charge(bytes);
  return out;
}

std::vector<ActivityRecord> ActivitySource::FetchBatch(
    const std::vector<std::string>& accessions) {
  std::vector<ActivityRecord> out;
  uint64_t bytes = 64;
  for (const auto& acc : accessions) {
    auto it = by_accession_.find(acc);
    if (it == by_accession_.end()) continue;
    for (size_t i : it->second) {
      out.push_back(records_[i]);
      bytes += out.back().ApproxBytes();
    }
  }
  Charge(bytes);
  return out;
}

std::vector<ActivityRecord> ActivitySource::FetchAll() {
  uint64_t bytes = 64;
  for (const auto& r : records_) bytes += r.ApproxBytes();
  Charge(bytes);
  return records_;
}

}  // namespace integration
}  // namespace drugtree
