// Mediator: the data-integration layer. Pulls from the three simulated
// sources, resolves cross-database conflicts, and materializes the relational
// tables the query engine runs over. The fetch strategy (per-record vs
// batched, cached vs not) is configurable — this is exactly the axis
// experiment E3 sweeps.

#ifndef DRUGTREE_INTEGRATION_MEDIATOR_H_
#define DRUGTREE_INTEGRATION_MEDIATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "integration/activity_source.h"
#include "integration/ligand_source.h"
#include "integration/protein_source.h"
#include "integration/semantic_cache.h"
#include "obs/resource_tracker.h"
#include "storage/table.h"
#include "util/result.h"

namespace drugtree {
namespace integration {

/// Fetch strategy knobs.
struct MediatorOptions {
  /// Batched requests (one round trip for many records) vs one request per
  /// record — the dominant integration cost factor.
  bool batch_requests = true;

  /// Consult / populate the semantic cache (may be null in which case this
  /// is ignored).
  bool use_cache = true;

  /// Maximum number of overlapped in-flight requests for per-record fetch
  /// paths. 1 reproduces the historical serial behaviour exactly; higher
  /// values pipeline fetches over the simulated link's channels.
  int max_concurrency = 1;
};

/// The integrated relational snapshot. Schemas:
///   proteins(accession S, name S, family S, organism S, seq_len I,
///            sequence S)
///   ligands(ligand_id S, name S, smiles S, mw D, logp D, hbd I, hba I,
///           rings I, drug_like B)
///   activities(accession S, ligand_id S, affinity_nm D, assay_type S,
///              source_db S)
struct IntegratedDataset {
  std::unique_ptr<storage::Table> proteins;
  std::unique_ptr<storage::Table> ligands;
  std::unique_ptr<storage::Table> activities;
};

/// Schema factories shared by the mediator and tests.
storage::Schema ProteinTableSchema();
storage::Schema LigandTableSchema();
storage::Schema ActivityTableSchema();

/// Bookkeeping from the most recent overlapped integration run.
struct MediatorAsyncStats {
  /// Highest number of simultaneously in-flight requests observed.
  int peak_in_flight = 0;
  /// Requests issued through the overlapped (windowed) path.
  uint64_t async_requests = 0;
};

class Mediator {
 public:
  /// All pointers are borrowed and must outlive the mediator. `cache` may be
  /// null (disables caching regardless of options).
  Mediator(ProteinSource* proteins, LigandSource* ligands,
           ActivitySource* activities, SemanticCache* cache)
      : protein_source_(proteins),
        ligand_source_(ligands),
        activity_source_(activities),
        cache_(cache) {}

  /// Full integration: fetches everything, resolves duplicate activity
  /// measurements (same accession+ligand+assay from different databases are
  /// merged to their geometric-mean affinity with provenance "merged"),
  /// and loads the three tables.
  util::Result<IntegratedDataset> IntegrateAll(const MediatorOptions& options);

  /// Fetches one protein record, via cache when enabled.
  util::Result<ProteinRecord> GetProtein(const std::string& accession,
                                         const MediatorOptions& options);

  /// Fetches the activity list of one protein, via cache when enabled.
  util::Result<std::vector<ActivityRecord>> GetActivities(
      const std::string& accession, const MediatorOptions& options);

  /// Fetches all proteins of a family in one batched request and caches each
  /// member under its fine-grained key (the containment trick the semantic
  /// cache exists for).
  util::Result<std::vector<ProteinRecord>> GetFamily(
      const std::string& family, const MediatorOptions& options);

  /// Overlapped variant of GetFamily: the request is scheduled on the
  /// simulated link without advancing the clock; the caller decides when to
  /// wait on `ready_micros`. Cache hits return ready_micros = 0 (no request).
  /// The cache is populated immediately — in the simulation the payload is
  /// known at submit time, only its arrival time is deferred.
  util::Result<Deferred<std::vector<ProteinRecord>>> GetFamilyAsync(
      const std::string& family, const MediatorOptions& options);

  /// Overlapped variant of GetActivities; same semantics as GetFamilyAsync.
  util::Result<Deferred<std::vector<ActivityRecord>>> GetActivitiesAsync(
      const std::string& accession, const MediatorOptions& options);

  /// The simulated link shared by the wrapped sources (may be null).
  SimulatedNetwork* network() const { return protein_source_->network(); }

  /// Stats from the last IntegrateAll run that used max_concurrency > 1.
  const MediatorAsyncStats& async_stats() const { return async_stats_; }

  /// Accounts IntegrateAll's transient fetch buffers (the record vectors
  /// held between fetch and table load) against a tracker node. Null
  /// detaches; the tracker must outlive the mediator.
  void AttachMemoryTracker(obs::MemoryTracker* tracker) { memory_ = tracker; }

  /// Serialization helpers (exposed for tests and the prefetcher).
  static std::string EncodeProtein(const ProteinRecord& rec);
  static util::Result<ProteinRecord> DecodeProtein(const std::string& blob);
  static std::string EncodeActivities(const std::vector<ActivityRecord>& recs);
  static util::Result<std::vector<ActivityRecord>> DecodeActivities(
      const std::string& blob);

 private:
  bool CacheEnabled(const MediatorOptions& options) const {
    return options.use_cache && cache_ != nullptr;
  }

  ProteinSource* protein_source_;
  LigandSource* ligand_source_;
  ActivitySource* activity_source_;
  SemanticCache* cache_;
  MediatorAsyncStats async_stats_;
  obs::MemoryTracker* memory_ = nullptr;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_MEDIATOR_H_
