// Semantic cache for remote-source responses.
//
// Keys are canonical request descriptors ("protein:acc:P00_0003",
// "activities:acc:P00_0003", "proteins:family:family-2"); payloads are the
// serialized responses. Semantic reuse happens by key decomposition: when a
// coarse request (whole family, batch) is fetched, the mediator also caches
// each member record under its fine-grained key, so later point requests are
// served locally — the cache understands request *containment*, not just
// equality. Charged by payload bytes, evicted LRU.

#ifndef DRUGTREE_INTEGRATION_SEMANTIC_CACHE_H_
#define DRUGTREE_INTEGRATION_SEMANTIC_CACHE_H_

#include <optional>
#include <string>

#include "storage/lru_cache.h"

namespace drugtree {
namespace integration {

class SemanticCache {
 public:
  /// `capacity_bytes` bounds the sum of cached payload sizes.
  explicit SemanticCache(uint64_t capacity_bytes)
      : cache_(capacity_bytes) {
    cache_.EnableMetrics("integration.semantic_cache");
  }

  /// Canonical key builders.
  static std::string ProteinKey(const std::string& accession) {
    return "protein:acc:" + accession;
  }
  static std::string FamilyKey(const std::string& family) {
    return "proteins:family:" + family;
  }
  static std::string LigandKey(const std::string& ligand_id) {
    return "ligand:id:" + ligand_id;
  }
  static std::string ActivitiesByProteinKey(const std::string& accession) {
    return "activities:acc:" + accession;
  }
  static std::string ActivitiesByLigandKey(const std::string& ligand_id) {
    return "activities:lig:" + ligand_id;
  }

  /// Stores a payload under a key (charge = payload size, minimum 1).
  void Put(const std::string& key, std::string payload) {
    uint64_t charge = std::max<uint64_t>(1, payload.size());
    cache_.Put(key, std::move(payload), charge);
  }

  /// Fetches a payload; nullopt on miss.
  std::optional<std::string> Get(const std::string& key) {
    return cache_.Get(key);
  }

  bool Contains(const std::string& key) const { return cache_.Contains(key); }
  void Clear() { cache_.Clear(); }

  /// Mirrors cached payload bytes into a tracker node (resource hierarchy).
  void AttachMemoryTracker(obs::MemoryTracker* tracker) {
    cache_.AttachMemoryTracker(tracker);
  }

  const storage::CacheStats& stats() const { return cache_.stats(); }
  uint64_t used_bytes() const { return cache_.used(); }

 private:
  storage::LruCache<std::string, std::string> cache_;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_SEMANTIC_CACHE_H_
