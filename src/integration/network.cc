#include "integration/network.h"

#include <algorithm>

#include "util/logging.h"

namespace drugtree {
namespace integration {

const SimulatedNetwork::Metrics& SimulatedNetwork::SharedMetrics() {
  static const Metrics metrics = [] {
    auto* registry = obs::MetricRegistry::Default();
    return Metrics{registry->GetCounter("network.requests"),
                   registry->GetCounter("network.bytes"),
                   registry->GetCounter("network.failures"),
                   registry->GetCounter("network.busy_micros")};
  }();
  return metrics;
}

int64_t SimulatedNetwork::EstimateMicros(uint64_t payload_bytes) const {
  int64_t transfer =
      params_.bandwidth_bytes_per_sec > 0
          ? static_cast<int64_t>(payload_bytes * 1'000'000 /
                                 static_cast<uint64_t>(
                                     params_.bandwidth_bytes_per_sec))
          : 0;
  return params_.latency_micros + transfer;
}

bool SimulatedNetwork::TryRequest(uint64_t payload_bytes,
                                  int64_t* charged_micros) {
  const Metrics& metrics = SharedMetrics();
  ++num_requests_;
  metrics.requests->Increment();
  if (params_.failure_probability > 0 &&
      rng_.Bernoulli(params_.failure_probability)) {
    ++num_failures_;
    metrics.failures->Increment();
    clock_->AdvanceMicros(params_.timeout_micros);
    busy_micros_ += params_.timeout_micros;
    metrics.busy_micros->Add(params_.timeout_micros);
    if (charged_micros != nullptr) *charged_micros = params_.timeout_micros;
    DT_LOG(DEBUG) << "request timed out (" << payload_bytes << " bytes, "
                  << params_.timeout_micros << "us charged)";
    return false;
  }
  int64_t base = EstimateMicros(payload_bytes);
  int64_t jitter = 0;
  if (params_.jitter_fraction > 0) {
    double j = rng_.UniformDouble(-params_.jitter_fraction,
                                  params_.jitter_fraction);
    jitter = static_cast<int64_t>(params_.latency_micros * j);
  }
  int64_t total = std::max<int64_t>(0, base + jitter);
  clock_->AdvanceMicros(total);
  bytes_ += payload_bytes;
  busy_micros_ += total;
  metrics.bytes->Add(static_cast<int64_t>(payload_bytes));
  metrics.busy_micros->Add(total);
  if (charged_micros != nullptr) *charged_micros = total;
  return true;
}

int64_t SimulatedNetwork::Request(uint64_t payload_bytes) {
  // Retry until success; a bound guards against failure_probability = 1
  // (after the cap the attempt is treated as delivered so callers make
  // progress rather than spinning forever).
  constexpr int kMaxAttempts = 1000;
  int64_t total = 0;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    int64_t charged = 0;
    bool ok = TryRequest(payload_bytes, &charged);
    total += charged;
    if (ok) return total;
  }
  return total;
}

}  // namespace integration
}  // namespace drugtree
