#include "integration/network.h"

#include <algorithm>

#include "obs/trace_context.h"
#include "util/logging.h"

namespace drugtree {
namespace integration {

const SimulatedNetwork::Metrics& SimulatedNetwork::SharedMetrics() {
  static const Metrics metrics = [] {
    auto* registry = obs::MetricRegistry::Default();
    return Metrics{registry->GetCounter("network.requests"),
                   registry->GetCounter("network.bytes"),
                   registry->GetCounter("network.failures"),
                   registry->GetCounter("network.busy_micros"),
                   registry->GetCounter("network.queue_wait_micros"),
                   registry->GetGauge("network.in_flight")};
  }();
  return metrics;
}

int64_t SimulatedNetwork::EstimateMicros(uint64_t payload_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t transfer =
      params_.bandwidth_bytes_per_sec > 0
          ? static_cast<int64_t>(payload_bytes * 1'000'000 /
                                 static_cast<uint64_t>(
                                     params_.bandwidth_bytes_per_sec))
          : 0;
  return params_.latency_micros + transfer;
}

SimulatedNetwork::Completion SimulatedNetwork::SubmitLocked(
    uint64_t payload_bytes) {
  const Metrics& metrics = SharedMetrics();
  if (channels_.empty()) {
    channels_.assign(static_cast<size_t>(std::max(1, params_.max_concurrency)),
                     0);
  }
  int64_t now = clock_->NowMicros();

  // Earliest-free channel; ties broken by index for determinism.
  size_t chosen = 0;
  for (size_t c = 1; c < channels_.size(); ++c) {
    if (channels_[c] < channels_[chosen]) chosen = c;
  }
  int64_t start = std::max(now, channels_[chosen]);

  // Link sharing: a transfer starting while other channels are still busy
  // gets an equal share of the bandwidth.
  int busy = 1;
  for (size_t c = 0; c < channels_.size(); ++c) {
    if (c != chosen && channels_[c] > start) ++busy;
  }
  metrics.queue_wait_micros->Add(start - now);
  metrics.in_flight->Set(busy);

  // Reliable delivery: retry (charging timeout_micros each time) until one
  // attempt succeeds. The bound guards against failure_probability = 1 —
  // after the cap the attempt is treated as delivered so callers make
  // progress rather than spinning forever.
  constexpr int kMaxAttempts = 1000;
  int64_t total = 0;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    num_requests_.fetch_add(1, std::memory_order_relaxed);
    metrics.requests->Increment();
    if (params_.failure_probability > 0 &&
        rng_.Bernoulli(params_.failure_probability)) {
      num_failures_.fetch_add(1, std::memory_order_relaxed);
      metrics.failures->Increment();
      total += params_.timeout_micros;
      busy_micros_.fetch_add(params_.timeout_micros,
                             std::memory_order_relaxed);
      metrics.busy_micros->Add(params_.timeout_micros);
      DT_LOG(DEBUG) << "request timed out (" << payload_bytes << " bytes, "
                    << params_.timeout_micros << "us charged)";
      continue;
    }
    int64_t transfer =
        params_.bandwidth_bytes_per_sec > 0
            ? static_cast<int64_t>(
                  payload_bytes * 1'000'000 * static_cast<uint64_t>(busy) /
                  static_cast<uint64_t>(params_.bandwidth_bytes_per_sec))
            : 0;
    int64_t base = params_.latency_micros + transfer;
    int64_t jitter = 0;
    if (params_.jitter_fraction > 0) {
      double j = rng_.UniformDouble(-params_.jitter_fraction,
                                    params_.jitter_fraction);
      jitter = static_cast<int64_t>(params_.latency_micros * j);
    }
    int64_t cost = std::max<int64_t>(0, base + jitter);
    total += cost;
    bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    busy_micros_.fetch_add(cost, std::memory_order_relaxed);
    metrics.bytes->Add(static_cast<int64_t>(payload_bytes));
    metrics.busy_micros->Add(cost);
    break;
  }
  channels_[chosen] = start + total;
  // Per-query attribution: tag the requesting thread's trace (if any) with
  // the channel occupancy window so the Chrome export can draw one lane per
  // link channel.
  if (obs::TraceContext* trace = obs::TraceContext::Current()) {
    trace->AddFetchEvent(static_cast<int>(chosen), start, channels_[chosen],
                         payload_bytes);
  }
  return Completion{channels_[chosen], total};
}

SimulatedNetwork::Completion SimulatedNetwork::SubmitRequest(
    uint64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return SubmitLocked(payload_bytes);
}

void SimulatedNetwork::WaitUntil(int64_t ready_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = clock_->NowMicros();
  if (ready_micros > now) {
    clock_->AdvanceMicros(ready_micros - now);
    if (obs::TraceContext* trace = obs::TraceContext::Current()) {
      trace->AddBlockedMicros(obs::TracePhase::kFetchBlocked,
                              ready_micros - now);
    }
  }
}

void SimulatedNetwork::Quiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t latest = clock_->NowMicros();
  for (int64_t free_at : channels_) latest = std::max(latest, free_at);
  int64_t now = clock_->NowMicros();
  if (latest > now) clock_->AdvanceMicros(latest - now);
}

int64_t SimulatedNetwork::Request(uint64_t payload_bytes) {
  Completion done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = SubmitLocked(payload_bytes);
    int64_t now = clock_->NowMicros();
    if (done.ready_micros > now) {
      clock_->AdvanceMicros(done.ready_micros - now);
      if (obs::TraceContext* trace = obs::TraceContext::Current()) {
        trace->AddBlockedMicros(obs::TracePhase::kFetchBlocked,
                                done.ready_micros - now);
      }
    }
  }
  return done.charged_micros;
}

bool SimulatedNetwork::TryRequest(uint64_t payload_bytes,
                                  int64_t* charged_micros) {
  const Metrics& metrics = SharedMetrics();
  std::lock_guard<std::mutex> lock(mu_);
  num_requests_.fetch_add(1, std::memory_order_relaxed);
  metrics.requests->Increment();
  if (params_.failure_probability > 0 &&
      rng_.Bernoulli(params_.failure_probability)) {
    num_failures_.fetch_add(1, std::memory_order_relaxed);
    metrics.failures->Increment();
    clock_->AdvanceMicros(params_.timeout_micros);
    busy_micros_.fetch_add(params_.timeout_micros, std::memory_order_relaxed);
    metrics.busy_micros->Add(params_.timeout_micros);
    if (charged_micros != nullptr) *charged_micros = params_.timeout_micros;
    DT_LOG(DEBUG) << "request timed out (" << payload_bytes << " bytes, "
                  << params_.timeout_micros << "us charged)";
    return false;
  }
  int64_t transfer =
      params_.bandwidth_bytes_per_sec > 0
          ? static_cast<int64_t>(payload_bytes * 1'000'000 /
                                 static_cast<uint64_t>(
                                     params_.bandwidth_bytes_per_sec))
          : 0;
  int64_t base = params_.latency_micros + transfer;
  int64_t jitter = 0;
  if (params_.jitter_fraction > 0) {
    double j = rng_.UniformDouble(-params_.jitter_fraction,
                                  params_.jitter_fraction);
    jitter = static_cast<int64_t>(params_.latency_micros * j);
  }
  int64_t total = std::max<int64_t>(0, base + jitter);
  clock_->AdvanceMicros(total);
  bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  busy_micros_.fetch_add(total, std::memory_order_relaxed);
  metrics.bytes->Add(static_cast<int64_t>(payload_bytes));
  metrics.busy_micros->Add(total);
  if (charged_micros != nullptr) *charged_micros = total;
  return true;
}

}  // namespace integration
}  // namespace drugtree
