#include "integration/protein_source.h"

#include "util/string_util.h"

namespace drugtree {
namespace integration {

namespace {

const char* kOrganisms[] = {"H. sapiens", "M. musculus", "E. coli",
                            "S. cerevisiae", "D. melanogaster"};

}  // namespace

util::Result<ProteinSource> ProteinSource::Create(
    const ProteinSourceParams& params, SimulatedNetwork* network,
    util::Rng* rng) {
  if (params.num_families < 1 || params.taxa_per_family < 2) {
    return util::Status::InvalidArgument(
        "need >= 1 family and >= 2 taxa per family");
  }
  ProteinSource src("protein-db", network);
  for (int f = 0; f < params.num_families; ++f) {
    bio::EvolutionParams ep;
    ep.num_taxa = params.taxa_per_family;
    ep.sequence_length = params.sequence_length;
    ep.id_prefix = util::StringPrintf("P%02d_", f);
    DRUGTREE_ASSIGN_OR_RETURN(bio::EvolvedFamily fam,
                              bio::EvolveFamily(ep, rng));
    src.true_trees_.push_back(fam.true_tree_newick);
    std::string family_label = util::StringPrintf("family-%d", f);
    for (const auto& seq : fam.sequences) {
      ProteinRecord rec;
      rec.accession = seq.id();
      rec.name = "protein " + seq.id();
      rec.family = family_label;
      rec.organism = kOrganisms[rng->Uniform(std::size(kOrganisms))];
      rec.sequence = seq.residues();
      src.by_accession_[rec.accession] = src.records_.size();
      src.records_.push_back(std::move(rec));
    }
  }
  return src;
}

util::Result<ProteinRecord> ProteinSource::FetchByAccession(
    const std::string& accession) {
  auto it = by_accession_.find(accession);
  if (it == by_accession_.end()) {
    Charge(64);  // error responses still cost a round trip
    return util::Status::NotFound("no protein with accession " + accession);
  }
  const ProteinRecord& rec = records_[it->second];
  Charge(rec.ApproxBytes());
  return rec;
}

util::Result<Deferred<ProteinRecord>> ProteinSource::FetchByAccessionAsync(
    const std::string& accession) {
  auto it = by_accession_.find(accession);
  if (it == by_accession_.end()) {
    ChargeAsync(64);  // error responses still cost a round trip
    return util::Status::NotFound("no protein with accession " + accession);
  }
  Deferred<ProteinRecord> out;
  out.value = records_[it->second];
  out.ready_micros = ChargeAsync(out.value.ApproxBytes());
  return out;
}

std::vector<ProteinRecord> ProteinSource::FetchBatch(
    const std::vector<std::string>& accs) {
  std::vector<ProteinRecord> out;
  uint64_t bytes = 64;
  for (const auto& a : accs) {
    auto it = by_accession_.find(a);
    if (it == by_accession_.end()) continue;
    out.push_back(records_[it->second]);
    bytes += out.back().ApproxBytes();
  }
  Charge(bytes);
  return out;
}

std::vector<ProteinRecord> ProteinSource::FetchAll() {
  uint64_t bytes = 64;
  for (const auto& r : records_) bytes += r.ApproxBytes();
  Charge(bytes);
  return records_;
}

std::vector<std::string> ProteinSource::ListAccessions() {
  std::vector<std::string> out;
  uint64_t bytes = 16;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back(r.accession);
    bytes += r.accession.size();
  }
  Charge(bytes);
  return out;
}

std::vector<ProteinRecord> ProteinSource::FetchFamily(
    const std::string& family) {
  std::vector<ProteinRecord> out;
  uint64_t bytes = 64;
  for (const auto& r : records_) {
    if (r.family == family) {
      out.push_back(r);
      bytes += r.ApproxBytes();
    }
  }
  Charge(bytes);
  return out;
}

Deferred<std::vector<ProteinRecord>> ProteinSource::FetchFamilyAsync(
    const std::string& family) {
  Deferred<std::vector<ProteinRecord>> out;
  uint64_t bytes = 64;
  for (const auto& r : records_) {
    if (r.family == family) {
      out.value.push_back(r);
      bytes += r.ApproxBytes();
    }
  }
  out.ready_micros = ChargeAsync(bytes);
  return out;
}

}  // namespace integration
}  // namespace drugtree
