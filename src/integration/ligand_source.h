// Simulated ligand/compound database (ChEMBL/DrugBank-style): serves
// LigandRecords with SMILES plus precomputed properties.

#ifndef DRUGTREE_INTEGRATION_LIGAND_SOURCE_H_
#define DRUGTREE_INTEGRATION_LIGAND_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "chem/properties.h"
#include "chem/synthetic_ligands.h"
#include "integration/source.h"
#include "util/result.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {

/// What the ligand database serves per compound.
struct LigandEntry {
  chem::LigandRecord record;
  chem::MolecularProperties properties;

  uint64_t ApproxBytes() const {
    return record.ligand_id.size() + record.name.size() +
           record.smiles.size() + sizeof(chem::MolecularProperties) + 32;
  }
};

class LigandSource : public RemoteSource {
 public:
  /// Generates `num_ligands` compounds deterministically.
  static util::Result<LigandSource> Create(int num_ligands,
                                           const chem::LigandGenParams& params,
                                           SimulatedNetwork* network,
                                           util::Rng* rng);

  /// One compound by id; one request.
  util::Result<LigandEntry> FetchById(const std::string& ligand_id);

  /// One compound by id, scheduled without blocking.
  util::Result<Deferred<LigandEntry>> FetchByIdAsync(
      const std::string& ligand_id);

  /// Batch fetch in a single request; unknown ids are skipped.
  std::vector<LigandEntry> FetchBatch(const std::vector<std::string>& ids);

  /// Bulk export; one request.
  std::vector<LigandEntry> FetchAll();

  /// Catalog of ids; one cheap request.
  std::vector<std::string> ListIds();

  size_t NumRecords() const { return entries_.size(); }

 private:
  LigandSource(std::string name, SimulatedNetwork* network)
      : RemoteSource(std::move(name), network) {}

  std::vector<LigandEntry> entries_;
  std::unordered_map<std::string, size_t> by_id_;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_LIGAND_SOURCE_H_
