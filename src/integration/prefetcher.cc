#include "integration/prefetcher.h"

#include <algorithm>

#include "integration/network.h"
#include "obs/metrics.h"

namespace drugtree {
namespace integration {

namespace {

/// Registry mirrors of PrefetchStats, shared across prefetcher instances.
struct PrefetchMetrics {
  obs::Counter* prefetched;
  obs::Counter* useful;
  obs::Counter* demand;
  obs::Counter* hits;
};

const PrefetchMetrics& Metrics() {
  static const PrefetchMetrics metrics = [] {
    auto* registry = obs::MetricRegistry::Default();
    return PrefetchMetrics{
        registry->GetCounter("integration.prefetch.records"),
        registry->GetCounter("integration.prefetch.useful"),
        registry->GetCounter("integration.prefetch.demand_fetches"),
        registry->GetCounter("integration.prefetch.cache_hits")};
  }();
  return metrics;
}

}  // namespace

void TreeAwarePrefetcher::MarkPrefetched(const std::string& cache_key) {
  if (speculative_.insert(cache_key).second) {
    ++stats_.prefetched_records;
    Metrics().prefetched->Increment();
  }
}

void TreeAwarePrefetcher::AccountRequest(const std::string& cache_key,
                                         bool was_hit) {
  if (was_hit) {
    ++stats_.cache_hits;
    Metrics().hits->Increment();
    auto it = speculative_.find(cache_key);
    if (it != speculative_.end()) {
      ++stats_.useful_prefetches;
      Metrics().useful->Increment();
      speculative_.erase(it);  // count usefulness once
    }
  } else {
    ++stats_.demand_fetches;
    Metrics().demand->Increment();
  }
}

util::Result<ProteinRecord> TreeAwarePrefetcher::GetProtein(
    const std::string& accession) {
  const std::string key = SemanticCache::ProteinKey(accession);
  MediatorOptions mopts;  // cache on, batch on
  bool hit = cache_->Contains(key);
  AccountRequest(key, hit);
  if (hit) return mediator_->GetProtein(accession, mopts);

  // Miss: demand-fetch the record itself first so the caller is not blocked
  // on widening failures.
  DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec,
                            mediator_->GetProtein(accession, mopts));
  if (options_.widen_to_family) {
    if (options_.async_prefetch && mediator_->network() != nullptr) {
      // Overlapped widening: schedule the family (and activity) fetches on
      // spare link channels without advancing the clock. The payloads are
      // installed into the cache immediately; the time cost is deferred
      // until Quiesce() or the natural serialization of a later request.
      DRUGTREE_ASSIGN_OR_RETURN(Deferred<std::vector<ProteinRecord>> family,
                                mediator_->GetFamilyAsync(rec.family, mopts));
      pending_ready_micros_ =
          std::max(pending_ready_micros_, family.ready_micros);
      for (const auto& member : family.value) {
        if (member.accession == accession) continue;
        MarkPrefetched(SemanticCache::ProteinKey(member.accession));
        if (options_.prefetch_activities) {
          const std::string akey =
              SemanticCache::ActivitiesByProteinKey(member.accession);
          if (!cache_->Contains(akey)) {
            DRUGTREE_ASSIGN_OR_RETURN(
                Deferred<std::vector<ActivityRecord>> acts,
                mediator_->GetActivitiesAsync(member.accession, mopts));
            pending_ready_micros_ =
                std::max(pending_ready_micros_, acts.ready_micros);
            MarkPrefetched(akey);
          }
        }
      }
    } else {
      DRUGTREE_ASSIGN_OR_RETURN(std::vector<ProteinRecord> family,
                                mediator_->GetFamily(rec.family, mopts));
      for (const auto& member : family) {
        if (member.accession == accession) continue;
        MarkPrefetched(SemanticCache::ProteinKey(member.accession));
        if (options_.prefetch_activities) {
          const std::string akey =
              SemanticCache::ActivitiesByProteinKey(member.accession);
          if (!cache_->Contains(akey)) {
            DRUGTREE_RETURN_IF_ERROR(
                mediator_->GetActivities(member.accession, mopts).status());
            MarkPrefetched(akey);
          }
        }
      }
    }
  }
  return rec;
}

void TreeAwarePrefetcher::Quiesce() {
  if (pending_ready_micros_ == 0) return;
  if (SimulatedNetwork* net = mediator_->network()) {
    net->WaitUntil(pending_ready_micros_);
  }
  pending_ready_micros_ = 0;
}

util::Result<std::vector<ActivityRecord>> TreeAwarePrefetcher::GetActivities(
    const std::string& accession) {
  const std::string key = SemanticCache::ActivitiesByProteinKey(accession);
  bool hit = cache_->Contains(key);
  AccountRequest(key, hit);
  MediatorOptions mopts;
  return mediator_->GetActivities(accession, mopts);
}

}  // namespace integration
}  // namespace drugtree
