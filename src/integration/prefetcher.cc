#include "integration/prefetcher.h"

namespace drugtree {
namespace integration {

void TreeAwarePrefetcher::MarkPrefetched(const std::string& cache_key) {
  if (speculative_.insert(cache_key).second) ++stats_.prefetched_records;
}

void TreeAwarePrefetcher::AccountRequest(const std::string& cache_key,
                                         bool was_hit) {
  if (was_hit) {
    ++stats_.cache_hits;
    auto it = speculative_.find(cache_key);
    if (it != speculative_.end()) {
      ++stats_.useful_prefetches;
      speculative_.erase(it);  // count usefulness once
    }
  } else {
    ++stats_.demand_fetches;
  }
}

util::Result<ProteinRecord> TreeAwarePrefetcher::GetProtein(
    const std::string& accession) {
  const std::string key = SemanticCache::ProteinKey(accession);
  MediatorOptions mopts;  // cache on, batch on
  bool hit = cache_->Contains(key);
  AccountRequest(key, hit);
  if (hit) return mediator_->GetProtein(accession, mopts);

  // Miss: demand-fetch the record itself first so the caller is not blocked
  // on widening failures.
  DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec,
                            mediator_->GetProtein(accession, mopts));
  if (options_.widen_to_family) {
    DRUGTREE_ASSIGN_OR_RETURN(std::vector<ProteinRecord> family,
                              mediator_->GetFamily(rec.family, mopts));
    for (const auto& member : family) {
      if (member.accession == accession) continue;
      MarkPrefetched(SemanticCache::ProteinKey(member.accession));
      if (options_.prefetch_activities) {
        const std::string akey =
            SemanticCache::ActivitiesByProteinKey(member.accession);
        if (!cache_->Contains(akey)) {
          DRUGTREE_RETURN_IF_ERROR(
              mediator_->GetActivities(member.accession, mopts).status());
          MarkPrefetched(akey);
        }
      }
    }
  }
  return rec;
}

util::Result<std::vector<ActivityRecord>> TreeAwarePrefetcher::GetActivities(
    const std::string& accession) {
  const std::string key = SemanticCache::ActivitiesByProteinKey(accession);
  bool hit = cache_->Contains(key);
  AccountRequest(key, hit);
  MediatorOptions mopts;
  return mediator_->GetActivities(accession, mopts);
}

}  // namespace integration
}  // namespace drugtree
