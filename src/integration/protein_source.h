// Simulated protein database (UniProt-style): serves ProteinRecords for an
// evolved synthetic family set, with per-request network charges.

#ifndef DRUGTREE_INTEGRATION_PROTEIN_SOURCE_H_
#define DRUGTREE_INTEGRATION_PROTEIN_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "bio/synthetic.h"
#include "integration/source.h"
#include "util/result.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {

/// Parameters for populating the simulated protein database.
struct ProteinSourceParams {
  /// Number of independent families; family f gets a label "family-f".
  int num_families = 4;
  /// Taxa per family.
  int taxa_per_family = 16;
  int sequence_length = 120;
};

class ProteinSource : public RemoteSource {
 public:
  /// Builds the source's ground truth deterministically from `rng`.
  static util::Result<ProteinSource> Create(const ProteinSourceParams& params,
                                            SimulatedNetwork* network,
                                            util::Rng* rng);

  /// One accession. Charges one request.
  util::Result<ProteinRecord> FetchByAccession(const std::string& accession);

  /// One accession, scheduled without blocking: the record is returned
  /// immediately, the network charge completes at `ready_micros`.
  util::Result<Deferred<ProteinRecord>> FetchByAccessionAsync(
      const std::string& accession);

  /// All records of one family, scheduled without blocking.
  Deferred<std::vector<ProteinRecord>> FetchFamilyAsync(
      const std::string& family);

  /// A batch of accessions in one request (one latency charge, summed
  /// payload) — the batching optimization E3 measures. Unknown accessions
  /// are skipped.
  std::vector<ProteinRecord> FetchBatch(const std::vector<std::string>& accs);

  /// Every record, one request (bulk export).
  std::vector<ProteinRecord> FetchAll();

  /// All accessions in one cheap catalog request.
  std::vector<std::string> ListAccessions();

  /// All records of one family, one request.
  std::vector<ProteinRecord> FetchFamily(const std::string& family);

  size_t NumRecords() const { return records_.size(); }

  /// Ground-truth generating trees per family (Newick), for E5 accuracy
  /// scoring. Not part of the remote API; no network charge.
  const std::vector<std::string>& true_trees() const { return true_trees_; }

 private:
  ProteinSource(std::string name, SimulatedNetwork* network)
      : RemoteSource(std::move(name), network) {}

  std::vector<ProteinRecord> records_;
  std::unordered_map<std::string, size_t> by_accession_;
  std::vector<std::string> true_trees_;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_PROTEIN_SOURCE_H_
