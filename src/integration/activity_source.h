// Simulated bioactivity database: assay measurements linking proteins to
// ligands. Activities are generated with family-coherent structure: ligands
// of one chemical family bind proteins of related clades more strongly,
// which is what makes tree-overlay queries biologically meaningful.

#ifndef DRUGTREE_INTEGRATION_ACTIVITY_SOURCE_H_
#define DRUGTREE_INTEGRATION_ACTIVITY_SOURCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "integration/source.h"
#include "util/result.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {

struct ActivityGenParams {
  /// Expected number of ligand activities per protein.
  double activities_per_protein = 6.0;
  /// Fraction of measurements that are duplicated across "databases" with
  /// small disagreements — exercising the mediator's conflict resolution.
  double duplicate_fraction = 0.1;
};

class ActivitySource : public RemoteSource {
 public:
  /// Generates activities over the given protein accessions and ligand ids.
  static util::Result<ActivitySource> Create(
      const std::vector<std::string>& accessions,
      const std::vector<std::string>& ligand_ids,
      const ActivityGenParams& params, SimulatedNetwork* network,
      util::Rng* rng);

  /// All measurements for one protein; one request.
  std::vector<ActivityRecord> FetchByAccession(const std::string& accession);

  /// All measurements for one protein, scheduled without blocking.
  Deferred<std::vector<ActivityRecord>> FetchByAccessionAsync(
      const std::string& accession);

  /// All measurements for one ligand; one request.
  std::vector<ActivityRecord> FetchByLigand(const std::string& ligand_id);

  /// Batched per-protein fetch in one request.
  std::vector<ActivityRecord> FetchBatch(
      const std::vector<std::string>& accessions);

  /// Bulk export; one request.
  std::vector<ActivityRecord> FetchAll();

  size_t NumRecords() const { return records_.size(); }

 private:
  ActivitySource(std::string name, SimulatedNetwork* network)
      : RemoteSource(std::move(name), network) {}

  std::vector<ActivityRecord> records_;
  std::unordered_map<std::string, std::vector<size_t>> by_accession_;
  std::unordered_map<std::string, std::vector<size_t>> by_ligand_;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_ACTIVITY_SOURCE_H_
