// Simulated wide-area network. Every remote-source request is charged
// request latency plus payload transfer time against a Clock — a
// SimulatedClock in benchmarks (fast, deterministic) or a RealClock in the
// interactive examples. This stands in for the web round trips the real
// DrugTree paid to its protein/ligand databases.
//
// The link has `max_concurrency` channels. Requests are scheduled onto the
// earliest-free channel in *virtual* time: SubmitRequest records when the
// response will be ready (completion-time bookkeeping) without advancing
// the clock; WaitUntil advances the clock to a completion. Latencies of
// concurrent requests overlap; transfers share link bandwidth (a transfer
// that starts while k channels are busy runs at bandwidth/k). At
// max_concurrency = 1 the blocking Request path is bit-identical to the
// historical serial model.

#ifndef DRUGTREE_INTEGRATION_NETWORK_H_
#define DRUGTREE_INTEGRATION_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {

/// Link parameters, roughly a 2013-era broadband path to a public database.
struct NetworkParams {
  int64_t latency_micros = 50'000;          // one-way-ish request overhead
  int64_t bandwidth_bytes_per_sec = 1'000'000;
  double jitter_fraction = 0.1;             // +- uniform jitter on latency
  /// Probability a request times out (failure injection). A failed request
  /// costs timeout_micros and transfers nothing; sources retry.
  double failure_probability = 0.0;
  int64_t timeout_micros = 2'000'000;
  /// In-flight request channels. 1 = the historical serial link; >1 lets
  /// request latencies overlap while transfers share bandwidth.
  int max_concurrency = 1;
};

/// Charges simulated time for requests and transfers; accumulates counters.
/// Scheduling state (channels, rng, params) is mutex-protected and the
/// counters are atomics, so concurrent callers — thread-pool morsel workers,
/// an overlapping prefetcher — are race-free.
class SimulatedNetwork {
 public:
  SimulatedNetwork(util::Clock* clock, NetworkParams params, uint64_t seed = 7)
      : clock_(clock), params_(params), rng_(seed) {}

  /// Registry counters mirrored by every instance (pointers cached once;
  /// bumping is two relaxed atomic adds per request).
  struct Metrics {
    obs::Counter* requests;
    obs::Counter* bytes;
    obs::Counter* failures;
    obs::Counter* busy_micros;
    obs::Counter* queue_wait_micros;
    obs::Gauge* in_flight;
  };

  /// Outcome of scheduling one (reliable) request.
  struct Completion {
    int64_t ready_micros = 0;    // absolute virtual time the response lands
    int64_t charged_micros = 0;  // link busy time charged, retries included
  };

  /// Schedules one request carrying `payload_bytes` of response data onto
  /// the earliest-free channel WITHOUT advancing the clock. With failure
  /// injection enabled this is the reliable path (failed attempts charge
  /// timeout_micros on the same channel until one succeeds).
  Completion SubmitRequest(uint64_t payload_bytes);

  /// Advances the clock to `ready_micros` (no-op if the clock is already
  /// past it).
  void WaitUntil(int64_t ready_micros);

  /// Advances the clock past every scheduled completion (drains the link).
  void Quiesce();

  /// Blocking request: SubmitRequest + WaitUntil. Returns the microseconds
  /// charged. Bit-identical to the historical serial path when
  /// max_concurrency == 1.
  int64_t Request(uint64_t payload_bytes);

  /// One blocking attempt: returns false (charging timeout_micros) with
  /// probability failure_probability, true (charging the normal cost)
  /// otherwise. `charged_micros` may be null.
  bool TryRequest(uint64_t payload_bytes, int64_t* charged_micros);

  /// Cost model without advancing time (used by the prefetcher's budgeter).
  int64_t EstimateMicros(uint64_t payload_bytes) const;

  uint64_t num_requests() const {
    return num_requests_.load(std::memory_order_relaxed);
  }
  uint64_t num_failures() const {
    return num_failures_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_transferred() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  int64_t busy_micros() const {
    return busy_micros_.load(std::memory_order_relaxed);
  }

  NetworkParams params() const {
    std::lock_guard<std::mutex> lock(mu_);
    return params_;
  }
  void set_params(const NetworkParams& p) {
    std::lock_guard<std::mutex> lock(mu_);
    params_ = p;
    channels_.clear();  // re-sized lazily to the new max_concurrency
  }

  util::Clock* clock() { return clock_; }

 private:
  static const Metrics& SharedMetrics();

  /// Schedules one reliable request; assumes mu_ is held.
  Completion SubmitLocked(uint64_t payload_bytes);

  util::Clock* clock_;
  mutable std::mutex mu_;        // guards params_, rng_, channels_
  NetworkParams params_;
  util::Rng rng_;
  std::vector<int64_t> channels_;  // per-channel free-at time (virtual)
  std::atomic<uint64_t> num_requests_{0};
  std::atomic<uint64_t> num_failures_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<int64_t> busy_micros_{0};
};

/// Bounded in-flight window over async submissions, the mediator's and
/// prefetcher's batching primitive. Callers Acquire() a slot before
/// submitting (which, when the window is full, waits — in virtual time —
/// for the earliest outstanding completion), then Track() the new
/// completion, and Drain() once the batch is issued.
class FetchWindow {
 public:
  /// `network` may be null (no virtual-time accounting; everything is
  /// immediately complete).
  FetchWindow(SimulatedNetwork* network, int window)
      : network_(network), window_(window < 1 ? 1 : window) {}

  /// Blocks (virtually) until fewer than `window` submissions are
  /// outstanding.
  void Acquire() {
    Prune();
    while (static_cast<int>(outstanding_.size()) >= window_) {
      int64_t earliest = outstanding_.top();
      outstanding_.pop();
      if (network_ != nullptr) network_->WaitUntil(earliest);
      Prune();
    }
  }

  /// Records a submission's completion time.
  void Track(int64_t ready_micros) {
    outstanding_.push(ready_micros);
    int depth = static_cast<int>(outstanding_.size());
    if (depth > peak_in_flight_) peak_in_flight_ = depth;
  }

  /// Waits for every outstanding completion.
  void Drain() {
    int64_t last = 0;
    while (!outstanding_.empty()) {
      last = outstanding_.top();
      outstanding_.pop();
    }
    if (network_ != nullptr && last > 0) network_->WaitUntil(last);
  }

  /// High-water mark of simultaneously outstanding submissions (what the
  /// bounded-window tests assert on).
  int peak_in_flight() const { return peak_in_flight_; }

 private:
  /// Drops completions the clock has already passed.
  void Prune() {
    if (network_ == nullptr) return;
    int64_t now = network_->clock()->NowMicros();
    while (!outstanding_.empty() && outstanding_.top() <= now) {
      outstanding_.pop();
    }
  }

  SimulatedNetwork* network_;
  int window_;
  int peak_in_flight_ = 0;
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>
      outstanding_;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_NETWORK_H_
