// Simulated wide-area network. Every remote-source request is charged
// request latency plus payload transfer time against a Clock — a
// SimulatedClock in benchmarks (fast, deterministic) or a RealClock in the
// interactive examples. This stands in for the web round trips the real
// DrugTree paid to its protein/ligand databases.

#ifndef DRUGTREE_INTEGRATION_NETWORK_H_
#define DRUGTREE_INTEGRATION_NETWORK_H_

#include <cstdint>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {

/// Link parameters, roughly a 2013-era broadband path to a public database.
struct NetworkParams {
  int64_t latency_micros = 50'000;          // one-way-ish request overhead
  int64_t bandwidth_bytes_per_sec = 1'000'000;
  double jitter_fraction = 0.1;             // +- uniform jitter on latency
  /// Probability a request times out (failure injection). A failed request
  /// costs timeout_micros and transfers nothing; sources retry.
  double failure_probability = 0.0;
  int64_t timeout_micros = 2'000'000;
};

/// Charges simulated time for requests and transfers; accumulates counters.
class SimulatedNetwork {
 public:
  SimulatedNetwork(util::Clock* clock, NetworkParams params, uint64_t seed = 7)
      : clock_(clock), params_(params), rng_(seed) {}

  /// Registry counters mirrored by every instance (pointers cached once;
  /// bumping is two relaxed atomic adds per request).
  struct Metrics {
    obs::Counter* requests;
    obs::Counter* bytes;
    obs::Counter* failures;
    obs::Counter* busy_micros;
  };

  /// Performs one request carrying `payload_bytes` of response data:
  /// advances the clock by latency (+jitter) + transfer time. Returns the
  /// microseconds charged. With failure injection enabled this is the
  /// reliable path (failed attempts are retried internally until one
  /// succeeds, each charging timeout_micros).
  int64_t Request(uint64_t payload_bytes);

  /// One attempt: returns false (charging timeout_micros) with probability
  /// failure_probability, true (charging the normal cost) otherwise.
  /// `charged_micros` may be null.
  bool TryRequest(uint64_t payload_bytes, int64_t* charged_micros);

  /// Cost model without advancing time (used by the prefetcher's budgeter).
  int64_t EstimateMicros(uint64_t payload_bytes) const;

  uint64_t num_requests() const { return num_requests_; }
  uint64_t num_failures() const { return num_failures_; }
  uint64_t bytes_transferred() const { return bytes_; }
  int64_t busy_micros() const { return busy_micros_; }

  const NetworkParams& params() const { return params_; }
  void set_params(const NetworkParams& p) { params_ = p; }

  util::Clock* clock() { return clock_; }

 private:
  static const Metrics& SharedMetrics();

  util::Clock* clock_;
  NetworkParams params_;
  util::Rng rng_;
  uint64_t num_requests_ = 0;
  uint64_t num_failures_ = 0;
  uint64_t bytes_ = 0;
  int64_t busy_micros_ = 0;
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_NETWORK_H_
