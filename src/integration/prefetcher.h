// Tree-aware prefetcher.
//
// Interactive DrugTree sessions show strong phylogenetic locality: after an
// analyst inspects one protein they usually inspect its clade neighbours.
// The prefetcher exploits this: on a cache miss for an accession it widens
// the fetch to the protein's whole family (one batched request) and installs
// every member — plus their activity lists, optionally — into the semantic
// cache. Experiment E3 measures the effect; usefulness accounting
// (prefetched entries that were later actually requested) is tracked here.

#ifndef DRUGTREE_INTEGRATION_PREFETCHER_H_
#define DRUGTREE_INTEGRATION_PREFETCHER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "integration/mediator.h"
#include "util/result.h"

namespace drugtree {
namespace integration {

struct PrefetcherStats {
  uint64_t demand_fetches = 0;     // cache-missing requests we served
  uint64_t cache_hits = 0;         // requests served from cache
  uint64_t prefetched_records = 0; // records installed speculatively
  uint64_t useful_prefetches = 0;  // speculative installs later requested

  double Usefulness() const {
    return prefetched_records
               ? static_cast<double>(useful_prefetches) /
                     static_cast<double>(prefetched_records)
               : 0.0;
  }
};

struct PrefetcherOptions {
  /// Widen protein misses to the whole family.
  bool widen_to_family = true;
  /// Also prefetch the activity lists of the widened members.
  bool prefetch_activities = false;
  /// Issue the widening fetches as overlapped requests on spare link
  /// channels instead of blocking the demand fetch on them. The caller (or
  /// the next demand fetch) pays the wait via Quiesce(). Off by default so
  /// the serial timing of existing sessions is unchanged.
  bool async_prefetch = false;
};

class TreeAwarePrefetcher {
 public:
  /// `mediator` and `cache` are borrowed. The prefetcher needs the cache the
  /// mediator writes through (the same instance).
  TreeAwarePrefetcher(Mediator* mediator, SemanticCache* cache,
                      PrefetcherOptions options)
      : mediator_(mediator), cache_(cache), options_(options) {}

  /// Demand-fetches one protein with prefetching side effects.
  util::Result<ProteinRecord> GetProtein(const std::string& accession);

  /// Demand-fetches one protein's activities with prefetching side effects.
  util::Result<std::vector<ActivityRecord>> GetActivities(
      const std::string& accession);

  /// Waits until all overlapped prefetch requests have completed (advances
  /// the simulated clock to the latest outstanding completion). No-op when
  /// async_prefetch is off or nothing is outstanding.
  void Quiesce();

  const PrefetcherStats& stats() const { return stats_; }

 private:
  void MarkPrefetched(const std::string& cache_key);
  void AccountRequest(const std::string& cache_key, bool was_hit);

  Mediator* mediator_;
  SemanticCache* cache_;
  PrefetcherOptions options_;
  PrefetcherStats stats_;
  std::unordered_set<std::string> speculative_;  // keys installed by prefetch
  int64_t pending_ready_micros_ = 0;  // latest overlapped completion time
};

}  // namespace integration
}  // namespace drugtree

#endif  // DRUGTREE_INTEGRATION_PREFETCHER_H_
