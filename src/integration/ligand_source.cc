#include "integration/ligand_source.h"

#include "chem/smiles.h"

namespace drugtree {
namespace integration {

util::Result<LigandSource> LigandSource::Create(
    int num_ligands, const chem::LigandGenParams& params,
    SimulatedNetwork* network, util::Rng* rng) {
  DRUGTREE_ASSIGN_OR_RETURN(std::vector<chem::LigandRecord> records,
                            chem::GenerateLigands(num_ligands, params, rng));
  LigandSource src("ligand-db", network);
  for (auto& rec : records) {
    DRUGTREE_ASSIGN_OR_RETURN(chem::Molecule mol,
                              chem::ParseSmiles(rec.smiles));
    LigandEntry entry;
    entry.properties = chem::ComputeProperties(mol);
    entry.record = std::move(rec);
    src.by_id_[entry.record.ligand_id] = src.entries_.size();
    src.entries_.push_back(std::move(entry));
  }
  return src;
}

util::Result<LigandEntry> LigandSource::FetchById(
    const std::string& ligand_id) {
  auto it = by_id_.find(ligand_id);
  if (it == by_id_.end()) {
    Charge(64);
    return util::Status::NotFound("no ligand with id " + ligand_id);
  }
  const LigandEntry& e = entries_[it->second];
  Charge(e.ApproxBytes());
  return e;
}

util::Result<Deferred<LigandEntry>> LigandSource::FetchByIdAsync(
    const std::string& ligand_id) {
  auto it = by_id_.find(ligand_id);
  if (it == by_id_.end()) {
    ChargeAsync(64);
    return util::Status::NotFound("no ligand with id " + ligand_id);
  }
  Deferred<LigandEntry> out;
  out.value = entries_[it->second];
  out.ready_micros = ChargeAsync(out.value.ApproxBytes());
  return out;
}

std::vector<LigandEntry> LigandSource::FetchBatch(
    const std::vector<std::string>& ids) {
  std::vector<LigandEntry> out;
  uint64_t bytes = 64;
  for (const auto& id : ids) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;
    out.push_back(entries_[it->second]);
    bytes += out.back().ApproxBytes();
  }
  Charge(bytes);
  return out;
}

std::vector<LigandEntry> LigandSource::FetchAll() {
  uint64_t bytes = 64;
  for (const auto& e : entries_) bytes += e.ApproxBytes();
  Charge(bytes);
  return entries_;
}

std::vector<std::string> LigandSource::ListIds() {
  std::vector<std::string> out;
  uint64_t bytes = 16;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    out.push_back(e.record.ligand_id);
    bytes += out.back().size();
  }
  Charge(bytes);
  return out;
}

}  // namespace integration
}  // namespace drugtree
