// SemanticCache is header-only; this TU pins the header into the build.
#include "integration/semantic_cache.h"
