#include "integration/mediator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "integration/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace drugtree {
namespace integration {

using storage::Column;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

Schema ProteinTableSchema() {
  auto s = Schema::Create({
      {"accession", ValueType::kString, false},
      {"name", ValueType::kString, false},
      {"family", ValueType::kString, false},
      {"organism", ValueType::kString, false},
      {"seq_len", ValueType::kInt64, false},
      {"sequence", ValueType::kString, false},
  });
  DT_CHECK(s.ok());
  return *s;
}

Schema LigandTableSchema() {
  auto s = Schema::Create({
      {"ligand_id", ValueType::kString, false},
      {"name", ValueType::kString, false},
      {"smiles", ValueType::kString, false},
      {"mw", ValueType::kDouble, false},
      {"logp", ValueType::kDouble, false},
      {"hbd", ValueType::kInt64, false},
      {"hba", ValueType::kInt64, false},
      {"rings", ValueType::kInt64, false},
      {"drug_like", ValueType::kBool, false},
  });
  DT_CHECK(s.ok());
  return *s;
}

Schema ActivityTableSchema() {
  auto s = Schema::Create({
      {"accession", ValueType::kString, false},
      {"ligand_id", ValueType::kString, false},
      {"affinity_nm", ValueType::kDouble, false},
      {"assay_type", ValueType::kString, false},
      {"source_db", ValueType::kString, false},
  });
  DT_CHECK(s.ok());
  return *s;
}

namespace {

Row ProteinToRow(const ProteinRecord& p) {
  return {Value::String(p.accession),
          Value::String(p.name),
          Value::String(p.family),
          Value::String(p.organism),
          Value::Int64(static_cast<int64_t>(p.sequence.size())),
          Value::String(p.sequence)};
}

Row LigandToRow(const LigandEntry& e) {
  const auto& pr = e.properties;
  return {Value::String(e.record.ligand_id),
          Value::String(e.record.name),
          Value::String(e.record.smiles),
          Value::Double(pr.molecular_weight),
          Value::Double(pr.log_p),
          Value::Int64(pr.hbd),
          Value::Int64(pr.hba),
          Value::Int64(pr.ring_count),
          Value::Bool(pr.IsDrugLike())};
}

Row ActivityToRow(const ActivityRecord& a) {
  return {Value::String(a.accession), Value::String(a.ligand_id),
          Value::Double(a.affinity_nm), Value::String(a.assay_type),
          Value::String(a.source_db)};
}

/// Per-source fetch counters (records pulled from each wrapped database).
obs::Counter* FetchCounter(const char* source) {
  return obs::MetricRegistry::Default()->GetCounter(
      std::string("integration.fetch.") + source);
}

/// Summed record sizes of a fetch buffer (each record type exposes its own
/// wire-size estimate).
template <typename T>
int64_t SumApproxBytes(const std::vector<T>& recs) {
  int64_t bytes = 0;
  for (const auto& r : recs) bytes += static_cast<int64_t>(r.ApproxBytes());
  return bytes;
}

}  // namespace

std::string Mediator::EncodeProtein(const ProteinRecord& rec) {
  std::string out;
  storage::EncodeRow(ProteinToRow(rec), &out);
  return out;
}

util::Result<ProteinRecord> Mediator::DecodeProtein(const std::string& blob) {
  size_t off = 0;
  DRUGTREE_ASSIGN_OR_RETURN(Row row, storage::DecodeRow(blob, &off));
  if (row.size() != 6) {
    return util::Status::ParseError("bad protein blob arity");
  }
  ProteinRecord rec;
  rec.accession = row[0].AsString();
  rec.name = row[1].AsString();
  rec.family = row[2].AsString();
  rec.organism = row[3].AsString();
  rec.sequence = row[5].AsString();
  return rec;
}

std::string Mediator::EncodeActivities(
    const std::vector<ActivityRecord>& recs) {
  std::string out;
  Row header = {Value::Int64(static_cast<int64_t>(recs.size()))};
  storage::EncodeRow(header, &out);
  for (const auto& a : recs) storage::EncodeRow(ActivityToRow(a), &out);
  return out;
}

util::Result<std::vector<ActivityRecord>> Mediator::DecodeActivities(
    const std::string& blob) {
  size_t off = 0;
  DRUGTREE_ASSIGN_OR_RETURN(Row header, storage::DecodeRow(blob, &off));
  if (header.size() != 1 || header[0].type() != ValueType::kInt64) {
    return util::Status::ParseError("bad activities blob header");
  }
  int64_t count = header[0].AsInt64();
  std::vector<ActivityRecord> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    DRUGTREE_ASSIGN_OR_RETURN(Row row, storage::DecodeRow(blob, &off));
    if (row.size() != 5) {
      return util::Status::ParseError("bad activity row arity");
    }
    ActivityRecord a;
    a.accession = row[0].AsString();
    a.ligand_id = row[1].AsString();
    a.affinity_nm = row[2].AsDouble();
    a.assay_type = row[3].AsString();
    a.source_db = row[4].AsString();
    out.push_back(std::move(a));
  }
  return out;
}

util::Result<ProteinRecord> Mediator::GetProtein(
    const std::string& accession, const MediatorOptions& options) {
  const std::string key = SemanticCache::ProteinKey(accession);
  if (CacheEnabled(options)) {
    if (auto blob = cache_->Get(key)) return DecodeProtein(*blob);
  }
  DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec,
                            protein_source_->FetchByAccession(accession));
  if (CacheEnabled(options)) cache_->Put(key, EncodeProtein(rec));
  return rec;
}

util::Result<std::vector<ActivityRecord>> Mediator::GetActivities(
    const std::string& accession, const MediatorOptions& options) {
  const std::string key = SemanticCache::ActivitiesByProteinKey(accession);
  if (CacheEnabled(options)) {
    if (auto blob = cache_->Get(key)) return DecodeActivities(*blob);
  }
  std::vector<ActivityRecord> recs =
      activity_source_->FetchByAccession(accession);
  if (CacheEnabled(options)) cache_->Put(key, EncodeActivities(recs));
  return recs;
}

util::Result<std::vector<ProteinRecord>> Mediator::GetFamily(
    const std::string& family, const MediatorOptions& options) {
  const std::string fam_key = SemanticCache::FamilyKey(family);
  if (CacheEnabled(options) && cache_->Contains(fam_key)) {
    // Every member was cached individually when the family was fetched;
    // decode the membership list and serve from the fine-grained entries.
    auto blob = cache_->Get(fam_key);
    if (blob) {
      std::vector<ProteinRecord> out;
      bool all_present = true;
      for (const auto& acc : util::Split(*blob, ',')) {
        if (acc.empty()) continue;
        auto member = cache_->Get(SemanticCache::ProteinKey(acc));
        if (!member) {
          all_present = false;  // member evicted: fall through to refetch
          break;
        }
        DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec, DecodeProtein(*member));
        out.push_back(std::move(rec));
      }
      if (all_present) return out;
    }
  }
  std::vector<ProteinRecord> recs = protein_source_->FetchFamily(family);
  if (CacheEnabled(options)) {
    std::vector<std::string> accs;
    for (const auto& rec : recs) {
      cache_->Put(SemanticCache::ProteinKey(rec.accession),
                  EncodeProtein(rec));
      accs.push_back(rec.accession);
    }
    cache_->Put(fam_key, util::Join(accs, ","));
  }
  return recs;
}

util::Result<Deferred<std::vector<ProteinRecord>>> Mediator::GetFamilyAsync(
    const std::string& family, const MediatorOptions& options) {
  const std::string fam_key = SemanticCache::FamilyKey(family);
  if (CacheEnabled(options) && cache_->Contains(fam_key)) {
    auto blob = cache_->Get(fam_key);
    if (blob) {
      Deferred<std::vector<ProteinRecord>> out;
      bool all_present = true;
      for (const auto& acc : util::Split(*blob, ',')) {
        if (acc.empty()) continue;
        auto member = cache_->Get(SemanticCache::ProteinKey(acc));
        if (!member) {
          all_present = false;
          break;
        }
        DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec, DecodeProtein(*member));
        out.value.push_back(std::move(rec));
      }
      if (all_present) return out;
    }
  }
  Deferred<std::vector<ProteinRecord>> out =
      protein_source_->FetchFamilyAsync(family);
  if (CacheEnabled(options)) {
    std::vector<std::string> accs;
    for (const auto& rec : out.value) {
      cache_->Put(SemanticCache::ProteinKey(rec.accession),
                  EncodeProtein(rec));
      accs.push_back(rec.accession);
    }
    cache_->Put(fam_key, util::Join(accs, ","));
  }
  return out;
}

util::Result<Deferred<std::vector<ActivityRecord>>> Mediator::GetActivitiesAsync(
    const std::string& accession, const MediatorOptions& options) {
  const std::string key = SemanticCache::ActivitiesByProteinKey(accession);
  if (CacheEnabled(options)) {
    if (auto blob = cache_->Get(key)) {
      Deferred<std::vector<ActivityRecord>> out;
      DRUGTREE_ASSIGN_OR_RETURN(out.value, DecodeActivities(*blob));
      return out;
    }
  }
  Deferred<std::vector<ActivityRecord>> out =
      activity_source_->FetchByAccessionAsync(accession);
  if (CacheEnabled(options)) cache_->Put(key, EncodeActivities(out.value));
  return out;
}

util::Result<IntegratedDataset> Mediator::IntegrateAll(
    const MediatorOptions& options) {
  DT_SPAN("integrate.all");
  static obs::Counter* protein_fetches = FetchCounter("proteins");
  static obs::Counter* ligand_fetches = FetchCounter("ligands");
  static obs::Counter* activity_fetches = FetchCounter("activities");
  IntegratedDataset ds;
  ds.proteins = std::make_unique<Table>("proteins", ProteinTableSchema());
  ds.ligands = std::make_unique<Table>("ligands", LigandTableSchema());
  ds.activities = std::make_unique<Table>("activities", ActivityTableSchema());
  async_stats_ = MediatorAsyncStats{};
  const bool overlapped = options.max_concurrency > 1 && network() != nullptr;

  // Proteins.
  std::vector<ProteinRecord> proteins;
  {
    DT_SPAN("integrate.fetch_proteins");
    if (options.batch_requests) {
      proteins = protein_source_->FetchAll();
    } else if (overlapped) {
      // Overlapped per-record fetch: keep up to max_concurrency requests in
      // flight; cache semantics match the serial GetProtein path exactly.
      FetchWindow window(network(), options.max_concurrency);
      for (const auto& acc : protein_source_->ListAccessions()) {
        const std::string key = SemanticCache::ProteinKey(acc);
        if (CacheEnabled(options)) {
          if (auto blob = cache_->Get(key)) {
            DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec, DecodeProtein(*blob));
            proteins.push_back(std::move(rec));
            continue;
          }
        }
        window.Acquire();
        DRUGTREE_ASSIGN_OR_RETURN(
            Deferred<ProteinRecord> d,
            protein_source_->FetchByAccessionAsync(acc));
        window.Track(d.ready_micros);
        ++async_stats_.async_requests;
        if (CacheEnabled(options)) cache_->Put(key, EncodeProtein(d.value));
        proteins.push_back(std::move(d.value));
      }
      window.Drain();
      async_stats_.peak_in_flight =
          std::max(async_stats_.peak_in_flight, window.peak_in_flight());
    } else {
      for (const auto& acc : protein_source_->ListAccessions()) {
        DRUGTREE_ASSIGN_OR_RETURN(ProteinRecord rec, GetProtein(acc, options));
        proteins.push_back(std::move(rec));
      }
    }
  }
  protein_fetches->Add(static_cast<int64_t>(proteins.size()));
  // Account the transient fetch buffers while they are resident: each scope
  // covers the span between "records fetched" and "records loaded into the
  // table + buffer freed" (end of IntegrateAll).
  obs::ScopedMemoryCharge protein_buf_charge(memory_,
                                             SumApproxBytes(proteins));
  for (const auto& p : proteins) {
    DRUGTREE_RETURN_IF_ERROR(ds.proteins->Insert(ProteinToRow(p)).status());
    if (CacheEnabled(options)) {
      cache_->Put(SemanticCache::ProteinKey(p.accession), EncodeProtein(p));
    }
  }

  // Ligands.
  std::vector<LigandEntry> ligands;
  {
    DT_SPAN("integrate.fetch_ligands");
    if (options.batch_requests) {
      ligands = ligand_source_->FetchAll();
    } else if (overlapped) {
      FetchWindow window(network(), options.max_concurrency);
      for (const auto& id : ligand_source_->ListIds()) {
        window.Acquire();
        DRUGTREE_ASSIGN_OR_RETURN(Deferred<LigandEntry> d,
                                  ligand_source_->FetchByIdAsync(id));
        window.Track(d.ready_micros);
        ++async_stats_.async_requests;
        ligands.push_back(std::move(d.value));
      }
      window.Drain();
      async_stats_.peak_in_flight =
          std::max(async_stats_.peak_in_flight, window.peak_in_flight());
    } else {
      for (const auto& id : ligand_source_->ListIds()) {
        DRUGTREE_ASSIGN_OR_RETURN(LigandEntry e, ligand_source_->FetchById(id));
        ligands.push_back(std::move(e));
      }
    }
  }
  ligand_fetches->Add(static_cast<int64_t>(ligands.size()));
  obs::ScopedMemoryCharge ligand_buf_charge(memory_, SumApproxBytes(ligands));
  for (const auto& e : ligands) {
    DRUGTREE_RETURN_IF_ERROR(ds.ligands->Insert(LigandToRow(e)).status());
  }

  // Activities with conflict resolution. Measurements that agree on
  // (accession, ligand, assay_type) but come from different databases are
  // merged: geometric-mean affinity, provenance "merged".
  std::vector<ActivityRecord> activities;
  {
    DT_SPAN("integrate.fetch_activities");
    if (options.batch_requests) {
      activities = activity_source_->FetchAll();
    } else if (overlapped) {
      FetchWindow window(network(), options.max_concurrency);
      for (const auto& p : proteins) {
        const std::string key =
            SemanticCache::ActivitiesByProteinKey(p.accession);
        if (CacheEnabled(options)) {
          if (auto blob = cache_->Get(key)) {
            DRUGTREE_ASSIGN_OR_RETURN(std::vector<ActivityRecord> a,
                                      DecodeActivities(*blob));
            activities.insert(activities.end(), a.begin(), a.end());
            continue;
          }
        }
        window.Acquire();
        Deferred<std::vector<ActivityRecord>> d =
            activity_source_->FetchByAccessionAsync(p.accession);
        window.Track(d.ready_micros);
        ++async_stats_.async_requests;
        if (CacheEnabled(options)) cache_->Put(key, EncodeActivities(d.value));
        activities.insert(activities.end(), d.value.begin(), d.value.end());
      }
      window.Drain();
      async_stats_.peak_in_flight =
          std::max(async_stats_.peak_in_flight, window.peak_in_flight());
    } else {
      for (const auto& p : proteins) {
        DRUGTREE_ASSIGN_OR_RETURN(std::vector<ActivityRecord> a,
                                  GetActivities(p.accession, options));
        activities.insert(activities.end(), a.begin(), a.end());
      }
    }
  }
  activity_fetches->Add(static_cast<int64_t>(activities.size()));
  obs::ScopedMemoryCharge activity_buf_charge(memory_,
                                              SumApproxBytes(activities));
  DT_SPAN("integrate.resolve");
  std::map<std::tuple<std::string, std::string, std::string>,
           std::vector<const ActivityRecord*>>
      groups;
  for (const auto& a : activities) {
    groups[{a.accession, a.ligand_id, a.assay_type}].push_back(&a);
  }
  for (const auto& [key, recs] : groups) {
    ActivityRecord merged = *recs.front();
    if (recs.size() > 1) {
      double log_sum = 0.0;
      for (const auto* r : recs) log_sum += std::log(r->affinity_nm);
      merged.affinity_nm = std::exp(log_sum / static_cast<double>(recs.size()));
      merged.source_db = "merged";
    }
    DRUGTREE_RETURN_IF_ERROR(
        ds.activities->Insert(ActivityToRow(merged)).status());
  }

  DT_LOG(INFO) << "integrated " << proteins.size() << " proteins, "
               << ligands.size() << " ligands, " << activities.size()
               << " activity measurements (" << groups.size()
               << " after conflict resolution)";
  return ds;
}

}  // namespace integration
}  // namespace drugtree
