#include "integration/source.h"

namespace drugtree {
namespace integration {

uint64_t ProteinRecord::ApproxBytes() const {
  return accession.size() + name.size() + family.size() + organism.size() +
         sequence.size() + 32;  // framing overhead
}

uint64_t ActivityRecord::ApproxBytes() const {
  return accession.size() + ligand_id.size() + assay_type.size() +
         source_db.size() + sizeof(double) + 32;
}

}  // namespace integration
}  // namespace drugtree
