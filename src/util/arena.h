// Arena: bump allocator for short-lived, same-lifetime allocations
// (query execution rows, parser AST nodes). Freed all at once on Reset().

#ifndef DRUGTREE_UTIL_ARENA_H_
#define DRUGTREE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace drugtree {
namespace util {

/// Block-based bump allocator. Not thread-safe; each executor owns one.
class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with at least `alignment` alignment (a power of two).
  /// Never returns null; allocations larger than the block size get their own
  /// block.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// Copies `data[0, len)` into the arena and returns the copy.
  char* CopyBytes(const char* data, size_t len);

  /// Frees everything allocated so far; keeps the first block for reuse.
  void Reset();

  /// Total bytes handed out since construction or the last Reset().
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void AddBlock(size_t size);

  size_t block_size_;
  std::vector<Block> blocks_;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_ARENA_H_
