// Status: the error-handling backbone of the library.
//
// DrugTree follows the Arrow/RocksDB convention: no exceptions cross library
// boundaries. Fallible operations return util::Status (or util::Result<T>,
// see result.h) and callers must check it.

#ifndef DRUGTREE_UTIL_STATUS_H_
#define DRUGTREE_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace drugtree {
namespace util {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,
  kIoError = 6,
  kResourceExhausted = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kAborted = 10,
  kTimeout = 11,
  kCancelled = 12,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a (code, message) pair.
///
/// The OK state is represented by a null internal pointer, so returning and
/// moving an OK Status is free. Non-OK states carry a heap-allocated record.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories (Status::InvalidArgument etc.) at call sites.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Named factory for an OK status (mirrors the factories below).
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk for an OK status.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for an OK status.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with `context + ": "`; no-op on OK statuses.
  /// Useful when propagating errors up through layers.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace util
}  // namespace drugtree

/// Propagates a non-OK Status to the caller of the enclosing function.
#define DRUGTREE_RETURN_IF_ERROR(expr)                      \
  do {                                                      \
    ::drugtree::util::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                              \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise assigns the
/// contained value to `lhs` (which may be a declaration).
#define DRUGTREE_ASSIGN_OR_RETURN(lhs, rexpr)               \
  DRUGTREE_ASSIGN_OR_RETURN_IMPL(                           \
      DRUGTREE_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define DRUGTREE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)     \
  auto tmp = (rexpr);                                       \
  if (!tmp.ok()) return tmp.status();                       \
  lhs = std::move(tmp).ValueUnsafe();

#define DRUGTREE_CONCAT_(a, b) DRUGTREE_CONCAT_IMPL_(a, b)
#define DRUGTREE_CONCAT_IMPL_(a, b) a##b

#endif  // DRUGTREE_UTIL_STATUS_H_
