#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace drugtree {
namespace util {

namespace {

// splitmix64: used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  have_gaussian_ = true;
  return u * mul;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return Uniform(n);
  // Rejection-inversion style approximation adequate for workload skew:
  // sample by inverse CDF over the generalized harmonic series computed on
  // demand (cached per (n, theta) would be faster; benchmarks pre-generate).
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(double(i), theta);
  double u = NextDouble() * zetan;
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(double(i), theta);
    if (sum >= u) return i - 1;
  }
  return n - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = NextDouble() * total;
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    sum += weights[i];
    if (sum >= u) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1F2C3B4A5968778ULL); }

}  // namespace util
}  // namespace drugtree
