#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace drugtree {
namespace util {

void SummaryStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::Variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double SummaryStats::Stddev() const { return std::sqrt(Variance()); }

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

const std::vector<double>& Histogram::BucketBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    b.reserve(kNumBuckets);
    double v = 1.0;
    for (int i = 0; i < kNumBuckets; ++i) {
      b.push_back(v);
      v *= 1.25;
    }
    return b;
  }();
  return bounds;
}

int Histogram::BucketFor(double value) {
  const auto& bounds = BucketBounds();
  auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
  int idx = static_cast<int>(it - bounds.begin());
  return std::min(idx, kNumBuckets - 1);
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = sum_ = 0.0;
}

double Histogram::min() const { return min_; }
double Histogram::max() const { return max_; }

double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  // Exact edge answers: p0 is the observed minimum and p100 the observed
  // maximum (bucket interpolation would only blur them), and they also make
  // the single-observation case return the value itself at every p.
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  double target = p / 100.0 * static_cast<double>(count_);
  int64_t cum = 0;
  const auto& bounds = BucketBounds();
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      double lo = (i == 0) ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      // Interpolate within the bucket.
      double before = static_cast<double>(cum - buckets_[i]);
      double frac = buckets_[i] > 0
                        ? (target - before) / static_cast<double>(buckets_[i])
                        : 0.0;
      double v = lo + frac * (hi - lo);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::ToJson() const {
  return StringPrintf(
      "{\"count\":%lld,\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,"
      "\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}",
      (long long)count_, Mean(), min(), max(), Percentile(50), Percentile(95),
      Percentile(99));
}

std::string Histogram::ToString() const {
  return StringPrintf(
      "count=%lld mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
      (long long)count_, Mean(), Percentile(50), Percentile(95),
      Percentile(99), max_);
}

}  // namespace util
}  // namespace drugtree
