// Minimal leveled logger with a process-wide severity threshold.
//
// Usage:
//   DT_LOG(INFO) << "loaded " << n << " proteins";
//   DT_CHECK(x > 0) << "x must be positive";

#ifndef DRUGTREE_UTIL_LOGGING_H_
#define DRUGTREE_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace drugtree {
namespace util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Current process-wide minimum emitted level.
LogLevel GetLogLevel();

/// Parses a level name (DEBUG/INFO/WARNING/ERROR, case-insensitive; WARN
/// accepted). Returns false and leaves `out` untouched on anything else.
bool ParseLogLevel(const char* name, LogLevel* out);

/// The initial process log level: DRUGTREE_LOG_LEVEL from the environment
/// when set and valid, kWarning otherwise. (Applied automatically before
/// the first message; exposed for tests.)
LogLevel InitialLogLevel();

/// One log statement. Accumulates the message via operator<< and emits it to
/// stderr (with level tag and source location) on destruction. A kFatal
/// message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool enabled_;
  std::ostringstream stream_;
};

namespace log_internal {
// ALL-CAPS aliases so DT_LOG(INFO) spells like the usage comment.
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARNING = LogLevel::kWarning;
inline constexpr LogLevel ERROR = LogLevel::kError;
inline constexpr LogLevel FATAL = LogLevel::kFatal;
}  // namespace log_internal

}  // namespace util
}  // namespace drugtree

#define DT_LOG(LEVEL)                                                  \
  ::drugtree::util::LogMessage(::drugtree::util::log_internal::LEVEL,  \
                               __FILE__, __LINE__)

/// Always-on invariant check; logs the failed condition and aborts.
#define DT_CHECK(cond)                                                 \
  if (!(cond))                                                         \
  ::drugtree::util::LogMessage(::drugtree::util::LogLevel::kFatal,     \
                               __FILE__, __LINE__)                     \
      << "Check failed: " #cond " "

#endif  // DRUGTREE_UTIL_LOGGING_H_
