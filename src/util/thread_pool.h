// Fixed-size worker pool used for parallel distance-matrix computation and
// parallel fingerprint generation.

#ifndef DRUGTREE_UTIL_THREAD_POOL_H_
#define DRUGTREE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace drugtree {
namespace util {

/// A simple fixed-size thread pool. Tasks are void() callables; exceptions
/// must not escape tasks (the library is exception-free by convention).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Note this is
  /// pool-wide: with concurrent submitters it waits for *their* work too.
  /// ParallelFor does not use it (per-call completion state instead), so
  /// concurrent ParallelFor/Submit callers do not interfere.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// The calling thread participates in the work loop, so ParallelFor is
  /// safe to call concurrently from many threads — and even from inside a
  /// pool task — without deadlocking or waiting on unrelated work.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of submitted tasks not yet picked up by a worker. Lets an
  /// admission controller (or an obs gauge) observe backlog directly
  /// instead of guessing from submit/complete counters.
  size_t QueueDepth() const;

  /// Number of tasks currently executing on workers.
  int ActiveCount() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_THREAD_POOL_H_
