#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace drugtree {
namespace util {

Arena::Arena(size_t block_size) : block_size_(std::max<size_t>(block_size, 256)) {}

void Arena::AddBlock(size_t size) {
  blocks_.push_back(Block{std::make_unique<char[]>(size), size});
  cursor_ = blocks_.back().data.get();
  limit_ = cursor_ + size;
  bytes_reserved_ += size;
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (cur + alignment - 1) & ~(alignment - 1);
  size_t needed = bytes + (aligned - cur);
  if (cursor_ == nullptr || needed > static_cast<size_t>(limit_ - cursor_)) {
    AddBlock(std::max(block_size_, bytes + alignment));
    cur = reinterpret_cast<uintptr_t>(cursor_);
    aligned = (cur + alignment - 1) & ~(alignment - 1);
    needed = bytes + (aligned - cur);
  }
  cursor_ += needed;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

char* Arena::CopyBytes(const char* data, size_t len) {
  char* dst = static_cast<char*>(Allocate(len, 1));
  std::memcpy(dst, data, len);
  return dst;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    Block first = std::move(blocks_.front());
    bytes_reserved_ = first.size;
    blocks_.clear();
    blocks_.push_back(std::move(first));
  }
  if (!blocks_.empty()) {
    cursor_ = blocks_.front().data.get();
    limit_ = cursor_ + blocks_.front().size;
  }
  bytes_allocated_ = 0;
}

}  // namespace util
}  // namespace drugtree
