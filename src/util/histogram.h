// Measurement helpers: streaming summary statistics and a latency histogram
// with approximate percentiles. Used by the benchmark harnesses and by the
// mobile session driver to report interaction latencies.

#ifndef DRUGTREE_UTIL_HISTOGRAM_H_
#define DRUGTREE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace drugtree {
namespace util {

/// Streaming mean/min/max/stddev accumulator (Welford's algorithm).
class SummaryStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Variance() const;
  double Stddev() const;
  double Sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Latency histogram with exponentially sized buckets (RocksDB-statistics
/// style). Records non-negative values; percentiles are interpolated within
/// buckets, so they are approximate but stable.
class Histogram {
 public:
  Histogram();

  /// Records one observation (values < 0 are clamped to 0).
  void Add(double value);

  /// Merges another histogram's observations into this one.
  void Merge(const Histogram& other);

  void Clear();

  int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double Mean() const;

  /// Approximate p-th percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary: count / mean / p50 / p95 / p99 / max.
  std::string ToString() const;

  /// JSON object {"count":..,"mean":..,"min":..,"max":..,"p50":..,"p95":..,
  /// "p99":..} — the shape the obs metrics exporter embeds.
  std::string ToJson() const;

 private:
  static constexpr int kNumBuckets = 140;
  // Bucket i covers [bounds_[i-1], bounds_[i]).
  static const std::vector<double>& BucketBounds();
  static int BucketFor(double value);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_HISTOGRAM_H_
