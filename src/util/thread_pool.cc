#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace drugtree {
namespace util {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Per-call completion state. Shared-ptr ownership: a shard task that gets
  // scheduled only after every item has been claimed (all work stolen by
  // faster shards or the caller) may run after this frame returned; it then
  // sees next >= n and exits without touching `fn`.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<State>();
  auto work = [state, n, &fn] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (state->finished.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    }
  };
  size_t shards = std::min(n, static_cast<size_t>(num_threads()) + 1);
  for (size_t s = 0; s + 1 < shards; ++s) Submit(work);
  // The caller runs a shard too: every item gets claimed even when all
  // workers are tied up with other callers (or this call is nested inside
  // a pool task), so the wait below cannot deadlock.
  work();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->finished.load(std::memory_order_acquire) == n;
  });
}

size_t ThreadPool::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

int ThreadPool::ActiveCount() const {
  std::unique_lock<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace util
}  // namespace drugtree
