#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace drugtree {
namespace util {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  size_t shards = std::min(n, static_cast<size_t>(num_threads()));
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace util
}  // namespace drugtree
