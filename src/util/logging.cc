#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "util/clock.h"

namespace drugtree {
namespace util {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

/// Reads DRUGTREE_LOG_LEVEL into g_min_level exactly once, before the first
/// threshold check, so the env var takes effect without any init call.
std::atomic<int>& MinLevel() {
  static const bool env_applied = [] {
    LogLevel level;
    const char* env = std::getenv("DRUGTREE_LOG_LEVEL");
    if (env != nullptr && ParseLogLevel(env, &level)) {
      g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
    }
    return true;
  }();
  (void)env_applied;
  return g_min_level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

bool ParseLogLevel(const char* name, LogLevel* out) {
  if (name == nullptr) return false;
  std::string upper;
  for (const char* p = name; *p != '\0'; ++p) {
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(*p)));
  }
  if (upper == "DEBUG") *out = LogLevel::kDebug;
  else if (upper == "INFO") *out = LogLevel::kInfo;
  else if (upper == "WARNING" || upper == "WARN") *out = LogLevel::kWarning;
  else if (upper == "ERROR") *out = LogLevel::kError;
  else return false;
  return true;
}

LogLevel InitialLogLevel() {
  LogLevel level = LogLevel::kWarning;
  ParseLogLevel(std::getenv("DRUGTREE_LOG_LEVEL"), &level);
  return level;
}

void SetLogLevel(LogLevel level) {
  MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(MinLevel().load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      file_(file),
      line_(line),
      enabled_(static_cast<int>(level) >=
                   MinLevel().load(std::memory_order_relaxed) ||
               level == LogLevel::kFatal) {}

LogMessage::~LogMessage() {
  if (enabled_) {
    // Monotonic timestamp in the RealClock timebase, so log lines correlate
    // with obs span start/end stamps.
    std::fprintf(stderr, "[%lld %s %s:%d] %s\n",
                 static_cast<long long>(RealClock::Instance()->NowMicros()),
                 LevelTag(level_), Basename(file_), line_,
                 stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace util
}  // namespace drugtree
