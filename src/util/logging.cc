#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace drugtree {
namespace util {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      file_(file),
      line_(line),
      enabled_(static_cast<int>(level) >=
                   g_min_level.load(std::memory_order_relaxed) ||
               level == LogLevel::kFatal) {}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
                 line_, stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace util
}  // namespace drugtree
