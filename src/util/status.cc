#include "util/status.h"

namespace drugtree {
namespace util {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kCancelled: return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(rep_->code);
  out += ": ";
  out += rep_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(rep_->code, context + ": " + rep_->message);
}

}  // namespace util
}  // namespace drugtree
