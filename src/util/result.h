// Result<T>: a value-or-Status union, the return type for fallible functions
// that produce a value. Mirrors arrow::Result / absl::StatusOr.

#ifndef DRUGTREE_UTIL_RESULT_H_
#define DRUGTREE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace drugtree {
namespace util {

/// Holds either a successfully computed T or the Status explaining why the
/// computation failed. A Result is never "empty": default construction is
/// disabled, and constructing from an OK Status is a programming error.
template <typename T>
class Result {
 public:
  /// Constructs a failed Result. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status");
  }

  /// Constructs a successful Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on failed Result");
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on failed Result");
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on failed Result");
    return std::move(*value_);
  }

  /// Unchecked accessors used by DRUGTREE_ASSIGN_OR_RETURN (ok() has already
  /// been verified by the macro).
  T&& ValueUnsafe() && { return std::move(*value_); }
  const T& ValueUnsafe() const& { return *value_; }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Dereference sugar; must only be used when ok().
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;          // OK iff value_ present
  std::optional<T> value_;
};

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_RESULT_H_
