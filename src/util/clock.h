// Clocks. The integration and mobile layers need *simulated* time so that
// benchmarks can model slow 2013-era mobile links without actually sleeping;
// everything that waits takes a Clock* and works with either implementation.

#ifndef DRUGTREE_UTIL_CLOCK_H_
#define DRUGTREE_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace drugtree {
namespace util {

/// Abstract monotonic clock in microseconds.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time in microseconds.
  virtual int64_t NowMicros() const = 0;

  /// Advances time by `micros`. Real clocks sleep; simulated clocks jump.
  virtual void AdvanceMicros(int64_t micros) = 0;
};

/// Wall-clock backed implementation (AdvanceMicros sleeps).
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;

  /// Shared process-wide instance.
  static RealClock* Instance();
};

/// Deterministic virtual clock for simulations: time only moves when someone
/// advances it. This is what makes the network/mobile latency models
/// reproducible and fast to benchmark. Reads and advances are atomic so
/// thread-pool workers can observe the clock while the multi-channel
/// network scheduler moves it.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Jumps directly to an absolute time (must not move backwards).
  void SetMicros(int64_t micros);

 private:
  std::atomic<int64_t> now_;
};

/// Stopwatch over an arbitrary clock.
class Timer {
 public:
  explicit Timer(const Clock* clock) : clock_(clock), start_(clock->NowMicros()) {}

  /// Microseconds since construction or the last Reset().
  int64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }

  void Reset() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_CLOCK_H_
