#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace drugtree {
namespace util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: " + buf);
  }
  return v;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringPrintf("%llu B", (unsigned long long)bytes);
  return StringPrintf("%.1f %s", v, kUnits[unit]);
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace util
}  // namespace drugtree
