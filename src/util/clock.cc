#include "util/clock.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace drugtree {
namespace util {

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::AdvanceMicros(int64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

RealClock* RealClock::Instance() {
  static RealClock instance;
  return &instance;
}

void SimulatedClock::SetMicros(int64_t micros) {
  DT_CHECK(micros >= NowMicros()) << "simulated clock cannot move backwards";
  now_.store(micros, std::memory_order_relaxed);
}

}  // namespace util
}  // namespace drugtree
