// Small string helpers shared across modules (parsers, loggers, reports).

#ifndef DRUGTREE_UTIL_STRING_UTIL_H_
#define DRUGTREE_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace drugtree {
namespace util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict integer parse of the whole string (no trailing junk).
Result<int64_t> ParseInt64(std::string_view s);

/// Strict double parse of the whole string (no trailing junk).
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-friendly byte count ("1.5 KiB", "3.2 MiB").
std::string HumanBytes(uint64_t bytes);

/// FNV-1a 64-bit hash, used where a stable (cross-run) hash is needed.
uint64_t Fnv1a64(std::string_view s);

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_STRING_UTIL_H_
