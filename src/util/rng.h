// Deterministic pseudo-random number generation.
//
// All synthetic data in DrugTree (sequences, ligands, workloads, network
// jitter) flows through Rng so that experiments are reproducible from a seed.

#ifndef DRUGTREE_UTIL_RNG_H_
#define DRUGTREE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace drugtree {
namespace util {

/// A small, fast, seedable PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Box-Muller).
  double NextGaussian();

  /// Exponential deviate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Zipfian-distributed integer in [0, n) with skew parameter theta
  /// (theta = 0 is uniform; larger is more skewed). Used by workload
  /// generators to model hot-spot access patterns.
  uint64_t Zipf(uint64_t n, double theta);

  /// Samples an index in [0, weights.size()) proportional to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel determinism).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace drugtree

#endif  // DRUGTREE_UTIL_RNG_H_
