#include "phylo/tree_index.h"

#include <algorithm>

#include "util/logging.h"

namespace drugtree {
namespace phylo {

util::Result<TreeIndex> TreeIndex::Build(const Tree& tree) {
  if (tree.Empty()) {
    return util::Status::InvalidArgument("cannot index an empty tree");
  }
  DRUGTREE_RETURN_IF_ERROR(tree.Validate());

  TreeIndex idx;
  idx.tree_ = &tree;
  const size_t n = tree.NumNodes();
  idx.pre_.assign(n, 0);
  idx.post_.assign(n, 0);
  idx.depth_.assign(n, 0);
  idx.leaf_count_.assign(n, 0);
  idx.root_dist_.assign(n, 0.0);
  idx.pre_to_node_.assign(n, kInvalidNode);
  idx.first_occurrence_.assign(n, -1);

  // Iterative DFS assigning pre-order numbers and building the Euler tour.
  int32_t counter = 0;
  struct Frame {
    NodeId id;
    size_t child_idx;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), 0});
  idx.pre_[static_cast<size_t>(tree.root())] = counter;
  idx.pre_to_node_[static_cast<size_t>(counter)] = tree.root();
  ++counter;

  auto tour_push = [&](NodeId id) {
    if (idx.first_occurrence_[static_cast<size_t>(id)] < 0) {
      idx.first_occurrence_[static_cast<size_t>(id)] =
          static_cast<int32_t>(idx.euler_.size());
    }
    idx.euler_.push_back(id);
    idx.euler_depth_.push_back(idx.depth_[static_cast<size_t>(id)]);
  };
  tour_push(tree.root());

  while (!stack.empty()) {
    Frame& f = stack.back();
    const Node& node = tree.node(f.id);
    if (f.child_idx < node.children.size()) {
      NodeId child = node.children[f.child_idx++];
      idx.depth_[static_cast<size_t>(child)] =
          idx.depth_[static_cast<size_t>(f.id)] + 1;
      idx.root_dist_[static_cast<size_t>(child)] =
          idx.root_dist_[static_cast<size_t>(f.id)] +
          tree.node(child).branch_length;
      idx.pre_[static_cast<size_t>(child)] = counter;
      idx.pre_to_node_[static_cast<size_t>(counter)] = child;
      ++counter;
      stack.push_back({child, 0});
      tour_push(child);
    } else {
      idx.post_[static_cast<size_t>(f.id)] = counter - 1;
      idx.leaf_count_[static_cast<size_t>(f.id)] =
          node.IsLeaf() ? 1 : 0;
      for (NodeId c : node.children) {
        idx.leaf_count_[static_cast<size_t>(f.id)] +=
            idx.leaf_count_[static_cast<size_t>(c)];
      }
      stack.pop_back();
      if (!stack.empty()) tour_push(stack.back().id);
    }
  }

  // Sparse table over the Euler tour depths.
  const size_t m = idx.euler_.size();
  int levels = 1;
  while ((size_t{1} << levels) <= m) ++levels;
  idx.sparse_.assign(static_cast<size_t>(levels), {});
  idx.sparse_[0].resize(m);
  for (size_t i = 0; i < m; ++i) idx.sparse_[0][i] = static_cast<int32_t>(i);
  for (int k = 1; k < levels; ++k) {
    size_t span = size_t{1} << k;
    if (span > m) break;
    idx.sparse_[static_cast<size_t>(k)].resize(m - span + 1);
    for (size_t i = 0; i + span <= m; ++i) {
      int32_t a = idx.sparse_[static_cast<size_t>(k - 1)][i];
      int32_t b = idx.sparse_[static_cast<size_t>(k - 1)][i + span / 2];
      idx.sparse_[static_cast<size_t>(k)][i] =
          idx.euler_depth_[static_cast<size_t>(a)] <=
                  idx.euler_depth_[static_cast<size_t>(b)]
              ? a
              : b;
    }
  }
  return idx;
}

NodeId TreeIndex::Lca(NodeId a, NodeId b) const {
  DT_CHECK(tree_->Contains(a) && tree_->Contains(b)) << "bad node id";
  int32_t fa = first_occurrence_[static_cast<size_t>(a)];
  int32_t fb = first_occurrence_[static_cast<size_t>(b)];
  if (fa > fb) std::swap(fa, fb);
  size_t len = static_cast<size_t>(fb - fa + 1);
  int k = 0;
  while ((size_t{1} << (k + 1)) <= len) ++k;
  int32_t left = sparse_[static_cast<size_t>(k)][static_cast<size_t>(fa)];
  int32_t right = sparse_[static_cast<size_t>(k)]
                         [static_cast<size_t>(fb) - (size_t{1} << k) + 1];
  int32_t best = euler_depth_[static_cast<size_t>(left)] <=
                         euler_depth_[static_cast<size_t>(right)]
                     ? left
                     : right;
  return euler_[static_cast<size_t>(best)];
}

std::vector<NodeId> TreeIndex::SubtreeNodes(NodeId id) const {
  std::vector<NodeId> out;
  int32_t lo = Pre(id), hi = Post(id);
  out.reserve(static_cast<size_t>(hi - lo + 1));
  for (int32_t p = lo; p <= hi; ++p) out.push_back(NodeAtPre(p));
  return out;
}

double TreeIndex::PathLength(NodeId a, NodeId b) const {
  NodeId l = Lca(a, b);
  return root_dist_[static_cast<size_t>(a)] +
         root_dist_[static_cast<size_t>(b)] -
         2.0 * root_dist_[static_cast<size_t>(l)];
}

}  // namespace phylo
}  // namespace drugtree
