#include "phylo/builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/string_util.h"

namespace drugtree {
namespace phylo {

namespace {

util::Status ValidateInput(const bio::DistanceMatrix& dist) {
  if (dist.size() < 2) {
    return util::Status::InvalidArgument("need at least 2 taxa to build a tree");
  }
  if (!dist.IsValid()) {
    return util::Status::InvalidArgument(
        "distance matrix must be symmetric, non-negative, zero-diagonal");
  }
  return util::Status::OK();
}

// During agglomeration each active cluster tracks a subtree assembled in a
// scratch structure; the final pass copies it into a Tree (whose root must be
// node 0).
struct Scratch {
  // For each scratch node: children (empty = leaf), name, branch length.
  std::vector<std::vector<int>> children;
  std::vector<std::string> names;
  std::vector<double> branch;

  int AddLeaf(const std::string& name) {
    children.emplace_back();
    names.push_back(name);
    branch.push_back(0.0);
    return static_cast<int>(names.size()) - 1;
  }

  int AddInternal(std::vector<int> kids) {
    children.push_back(std::move(kids));
    names.emplace_back();
    branch.push_back(0.0);
    return static_cast<int>(names.size()) - 1;
  }
};

util::Result<Tree> ScratchToTree(const Scratch& s, int root) {
  Tree tree;
  DRUGTREE_ASSIGN_OR_RETURN(NodeId troot, tree.AddRoot(s.names[root], 0.0));
  // Iterative copy.
  std::vector<std::pair<int, NodeId>> stack = {{root, troot}};
  while (!stack.empty()) {
    auto [sid, tid] = stack.back();
    stack.pop_back();
    for (int c : s.children[static_cast<size_t>(sid)]) {
      DRUGTREE_ASSIGN_OR_RETURN(
          NodeId child,
          tree.AddChild(tid, s.names[static_cast<size_t>(c)],
                        std::max(0.0, s.branch[static_cast<size_t>(c)])));
      stack.emplace_back(c, child);
    }
  }
  DRUGTREE_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

}  // namespace

util::Result<Tree> BuildUpgma(const bio::DistanceMatrix& dist) {
  DRUGTREE_RETURN_IF_ERROR(ValidateInput(dist));
  const size_t n = dist.size();

  Scratch scratch;
  // Active clusters: scratch node, member count, height (root-to-leaf path).
  struct Cluster {
    int node;
    size_t count;
    double height;
    bool alive;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(2 * n);
  // Working distance matrix over cluster indices (grows as clusters merge).
  std::vector<std::vector<double>> d(2 * n - 1,
                                     std::vector<double>(2 * n - 1, 0.0));
  for (size_t i = 0; i < n; ++i) {
    clusters.push_back({scratch.AddLeaf(dist.names()[i]), 1, 0.0, true});
    for (size_t j = 0; j < n; ++j) d[i][j] = dist.at(i, j);
  }

  size_t active = n;
  while (active > 1) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!clusters[i].alive) continue;
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (!clusters[j].alive) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bi and bj at height best/2.
    double height = best / 2.0;
    int merged = scratch.AddInternal(
        {clusters[bi].node, clusters[bj].node});
    scratch.branch[static_cast<size_t>(clusters[bi].node)] =
        height - clusters[bi].height;
    scratch.branch[static_cast<size_t>(clusters[bj].node)] =
        height - clusters[bj].height;
    size_t ci = clusters[bi].count, cj = clusters[bj].count;
    Cluster next{merged, ci + cj, height, true};
    size_t k = clusters.size();
    // Average-link update.
    for (size_t t = 0; t < clusters.size(); ++t) {
      if (!clusters[t].alive || t == bi || t == bj) continue;
      double v = (d[bi][t] * static_cast<double>(ci) +
                  d[bj][t] * static_cast<double>(cj)) /
                 static_cast<double>(ci + cj);
      d[k][t] = d[t][k] = v;
    }
    clusters[bi].alive = false;
    clusters[bj].alive = false;
    clusters.push_back(next);
    --active;
  }
  // The last cluster added is the root.
  return ScratchToTree(scratch, clusters.back().node);
}

util::Result<Tree> BuildNeighborJoining(const bio::DistanceMatrix& dist) {
  DRUGTREE_RETURN_IF_ERROR(ValidateInput(dist));
  const size_t n = dist.size();

  Scratch scratch;
  std::vector<int> active_nodes;       // scratch node per active cluster
  std::vector<std::vector<double>> d;  // distances over active clusters

  for (size_t i = 0; i < n; ++i) {
    active_nodes.push_back(scratch.AddLeaf(dist.names()[i]));
  }
  d.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i][j] = dist.at(i, j);
  }

  if (n == 2) {
    int root = scratch.AddInternal({active_nodes[0], active_nodes[1]});
    scratch.branch[static_cast<size_t>(active_nodes[0])] = d[0][1] / 2.0;
    scratch.branch[static_cast<size_t>(active_nodes[1])] = d[0][1] / 2.0;
    return ScratchToTree(scratch, root);
  }

  while (active_nodes.size() > 3) {
    const size_t m = active_nodes.size();
    // Row sums.
    std::vector<double> r(m, 0.0);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) r[i] += d[i][j];
    }
    // Q-criterion minimization.
    double best_q = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 1;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        double q = static_cast<double>(m - 2) * d[i][j] - r[i] - r[j];
        if (q < best_q) {
          best_q = q;
          bi = i;
          bj = j;
        }
      }
    }
    // Branch lengths to the new internal node.
    double li = 0.5 * d[bi][bj] +
                (r[bi] - r[bj]) / (2.0 * static_cast<double>(m - 2));
    double lj = d[bi][bj] - li;
    li = std::max(0.0, li);
    lj = std::max(0.0, lj);
    int u = scratch.AddInternal({active_nodes[bi], active_nodes[bj]});
    scratch.branch[static_cast<size_t>(active_nodes[bi])] = li;
    scratch.branch[static_cast<size_t>(active_nodes[bj])] = lj;

    // New distance row.
    std::vector<double> du(m, 0.0);
    for (size_t t = 0; t < m; ++t) {
      if (t == bi || t == bj) continue;
      du[t] = 0.5 * (d[bi][t] + d[bj][t] - d[bi][bj]);
      du[t] = std::max(0.0, du[t]);
    }
    // Compact: remove bj then bi (bj > bi), append u.
    auto erase2 = [&](auto& vec) {
      vec.erase(vec.begin() + static_cast<long>(bj));
      vec.erase(vec.begin() + static_cast<long>(bi));
    };
    erase2(active_nodes);
    active_nodes.push_back(u);
    erase2(du);
    for (auto& row : d) erase2(row);
    erase2(d);
    du.push_back(0.0);
    for (size_t t = 0; t < d.size(); ++t) d[t].push_back(du[t]);
    d.push_back(std::move(du));
  }

  // Join the final three clusters at the root.
  double l0 = 0.5 * (d[0][1] + d[0][2] - d[1][2]);
  double l1 = 0.5 * (d[0][1] + d[1][2] - d[0][2]);
  double l2 = 0.5 * (d[0][2] + d[1][2] - d[0][1]);
  int root = scratch.AddInternal({active_nodes[0], active_nodes[1],
                                  active_nodes[2]});
  scratch.branch[static_cast<size_t>(active_nodes[0])] = std::max(0.0, l0);
  scratch.branch[static_cast<size_t>(active_nodes[1])] = std::max(0.0, l1);
  scratch.branch[static_cast<size_t>(active_nodes[2])] = std::max(0.0, l2);
  return ScratchToTree(scratch, root);
}

util::Result<Tree> BuildTree(const bio::DistanceMatrix& dist,
                             TreeMethod method) {
  switch (method) {
    case TreeMethod::kUpgma:
      return BuildUpgma(dist);
    case TreeMethod::kNeighborJoining:
      return BuildNeighborJoining(dist);
  }
  return util::Status::InvalidArgument("unknown tree method");
}

}  // namespace phylo
}  // namespace drugtree
