// Newick tree format: the interchange format between the evolution
// simulator, the tree builders, and external tools.
//
// Supported grammar (standard Newick):
//   tree      := subtree ';'
//   subtree   := leaf | internal
//   leaf      := name? length?
//   internal  := '(' subtree (',' subtree)* ')' name? length?
//   length    := ':' number
// Quoted labels ('...') and whitespace between tokens are handled.

#ifndef DRUGTREE_PHYLO_NEWICK_H_
#define DRUGTREE_PHYLO_NEWICK_H_

#include <string>

#include "phylo/tree.h"
#include "util/result.h"

namespace drugtree {
namespace phylo {

/// Parses a Newick string into a Tree. Errors name the offending position.
util::Result<Tree> ParseNewick(const std::string& text);

/// Serializes a tree to Newick. Branch lengths are written with 6 decimal
/// places; the root's length is omitted (it is meaningless).
std::string WriteNewick(const Tree& tree);

}  // namespace phylo
}  // namespace drugtree

#endif  // DRUGTREE_PHYLO_NEWICK_H_
