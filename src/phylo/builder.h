// Distance-based tree construction: UPGMA and Neighbor-Joining.
//
// UPGMA assumes a molecular clock (ultrametric data) and runs in O(n^2) with
// the nearest-neighbour-chain optimization here; NJ drops the clock
// assumption at O(n^3) cost. Experiment E5 compares them on clock-like and
// non-clock-like synthetic families.

#ifndef DRUGTREE_PHYLO_BUILDER_H_
#define DRUGTREE_PHYLO_BUILDER_H_

#include "bio/distance.h"
#include "phylo/tree.h"
#include "util/result.h"

namespace drugtree {
namespace phylo {

/// Builds a rooted ultrametric tree by unweighted pair-group averaging.
/// Requires a valid distance matrix with >= 2 taxa.
util::Result<Tree> BuildUpgma(const bio::DistanceMatrix& dist);

/// Builds a tree by Saitou & Nei's neighbor-joining. The result is rooted at
/// the final three-way join (so the root has degree 3 for n >= 3).
/// Negative branch-length estimates are clamped to zero, as is conventional.
util::Result<Tree> BuildNeighborJoining(const bio::DistanceMatrix& dist);

/// Convenience enum + dispatcher used by the facade and benchmarks.
enum class TreeMethod { kUpgma, kNeighborJoining };

util::Result<Tree> BuildTree(const bio::DistanceMatrix& dist, TreeMethod method);

}  // namespace phylo
}  // namespace drugtree

#endif  // DRUGTREE_PHYLO_BUILDER_H_
